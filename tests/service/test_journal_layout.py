"""The shared journal path convention (`serve` and `recover` must agree)."""

from __future__ import annotations

import pytest

from repro.runtime.journal import (
    JOURNAL_SUFFIX,
    JournalError,
    journal_path,
    list_journals,
    run_id_from_path,
)


class TestJournalPathConvention:
    @pytest.mark.parametrize(
        "run_id",
        ["plain", "with space", "nested/run", "dots..", "uni-ν17", "a:b?c#d"],
    )
    def test_round_trip(self, tmp_path, run_id):
        path = journal_path(tmp_path, run_id)
        assert path.parent == tmp_path
        assert path.name.endswith(JOURNAL_SUFFIX)
        # Percent-encoding keeps every run id inside one directory entry.
        assert "/" not in path.name
        assert run_id_from_path(path) == run_id

    def test_distinct_ids_never_collide(self, tmp_path):
        ids = ["a/b", "a%2Fb", "a b", "a+b", "a", "b"]
        paths = {journal_path(tmp_path, run_id) for run_id in ids}
        assert len(paths) == len(ids)

    def test_empty_run_id_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            journal_path(tmp_path, "")

    def test_foreign_files_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            run_id_from_path(tmp_path / "notes.txt")

    def test_list_journals(self, tmp_path):
        assert list_journals(tmp_path / "missing") == {}
        for run_id in ("r1", "r2", "spaced id"):
            journal_path(tmp_path, run_id).write_text("")
        (tmp_path / "README").write_text("not a journal")
        found = list_journals(tmp_path)
        assert sorted(found) == ["r1", "r2", "spaced id"]
        for run_id, path in found.items():
            assert path == journal_path(tmp_path, run_id)
