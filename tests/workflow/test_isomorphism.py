"""Tests for value isomorphisms and Lemma A.2 invariances."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.faithful import minimal_faithful_scenario
from repro.transparency.faithful_runs import is_minimum_faithful_run, run_on
from repro.workflow import Instance, RunGenerator, execute
from repro.workflow.domain import FreshValue
from repro.workflow.errors import WorkflowError
from repro.workflow.isomorphism import (
    Renaming,
    canonicalize_instance,
    find_instance_isomorphism,
    instances_isomorphic,
    rename_event,
    rename_instance,
    rename_run,
)
from repro.workflow.schema import Relation, Schema
from repro.workflow.tuples import Tuple
from repro.workloads import hiring_program
from repro.workloads.generators import OBSERVER, random_propositional_program

R = Relation("R", ("K", "A"))
D = Schema([R])


def inst(*pairs):
    return Instance.from_tuples(D, {"R": [Tuple(("K", "A"), p) for p in pairs]})


class TestRenaming:
    def test_identity_outside_mapping(self):
        f = Renaming({1: "a"})
        assert f(1) == "a" and f(2) == 2

    def test_injectivity_required(self):
        with pytest.raises(WorkflowError):
            Renaming({1: "a", 2: "a"})

    def test_null_cannot_be_renamed(self):
        from repro.workflow import NULL

        with pytest.raises(WorkflowError):
            Renaming({NULL: 1})

    def test_inverse(self):
        f = Renaming({1: "a", 2: "b"})
        g = f.inverse()
        assert g("a") == 1 and g(f(2)) == 2

    def test_fixes(self):
        f = Renaming({1: "a"})
        assert f.fixes([2, 3])
        assert not f.fixes([1])


class TestRenameObjects:
    def test_rename_instance(self):
        f = Renaming({1: 10, "x": "y"})
        renamed = rename_instance(f, inst((1, "x"), (2, "x")))
        assert renamed == inst((10, "y"), (2, "y"))

    def test_rename_run_preserves_consistency(self, hiring):
        run = RunGenerator(hiring, seed=3).random_run(8)
        f = Renaming({value: FreshValue(900 + i) for i, value in
                      enumerate(sorted(run.active_domain(), key=repr))})
        renamed = rename_run(f, run)
        # Lemma A.2 (i): the renamed sequence is a run with renamed instances.
        replayed = execute(hiring, renamed.events, check_freshness=False)
        assert replayed.final_instance == renamed.final_instance


class TestLemmaA2:
    @pytest.mark.parametrize("seed", range(4))
    def test_visibility_invariant(self, hiring, seed):
        run = RunGenerator(hiring, seed=seed).random_run(10)
        f = Renaming({value: FreshValue(800 + i) for i, value in
                      enumerate(sorted(run.active_domain(), key=repr))})
        renamed = rename_run(f, run)
        assert run.visible_indices("sue") == renamed.visible_indices("sue")

    @pytest.mark.parametrize("seed", range(4))
    def test_faithfulness_invariant(self, hiring, seed):
        """Lemma A.2 (ii): minimum p-faithfulness survives renaming."""
        run = RunGenerator(hiring, seed=seed).random_run(10)
        f = Renaming({value: FreshValue(700 + i) for i, value in
                      enumerate(sorted(run.active_domain(), key=repr))})
        renamed = rename_run(f, run)
        assert (
            minimal_faithful_scenario(run, "sue").indices
            == minimal_faithful_scenario(renamed, "sue").indices
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_propositional_invariance(self, seed):
        program = random_propositional_program(5, 8, seed=seed)
        run = RunGenerator(program, seed=seed).random_run(12)
        values = sorted(run.active_domain() - set(program.constants()), key=repr)
        f = Renaming({v: FreshValue(600 + i) for i, v in enumerate(values)})
        renamed = rename_run(f, run)
        assert (
            minimal_faithful_scenario(run, OBSERVER).indices
            == minimal_faithful_scenario(renamed, OBSERVER).indices
        )


class TestIsomorphismSearch:
    def test_isomorphic_instances(self):
        assert instances_isomorphic(inst((1, "x")), inst((2, "y")))

    def test_fixed_values_respected(self):
        assert not instances_isomorphic(inst((1, "x")), inst((2, "x")), fixed=[1, 2])
        assert instances_isomorphic(inst((1, "x")), inst((1, "y")), fixed=[1])

    def test_non_isomorphic(self):
        # Same key repeated vs distinct values.
        assert not instances_isomorphic(inst((1, 1)), inst((1, 2)))

    def test_size_mismatch(self):
        assert not instances_isomorphic(inst((1, "x")), inst((1, "x"), (2, "y")))

    def test_witness_maps_correctly(self):
        witness = find_instance_isomorphism(inst((1, "x")), inst((2, "y")))
        assert witness is not None
        assert rename_instance(witness, inst((1, "x"))) == inst((2, "y"))

    def test_cap_enforced(self):
        big_left = inst(*((i, None) for i in range(1, 14)))
        big_right = inst(*((i + 100, None) for i in range(1, 14)))
        with pytest.raises(WorkflowError):
            find_instance_isomorphism(big_left, big_right)


class TestCanonicalization:
    def test_isomorphic_instances_share_canonical_form(self):
        a = canonicalize_instance(inst((1, "x"), (2, "x")))
        b = canonicalize_instance(inst((7, "q"), (9, "q")))
        assert a == b

    def test_distinguishes_patterns(self):
        same = canonicalize_instance(inst((1, 1)))
        different = canonicalize_instance(inst((1, 2)))
        assert same != different

    def test_fixed_values_kept(self):
        canonical = canonicalize_instance(inst((0, "x")), fixed=[0])
        assert 0 in canonical.active_domain()
