"""Incremental maintenance of FCQ¬ query results from relation deltas.

:class:`QueryDataflow` compiles one
:class:`~repro.workflow.queries.Query` into a chain of incremental
operators and thereafter maintains the query's satisfying valuations
under Z-set deltas of the underlying view relations — per transition
the work is O(|delta| · matches), never a re-evaluation.

The compilation *reuses the planner* rather than re-deriving join
orders: :func:`~repro.workflow.planner.plan_for` supplies the compiled
literal steps and ``QueryPlan._schedule`` the greedy
most-selective-first order plus the filter push-down schedule, exactly
as the planned/compiled backends execute them.  Each positive literal
becomes a :class:`~repro.dataflow.operators.DeltaJoin` of the prefix
valuations against the literal's relation; each pushed-down negative
literal becomes an :class:`~repro.dataflow.operators.AntiJoin` at the
same depth the planner checks it; comparisons stay stateless filters.
The chain is seeded with the unit valuation ``()`` and the initial
instance contents as one big first delta, so priming costs one
from-scratch evaluation and every later step is incremental.

Because the query is *full* (every satisfying valuation determines the
matching tuple of each positive literal uniquely), the maintained Z-set
is provably a set — every weight is ``+1``; a trailing
:class:`~repro.dataflow.operators.Distinct` guards the invariant.  The
hypothesis suite in ``tests/dataflow/test_query.py`` checks the
maintained multiset against ``Query.valuations`` from scratch after
every random transition.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Dict, List, Mapping, Optional, Tuple as PyTuple

from ..workflow.evalstats import EVAL_STATS
from ..workflow.instance import Instance
from ..workflow.planner import _KeyStep, _RelStep, plan_for
from ..workflow.queries import (
    Comparison,
    Const,
    KeyLiteral,
    Literal,
    Query,
    RelLiteral,
    Var,
    _unify,
    term_value,
)
from .operators import AntiJoin, DeltaJoin, Distinct
from .zset import ZSet

__all__ = ["QueryDataflow"]


def _rel_adapter(step: "_RelStep") -> PyTuple[Callable[[ZSet], ZSet], List[Var]]:
    """The per-literal input stage: relation-tuple deltas → step-local
    valuation deltas.

    Unifies each tuple against the literal's terms (constants, repeated
    variables and ⊥ handled by the same :func:`_unify` the evaluators
    use); tuples that do not match are dropped.  Returns the adapter and
    the step's local variable order.  The mapping is injective on
    matching tuples — every position is a constant or a recorded
    variable — so weights pass through unchanged.
    """
    local_vars: List[Var] = []
    for _, var in step.var_items:
        if var not in local_vars:
            local_vars.append(var)
    terms = step.terms

    def adapt(delta: ZSet) -> ZSet:
        out = ZSet()
        weights = out._weights
        for record, weight in delta:
            valuation: Optional[Dict[Var, object]] = {}
            for term, value in zip(terms, record.values):
                valuation = _unify(term, value, valuation)
                if valuation is None:
                    break
            if valuation is None:
                continue
            local = tuple(valuation[v] for v in local_vars)
            total = weights.get(local, 0) + weight
            if total:
                weights[local] = total
            else:
                weights.pop(local, None)
        return out

    return adapt, local_vars


def _key_adapter(step: "_KeyStep") -> PyTuple[Callable[[ZSet], ZSet], List[Var]]:
    """Input stage for a key literal: tuple deltas → key-valuation deltas.

    Maps each tuple to its key, so an update that keeps the key nets to
    zero; keys are unique per relation, so weights never exceed ±1.
    """
    term = step.term

    def adapt(delta: ZSet) -> ZSet:
        out = ZSet()
        weights = out._weights
        for record, weight in delta:
            valuation = _unify(term, record.key, {})
            if valuation is None:
                continue
            local = tuple(valuation[v] for v in local_vars)
            total = weights.get(local, 0) + weight
            if total:
                weights[local] = total
            else:
                weights.pop(local, None)
        return out

    local_vars = [term] if isinstance(term, Var) else []
    return adapt, local_vars


class _JoinStage:
    """One positive literal: adapter + delta join against the prefix."""

    __slots__ = ("name", "adapt", "join", "new_vars")

    def __init__(
        self,
        name: str,
        adapt: Callable[[ZSet], ZSet],
        local_vars: List[Var],
        bound: List[Var],
    ) -> None:
        self.name = name
        self.adapt = adapt
        shared = [v for v in local_vars if v in bound]
        self.new_vars = [v for v in local_vars if v not in bound]
        bound_index = {v: i for i, v in enumerate(bound)}
        left_positions = tuple(bound_index[v] for v in shared)
        local_index = {v: i for i, v in enumerate(local_vars)}
        right_shared = tuple(local_index[v] for v in shared)
        right_new = tuple(local_index[v] for v in self.new_vars)
        self.join = DeltaJoin(
            left_key=lambda prefix: tuple(prefix[i] for i in left_positions),
            right_key=lambda local: tuple(local[i] for i in right_shared),
            combine=lambda prefix, local: prefix
            + tuple(local[i] for i in right_new),
        )

    def step(self, prefix_delta: ZSet, relation_delta: ZSet) -> ZSet:
        return self.join.step(prefix_delta, self.adapt(relation_delta))


class _NegativeStage:
    """One pushed-down negative literal: anti-join against its relation.

    The left key grounds the literal under the prefix valuation; the
    right key is the stored tuple's values (or its key, for a key
    literal) — equality of the two is exactly the membership probe
    ``_filter_holds`` performs, including ⊥ (a singleton, so plain
    equality agrees with unification) and never-stored null keys.
    """

    __slots__ = ("name", "anti", "keys_only")

    def __init__(self, literal: Literal, bound: List[Var]) -> None:
        self.name = literal.view.name
        bound_index = {v: i for i, v in enumerate(bound)}
        if isinstance(literal, KeyLiteral):
            self.keys_only = True
            term = literal.term
            if isinstance(term, Const):
                value = term.value
                left_key = lambda prefix: value  # noqa: E731
            else:
                position = bound_index[term]
                left_key = lambda prefix: prefix[position]  # noqa: E731
            right_key = lambda record: record.key  # noqa: E731
        else:
            self.keys_only = False
            extractors = []
            for term in literal.terms:
                if isinstance(term, Const):
                    extractors.append((None, term.value))
                else:
                    extractors.append((bound_index[term], None))

            def left_key(prefix, _extract=tuple(extractors)):
                return tuple(
                    value if position is None else prefix[position]
                    for position, value in _extract
                )

            right_key = lambda record: record.values  # noqa: E731
        self.anti = AntiJoin(left_key=left_key, right_key=right_key)

    def step(self, prefix_delta: ZSet, relation_delta: ZSet) -> ZSet:
        return self.anti.step(prefix_delta, relation_delta)


def _comparison_filter(
    comparison: Comparison, bound: List[Var]
) -> Callable[[PyTuple[object, ...]], bool]:
    bound_index = {v: i for i, v in enumerate(bound)}

    def holds(prefix: PyTuple[object, ...]) -> bool:
        valuation = {
            var: prefix[bound_index[var]] for var in comparison.variables()
        }
        return comparison.holds(valuation)

    return holds


class QueryDataflow:
    """A query compiled to an incremental operator chain.

    Built from a query and the instance it starts on; thereafter
    :meth:`step` consumes per-relation Z-set deltas (keyed by *view*
    name, the relations the query's literals range over) and returns the
    delta of the satisfying-valuation Z-set.  :meth:`current` is the
    maintained result; :meth:`valuations` renders it in the evaluators'
    dict shape.
    """

    __slots__ = ("query", "var_order", "_stages", "_distinct", "_relations")

    def __init__(self, query: Query, instance: Instance) -> None:
        self.query = query
        plan = plan_for(query)
        ordered, schedule = plan._schedule(instance)
        bound: List[Var] = []
        #: per depth: the join stage (None at depth 0) then the filters.
        stages: List[PyTuple[Optional[_JoinStage], List[object]]] = []
        for depth in range(len(ordered) + 1):
            join: Optional[_JoinStage] = None
            if depth > 0:
                step = ordered[depth - 1]
                if isinstance(step, _RelStep):
                    adapt, local_vars = _rel_adapter(step)
                else:
                    adapt, local_vars = _key_adapter(step)
                join = _JoinStage(step.name, adapt, local_vars, bound)
                bound.extend(join.new_vars)
            filters: List[object] = []
            for flt in schedule[depth]:
                if isinstance(flt, Comparison):
                    filters.append(_comparison_filter(flt, bound))
                else:
                    filters.append(_NegativeStage(flt, bound))
            stages.append((join, filters))
        self.var_order: PyTuple[Var, ...] = tuple(bound)
        self._stages = stages
        self._distinct = Distinct()  # guards the all-weights-one invariant
        self._relations = frozenset(
            stage.name
            for join, filters in stages
            for stage in ([join] if join is not None else []) + filters
            if not callable(stage)
        )
        # Prime: the unit valuation plus the instance contents, as one
        # first delta.  Costs one from-scratch evaluation.
        initial = {
            name: ZSet.of(instance.relation(name)) for name in self._relations
        }
        self.step(initial, _unit=ZSet.singleton(()))

    def relations(self) -> PyTuple[str, ...]:
        """The (view-named) relations whose deltas this query consumes."""
        return tuple(sorted(self._relations))

    def step(
        self,
        changes: Mapping[str, ZSet],
        _unit: Optional[ZSet] = None,
    ) -> ZSet:
        """Advance by one transition; returns the result delta.

        *changes* maps view names to relation deltas; missing names mean
        no change.  O(|delta| · matches) through the whole chain.
        """
        started = perf_counter_ns()
        empty = ZSet()
        prefix_delta = _unit if _unit is not None else empty
        for join, filters in self._stages:
            if join is not None:
                prefix_delta = join.step(
                    prefix_delta, changes.get(join.name, empty)
                )
            for flt in filters:
                if callable(flt):
                    prefix_delta = prefix_delta.filter(flt)
                else:
                    prefix_delta = flt.step(
                        prefix_delta, changes.get(flt.name, empty)
                    )
        out = self._distinct.step(prefix_delta)
        EVAL_STATS.dataflow_query_steps += 1
        EVAL_STATS.dataflow_query_ns += perf_counter_ns() - started
        return out

    def current(self) -> ZSet:
        """The maintained Z-set of satisfying valuations (weights all +1),
        as value tuples over :attr:`var_order`."""
        return self._distinct.current()

    def valuations(self) -> List[Dict[Var, object]]:
        """The maintained result in the evaluators' dict-per-valuation shape."""
        order = self.var_order
        return [
            dict(zip(order, record)) for record, _ in self._distinct.current()
        ]
