"""The process-wide metrics registry: instruments, families, rendering."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_arithmetic(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increment(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)

    def test_histogram_counts_and_sum(self):
        histogram = Histogram(buckets=(1, 5, 10))
        for value in (0.5, 3, 7, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(110.5)

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram(buckets=(1, 5, 10))
        for value in (0.5, 3, 7, 100):
            histogram.observe(value)
        cumulative = histogram.cumulative()
        # Cumulative counts are monotone and end with +Inf == count.
        assert cumulative == [(1, 1), (5, 2), (10, 3), (float("inf"), 4)]

    def test_histogram_boundary_lands_in_bucket(self):
        # Prometheus buckets are `le` (less-or-equal) bounds.
        histogram = Histogram(buckets=(1, 5))
        histogram.observe(1)
        assert histogram.cumulative()[0] == (1, 1)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestFamilies:
    def test_labelled_children_are_idempotent(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "reqs", labelnames=("op",))
        first = family.labels(op="ping")
        second = family.labels(op="ping")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_label_name_mismatch_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "reqs", labelnames=("op",))
        with pytest.raises(ValueError):
            family.labels(peer="sue")

    def test_unlabelled_family_forwards_operations(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        counter.inc(3)
        assert counter.value == 3

    def test_unlabelled_use_of_labelled_family_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "reqs", labelnames=("op",))
        with pytest.raises(ValueError):
            family.inc()

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total", "events")
        second = registry.counter("events_total", "events")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "events")
        with pytest.raises(ValueError):
            registry.gauge("events_total", "events")

    def test_labelnames_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "reqs", labelnames=("op",))
        with pytest.raises(ValueError):
            registry.counter("requests_total", "reqs", labelnames=("peer",))


class TestRendering:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests.", labelnames=("op",)).labels(
            op="ping"
        ).inc(2)
        registry.gauge("depth", "Queue depth.").set(3)
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests." in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{op="ping"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", "Latency.", buckets=(1, 5))
        for value in (0.5, 3, 7):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="5"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_sum 10.5" in text
        assert "latency_count 3" in text

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "reqs", labelnames=("op",)).labels(
            op="ping"
        ).inc()
        registry.histogram("latency", "lat", buckets=(1,)).observe(2)
        snapshot = registry.snapshot()
        assert snapshot["requests_total"]["ping"] == 1
        assert snapshot["latency"][""] == {"count": 1, "sum": 2}

    def test_render_is_sorted_by_family_name(self):
        registry = MetricsRegistry()
        registry.counter("zz_total", "z").inc()
        registry.counter("aa_total", "a").inc()
        text = registry.render_prometheus()
        assert text.index("aa_total") < text.index("zz_total")


class TestResetAndCollectors:
    def test_reset_zeroes_in_place(self):
        # Hot paths cache child references at import time; reset() must
        # zero those same objects, not orphan them.
        registry = MetricsRegistry()
        cached = registry.counter("events_total", "events", labelnames=("op",)).labels(
            op="apply"
        )
        cached.inc(5)
        registry.reset()
        assert cached.value == 0
        cached.inc()
        assert registry.snapshot()["events_total"]["apply"] == 1

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live_runs", "Live runs.")
        state = {"runs": 7}
        registry.register_collector(lambda _reg: gauge.set(state["runs"]))
        assert "live_runs 7" in registry.render_prometheus()
        state["runs"] = 2
        assert "live_runs 2" in registry.render_prometheus()

    def test_broken_collector_does_not_break_scrape(self):
        registry = MetricsRegistry()
        registry.counter("ok_total", "ok").inc()

        def explode(_registry):
            raise RuntimeError("collector bug")

        registry.register_collector(explode)
        assert "ok_total 1" in registry.render_prometheus()


class TestGlobalRegistryIntegration:
    def test_engine_reports_into_global_registry(self, approval):
        from repro.obs.metrics import METRICS
        from repro.workflow import Event, execute

        before = METRICS.snapshot().get("repro_engine_events_applied_total", {}).get("", 0)
        execute(approval, [Event(approval.rule(name), {}) for name in "efgh"])
        after = METRICS.snapshot()["repro_engine_events_applied_total"][""]
        assert after == before + 4

    def test_global_render_is_valid_prometheus(self):
        from repro.obs.metrics import METRICS

        for line in METRICS.render_prometheus().splitlines():
            assert line.startswith("#") or " " in line
