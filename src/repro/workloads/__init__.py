"""Canonical programs from the paper and parametrized synthetic workloads."""

from .generators import (
    OBSERVER,
    chain_program,
    churn_program,
    noisy_chain_program,
    parallel_chains_program,
    profile_program,
    random_propositional_program,
)
from .simulation import (
    PeerPolicy,
    SimulationResult,
    Simulator,
    fact_goal,
    simulate_until,
)
from .paper_examples import (
    approval_program,
    derivation_choice_program,
    hiring_no_cfo_program,
    hiring_program,
    hiring_transparent_program,
    lossy_schema_declarations,
    opaque_veto_program,
    replace_assignment_program,
    transitive_closure_program,
    vetoed_hiring_program,
)

__all__ = [
    "OBSERVER",
    "PeerPolicy",
    "SimulationResult",
    "Simulator",
    "fact_goal",
    "simulate_until",
    "approval_program",
    "chain_program",
    "derivation_choice_program",
    "churn_program",
    "hiring_no_cfo_program",
    "hiring_program",
    "hiring_transparent_program",
    "lossy_schema_declarations",
    "noisy_chain_program",
    "opaque_veto_program",
    "parallel_chains_program",
    "profile_program",
    "random_propositional_program",
    "replace_assignment_program",
    "transitive_closure_program",
    "vetoed_hiring_program",
]
