"""Bounded enumeration of instances over a finite constant pool.

The decision procedures of Section 5 (Theorems 5.10 and 5.11) reduce to
checks over instances and event sequences using values from a bounded
constant set ``C_m`` (constants of the program plus polynomially many
fresh constants) — invariance under isomorphism (Lemma A.2) makes this
sound.  This module provides the constant pools and the (exponential,
as the PSPACE bounds allow) instance enumeration they require.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..workflow.domain import NULL
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.schema import Relation, Schema
from ..workflow.tuples import Tuple


@dataclass(frozen=True)
class PoolConstant:
    """A distinguished fresh constant of the pool ``C_m``."""

    index: int

    def __repr__(self) -> str:
        return f"c{self.index}"


def constant_pool(program: WorkflowProgram, extra: int) -> PyTuple[object, ...]:
    """``C_m``: the program's constants plus *extra* fresh pool constants.

    The pool never includes ``⊥`` (instances cannot hold null keys and
    the enumerators add ``⊥`` separately for non-key attributes).
    """
    base = sorted(
        (c for c in program.constants() if c is not NULL), key=repr
    )
    return tuple(base) + tuple(PoolConstant(i) for i in range(extra))


def default_pool_size(program: WorkflowProgram, h: int) -> int:
    """A generous bound on ``c_{h+1}`` (values in h+1 events + instance).

    Each event instantiates at most (body literals + head updates) ×
    max-arity values; the initial instance contributes keys drawn from
    the events.  The theorem only needs the pool to be large enough, so
    we over-approximate and let callers cap it for tractability.
    """
    atoms = program.max_body_size() + program.max_head_size()
    arity = program.schema.schema.max_arity()
    return max(1, (h + 1) * max(1, atoms) * max(1, arity))


def enumerate_relation_contents(
    relation: Relation,
    keys: Sequence[object],
    values: Sequence[object],
    max_tuples: int,
) -> Iterator[PyTuple[Tuple, ...]]:
    """All contents of one relation: up to *max_tuples* tuples.

    Keys range over *keys* (pairwise distinct per instance); non-key
    attributes range over *values* plus ``⊥``.
    """
    value_pool: List[object] = [NULL] + list(values)
    nonkey = len(relation.nonkey_attributes)
    yield ()
    for count in range(1, max_tuples + 1):
        if count > len(keys):
            return
        for key_choice in itertools.combinations(keys, count):
            for rows in itertools.product(
                itertools.product(value_pool, repeat=nonkey), repeat=count
            ):
                yield tuple(
                    Tuple(relation.attributes, (key,) + row)
                    for key, row in zip(key_choice, rows)
                )


def enumerate_instances(
    schema: Schema,
    pool: Sequence[object],
    max_tuples_per_relation: int,
    relations: Optional[Sequence[str]] = None,
) -> Iterator[Instance]:
    """All instances over *pool* with bounded relation sizes.

    WARNING: the count grows very fast; keep pools and bounds small (the
    procedures of Section 5 are PSPACE-hard in general).
    """
    chosen = [schema.relation(name) for name in relations] if relations else list(schema)
    per_relation = [
        list(enumerate_relation_contents(r, pool, pool, max_tuples_per_relation))
        for r in chosen
    ]
    for combination in itertools.product(*per_relation):
        data = {
            relation.name: tuples
            for relation, tuples in zip(chosen, combination)
        }
        yield Instance.from_tuples(schema, data)


def count_instances(
    schema: Schema, pool: Sequence[object], max_tuples_per_relation: int
) -> int:
    """The number of instances :func:`enumerate_instances` would yield."""
    total = 1
    for relation in schema:
        per = sum(
            1
            for _ in enumerate_relation_contents(
                relation, pool, pool, max_tuples_per_relation
            )
        )
        total *= per
    return total
