"""Deciding h-boundedness (Theorem 5.10).

A program ``P`` is *h-bounded* for peer ``p`` when every minimum
p-faithful run (on any initial instance) whose events are all silent at
``p`` except the last has length at most ``h``.  By Lemmas A.2/A.3 it
suffices to search initial instances and event sequences over the
bounded constant pool ``C_{h+1}``, which is what
:func:`check_h_bounded` does — an exponential enumeration, as the
PSPACE bound allows, governed by an explicit :class:`SearchBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..runtime.budget import Budget, checkpoint
from ..workflow.errors import BudgetExceeded
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .faithful_runs import SilentFaithfulRun, iter_silent_faithful_runs
from .instances import constant_pool, default_pool_size, enumerate_instances


@dataclass(frozen=True)
class SearchBudget:
    """Caps for the bounded-model-checking searches of Section 5.

    ``pool_extra``: fresh constants added to ``const(P)`` (None: use the
    theorem's polynomial default — often large; cap it for big schemas).
    ``max_tuples_per_relation``: initial-instance size cap per relation.
    ``max_instances``: stop after enumerating this many initial
    instances (None: no cap — exact within the pool).
    """

    pool_extra: Optional[int] = None
    max_tuples_per_relation: int = 2
    max_instances: Optional[int] = None

    def resolve_pool(self, program: WorkflowProgram, h: int) -> PyTuple[object, ...]:
        extra = self.pool_extra
        if extra is None:
            extra = default_pool_size(program, h)
        return constant_pool(program, extra)


@dataclass(frozen=True)
class BoundednessResult:
    """Outcome of an h-boundedness check."""

    bounded: bool
    h: int
    witness: Optional[SilentFaithfulRun] = None
    instances_checked: int = 0
    exhausted: bool = True  # False when the budget cut the search short
    truncated: bool = False  # True when a runtime Budget killed the search
    reason: Optional[str] = None

    def __bool__(self) -> bool:
        return self.bounded


def iter_boundedness_witnesses(
    program: WorkflowProgram,
    peer: str,
    h: int,
    budget: SearchBudget = SearchBudget(),
    slack: int = 0,
    runtime_budget: Optional[Budget] = None,
) -> Iterator[SilentFaithfulRun]:
    """All violations found: silent minimum-faithful runs longer than *h*.

    Searches lengths in ``[h+1, h+1+slack]``; by the proof of Theorem
    5.10 a violation is witnessed at length exactly ``h+1``, so the
    default ``slack=0`` is complete (within the pool/budget).
    """
    pool = budget.resolve_pool(program, h)
    checked = 0
    for initial in enumerate_instances(
        program.schema.schema, pool, budget.max_tuples_per_relation
    ):
        if budget.max_instances is not None and checked >= budget.max_instances:
            return
        checked += 1
        checkpoint(runtime_budget)
        for candidate in iter_silent_faithful_runs(
            program, peer, initial, max_length=h + 1 + slack, budget=runtime_budget
        ):
            if len(candidate) > h:
                yield candidate


def check_h_bounded(
    program: WorkflowProgram,
    peer: str,
    h: int,
    budget: SearchBudget = SearchBudget(),
    runtime_budget: Optional[Budget] = None,
    anytime: bool = False,
    *,
    workers: Optional[int] = None,
) -> BoundednessResult:
    """Decide whether *program* is h-bounded for *peer* (Theorem 5.10).

    Exact relative to the budget: with the default unbounded
    ``max_instances`` and the theorem's pool size, a ``bounded=True``
    answer is a proof; with a trimmed budget it is a bounded search.

    *runtime_budget* bounds the wall-clock/step cost of the exponential
    search; when it trips, :class:`~repro.workflow.errors.BudgetExceeded`
    propagates unless *anytime* is set, in which case the result so far
    is returned with ``exhausted=False, truncated=True`` — a "no
    violation found yet", never a silent proof.

    *workers* (or the process default from
    :func:`repro.parallel.set_default_workers`) fans the instance
    enumeration out over a worker pool; the result is identical.

    >>> # result = check_h_bounded(program, "sue", h=3)
    >>> # result.bounded, result.witness
    """
    from ..parallel.config import resolve_workers

    if resolve_workers(workers) > 1:
        from ..parallel.bounded import parallel_check_h_bounded

        return parallel_check_h_bounded(
            program, peer, h, budget, runtime_budget, anytime, workers=workers
        )
    pool = budget.resolve_pool(program, h)
    checked = 0
    exhausted = True
    try:
        for initial in enumerate_instances(
            program.schema.schema, pool, budget.max_tuples_per_relation
        ):
            if budget.max_instances is not None and checked >= budget.max_instances:
                exhausted = False
                break
            checked += 1
            checkpoint(runtime_budget)
            for candidate in iter_silent_faithful_runs(
                program, peer, initial, max_length=h + 1, budget=runtime_budget
            ):
                if len(candidate) > h:
                    return BoundednessResult(False, h, candidate, checked, True)
    except BudgetExceeded as exc:
        if not anytime:
            raise
        return BoundednessResult(
            True, h, None, checked, exhausted=False, truncated=True, reason=str(exc)
        )
    return BoundednessResult(True, h, None, checked, exhausted)


def guess_bound_from_traces(
    program: WorkflowProgram,
    peer: str,
    samples: int = 10,
    run_length: int = 20,
    seed: int = 0,
    confirm_budget: Optional[SearchBudget] = None,
) -> PyTuple[int, Optional[bool]]:
    """The heuristic route to ``h`` the paper suggests (Section 5).

    "One approach is heuristic: by examining traces of runs, one can
    'guess' h and then test h-boundedness using Theorem 5.10."  Sampled
    random runs are split into p-stages and the largest minimal faithful
    stage subrun observed becomes the guess; when *confirm_budget* is
    given, the guess is confirmed (or refuted) by the exact decision.

    Returns ``(guess, confirmed)`` where *confirmed* is None without a
    budget, True/False otherwise.

    >>> # h, confirmed = guess_bound_from_traces(program, "sue",
    >>> #                                        confirm_budget=SearchBudget())
    """
    from ..design.run_properties import run_stage_bound
    from ..workflow.enumerate import RunGenerator

    guess = 0
    for index in range(samples):
        run = RunGenerator(program, seed=seed + index).random_run(run_length)
        guess = max(guess, run_stage_bound(run, peer))
    guess = max(guess, 1)
    if confirm_budget is None:
        return guess, None
    verdict = check_h_bounded(program, peer, guess, confirm_budget)
    return guess, verdict.bounded


def smallest_bound(
    program: WorkflowProgram,
    peer: str,
    max_h: int,
    budget: SearchBudget = SearchBudget(),
    runtime_budget: Optional[Budget] = None,
    *,
    workers: Optional[int] = None,
) -> Optional[int]:
    """The least ``h ≤ max_h`` for which the program is h-bounded.

    Returns None when the program is not even ``max_h``-bounded.  (By
    Theorem 5.9 the existence of *some* bound is undecidable, so a None
    answer is only relative to ``max_h``.)  *workers* fans the instance
    enumeration out over a worker pool; the result is identical.
    """
    from ..parallel.config import resolve_workers

    if resolve_workers(workers) > 1:
        from ..parallel.bounded import parallel_smallest_bound

        return parallel_smallest_bound(
            program, peer, max_h, budget, runtime_budget, workers=workers
        )
    # A single pass: find the longest silent minimum-faithful run up to
    # max_h + 1; the program is h-bounded exactly for h >= that length.
    longest = 0
    pool = budget.resolve_pool(program, max_h)
    checked = 0
    for initial in enumerate_instances(
        program.schema.schema, pool, budget.max_tuples_per_relation
    ):
        if budget.max_instances is not None and checked >= budget.max_instances:
            break
        checked += 1
        checkpoint(runtime_budget)
        for candidate in iter_silent_faithful_runs(
            program, peer, initial, max_length=max_h + 1, budget=runtime_budget
        ):
            longest = max(longest, len(candidate))
            if longest > max_h:
                return None
    return longest
