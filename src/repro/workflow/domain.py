"""The data domain ``dom`` of the workflow model.

The model of the paper assumes an infinite data domain ``dom`` with a
distinguished element ``⊥`` (undefined), and an infinite supply of fresh
values used to instantiate head-only variables of rules.  We realise
``dom`` as the set of hashable Python values, ``⊥`` as the singleton
:data:`NULL`, and fresh values as instances of :class:`FreshValue` minted
by a :class:`FreshValueSource`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Set


class _Null:
    """The distinguished undefined value ``⊥`` (a singleton)."""

    _instance = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __copy__(self) -> "_Null":
        return self

    def __deepcopy__(self, memo: dict) -> "_Null":
        return self

    def __reduce__(self):
        return (_Null, ())


#: The distinguished undefined value ``⊥`` of the paper.
NULL = _Null()


def is_null(value: object) -> bool:
    """Return True iff *value* is the undefined value ``⊥``."""
    return value is NULL


@dataclass(frozen=True, order=True)
class FreshValue:
    """A globally fresh value minted for a head-only variable.

    Fresh values compare equal only to themselves, are hashable, and carry
    a sequence number so runs are reproducible.
    """

    index: int

    def __repr__(self) -> str:
        return f"ν{self.index}"  # ν17


class FreshValueSource:
    """Mints fresh values that never collide with previously seen ones.

    The run semantics requires a head-only variable to be instantiated
    with a *globally fresh* value: one not occurring in ``const(P)`` nor
    in any earlier instance of the run.  The source tracks every value it
    has handed out and can also be told about externally observed values
    via :meth:`observe`.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._seen: Set[object] = set()

    def observe(self, values: Iterable[object]) -> None:
        """Record *values* as used, so they are never minted as fresh."""
        self._seen.update(values)

    def fresh(self) -> FreshValue:
        """Return a value distinct from every value observed so far."""
        while True:
            candidate = FreshValue(self._next)
            self._next += 1
            if candidate not in self._seen:
                self._seen.add(candidate)
                return candidate

    def stream(self) -> Iterator[FreshValue]:
        """Yield an endless stream of fresh values."""
        while True:
            yield self.fresh()
