"""Deciding transparency for h-bounded programs (Theorem 5.11).

A program is *transparent* for ``p`` (Definition 5.6) when, for all
p-fresh instances ``I, J`` with ``I@p = J@p``, every minimum p-faithful
run ``α`` on ``I`` whose events are all silent at ``p`` except the last
(and whose new values avoid ``adom(J)``) is also such a run on ``J``,
with ``α(I)@p = α(J)@p``: what other peers may do to ``p``'s view is
determined by what ``p`` sees.

For h-bounded programs, violations have witnesses over bounded
instances (the proof of Theorem 5.11), so :func:`check_transparent`
performs a bounded exhaustive check: enumerate p-fresh instances over
the pool, group them by their p-view, and replay each silent minimum
faithful run of each group member on every other member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .bounded import SearchBudget, check_h_bounded
from .faithful_runs import (
    SilentFaithfulRun,
    is_minimum_faithful_run,
    is_mostly_silent,
    iter_silent_faithful_runs,
    run_on,
)
from .freshness import iter_p_fresh_instances


@dataclass(frozen=True)
class TransparencyViolation:
    """A counterexample to Definition 5.6."""

    instance: Instance  # I: the silent faithful run applies here ...
    other: Instance  # J: ... but not equivalently here, although I@p = J@p
    events: PyTuple[Event, ...]
    reason: str

    def describe(self) -> str:
        names = ", ".join(e.rule.name for e in self.events)
        return (
            f"run [{names}] on {self.instance!r} is not mirrored on "
            f"{self.other!r}: {self.reason}"
        )


@dataclass(frozen=True)
class TransparencyResult:
    """Outcome of a transparency check."""

    transparent: bool
    violation: Optional[TransparencyViolation] = None
    pairs_checked: int = 0
    exhausted: bool = True

    def __bool__(self) -> bool:
        return self.transparent


def _mirror_failure(
    program: WorkflowProgram,
    peer: str,
    source: Instance,
    target: Instance,
    candidate: SilentFaithfulRun,
) -> Optional[str]:
    """Why *candidate* (a silent faithful run on *source*) fails on *target*."""
    events = list(candidate.events)
    mirrored = run_on(program, events, target)
    if mirrored is None:
        return "the event sequence is not applicable"
    if not is_mostly_silent(mirrored, peer):
        return "visibility pattern differs (not all-but-last silent)"
    if not is_minimum_faithful_run(mirrored, peer):
        return "not a minimum p-faithful run on the other instance"
    schema = program.schema
    final_source = schema.view_instance(candidate.run.final_instance, peer)
    final_target = schema.view_instance(mirrored.final_instance, peer)
    if final_source != final_target:
        return "final p-views differ"
    return None


def check_transparent(
    program: WorkflowProgram,
    peer: str,
    h: int,
    budget: SearchBudget = SearchBudget(),
    require_bounded: bool = False,
    witness_freshness: bool = True,
) -> TransparencyResult:
    """Decide transparency of an h-bounded *program* for *peer*.

    The check is exact relative to the pool/budget (Theorem 5.11 bounds
    counterexample sizes for h-bounded programs).  Set *require_bounded*
    to first verify h-boundedness and raise if it fails.

    >>> # result = check_transparent(program, "sue", h=2)
    >>> # result.transparent, result.violation
    """
    if require_bounded:
        bounded = check_h_bounded(program, peer, h, budget)
        if not bounded:
            raise ValueError(
                f"program is not {h}-bounded for {peer!r}; transparency "
                "check requires boundedness"
            )
    pool = budget.resolve_pool(program, h)
    schema = program.schema
    # Group p-fresh instances by their p-view.
    groups: Dict[Instance, List[Instance]] = {}
    count = 0
    for instance, _witness in iter_p_fresh_instances(
        program,
        peer,
        pool,
        budget.max_tuples_per_relation,
        max_predecessors=budget.max_instances,
        witness_freshness=witness_freshness,
    ):
        groups.setdefault(schema.view_instance(instance, peer), []).append(instance)
        count += 1
    exhausted = budget.max_instances is None
    pairs = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        # Silent faithful runs are enumerated once per member and
        # replayed on every other member of the same view-group.
        runs_of: Dict[int, List[SilentFaithfulRun]] = {}
        for index, source in enumerate(members):
            runs_of[index] = list(
                iter_silent_faithful_runs(program, peer, source, max_length=h)
            )
        for i, source in enumerate(members):
            for j, target in enumerate(members):
                if i == j:
                    continue
                pairs += 1
                for candidate in runs_of[i]:
                    # new(α) values are canonically minted fresh values,
                    # disjoint from pool-valued instances by construction
                    # (the adom(J) ∩ new(α) = ∅ side condition).
                    reason = _mirror_failure(program, peer, source, target, candidate)
                    if reason is not None:
                        return TransparencyResult(
                            False,
                            TransparencyViolation(
                                source, target, candidate.events, reason
                            ),
                            pairs,
                            exhausted,
                        )
    return TransparencyResult(True, None, pairs, exhausted)


def check_transparent_and_bounded(
    program: WorkflowProgram,
    peer: str,
    h: int,
    budget: SearchBudget = SearchBudget(),
) -> PyTuple[bool, Optional[object]]:
    """Theorem 5.11 (ii): decide h-boundedness and transparency together.

    Returns ``(True, None)`` or ``(False, witness)`` where the witness is
    a :class:`~repro.transparency.bounded.BoundednessResult` witness run
    or a :class:`TransparencyViolation`.
    """
    bounded = check_h_bounded(program, peer, h, budget)
    if not bounded:
        return False, bounded.witness
    result = check_transparent(program, peer, h, budget)
    if not result:
        return False, result.violation
    return True, None
