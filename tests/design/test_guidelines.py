"""Tests for the design guidelines (C1)-(C4) and Theorem 6.2."""

import pytest

from repro.design.guidelines import (
    check_c1,
    check_c2,
    check_c3,
    check_c4,
    check_design_guidelines,
    check_linear_head_c1,
)
from repro.workflow.parser import parse_program

TRANSPARENT = ["Cleared", "Approved", "Hire"]


class TestC1:
    def test_full_views_pass(self, hiring_transparent):
        assert check_c1(hiring_transparent, "sue") == []

    def test_partial_view_detected(self):
        program = parse_program(
            """
            peers p, q
            relation R(K, A)
            view R@p(K, A)
            view R@q(K)
            [r] +R@p(x, y) :-
            """
        )
        violations = check_c1(program, "p")
        assert violations and "R@q" in violations[0]

    def test_invisible_relations_unconstrained(self, hiring_transparent):
        # Approved is invisible at sue; partial views of it would be
        # fine for C1 (but the example sees it fully anyway).
        assert check_c1(hiring_transparent, "sue") == []


class TestC2:
    def test_stage_program_passes(self, hiring_transparent):
        assert check_c2(hiring_transparent, "sue") == []

    def test_missing_stage_detected(self, hiring_no_cfo):
        violations = check_c2(hiring_no_cfo, "sue")
        assert violations and "no Stage relation" in violations[0]

    def test_unguarded_silent_rule_detected(self):
        program = parse_program(
            """
            peers p, q
            relation Stage(K, sid)
            relation Vis(K)
            relation Hid(K)
            view Stage@p(K, sid)
            view Stage@q(K, sid)
            view Vis@p(K)
            view Vis@q(K)
            view Hid@q(K)
            [open] +Stage@p(0, z) :- not Key[Stage]@p(0)
            [silent] +Hid@q(x) :-
            [show] +Vis@q(x), -Key[Stage]@q(0) :- Stage@q(0, s)
            """
        )
        violations = check_c2(program, "p")
        assert any("silent" in v for v in violations)


class TestC3:
    def test_stage_id_attribute_required(self, hiring_transparent):
        assert check_c3(hiring_transparent, "sue", TRANSPARENT) == []

    def test_missing_stage_id_detected(self, hiring_no_cfo):
        violations = check_c3(hiring_no_cfo, "sue", ["Cleared", "Approved", "Hire"])
        assert any("Approved" in v for v in violations)

    def test_visible_must_be_transparent(self, hiring_transparent):
        violations = check_c3(hiring_transparent, "sue", ["Approved"])
        assert any("Cleared" in v for v in violations)


class TestC4:
    def test_stage_program_passes(self, hiring_transparent):
        assert check_c4(hiring_transparent, "sue", TRANSPARENT) == []

    def test_example_61_mixed_updates_detected(self, opaque_veto):
        violations = check_c4(opaque_veto, "p", ["R"])
        assert any("mixes opaque update" in v for v in violations)

    def test_opaque_read_detected(self):
        program = parse_program(
            """
            peers p, q
            relation Vis(K)
            relation Opaque(K)
            view Vis@p(K)
            view Vis@q(K)
            view Opaque@q(K)
            [bad] +Vis@q(x) :- Opaque@q(y)
            """
        )
        violations = check_c4(program, "p", ["Vis"])
        assert any("reads opaque relation" in v for v in violations)

    def test_key_reuse_detected(self):
        program = parse_program(
            """
            peers p, q
            relation Stage(K, sid)
            relation Vis(K)
            relation Tr(K, sid)
            view Stage@p(K, sid)
            view Stage@q(K, sid)
            view Vis@p(K)
            view Vis@q(K)
            view Tr@q(K, sid)
            [open] +Stage@p(0, z) :- not Key[Stage]@p(0)
            [bad] +Tr@q(x, s) :- Vis@q(x), Stage@q(0, s)
            """
        )
        # x is bound in the body but there is no Tr(x, ...) witness:
        # this reuses the key of Vis for Tr (the Example 5.7 pitfall).
        violations = check_c4(program, "p", ["Vis", "Tr"])
        assert any("neither creates a fresh key" in v for v in violations)


class TestCombined:
    def test_theorem_62_premise_for_stage_program(self, hiring_transparent):
        report = check_design_guidelines(hiring_transparent, "sue", TRANSPARENT)
        assert report.ok, report.violations

    def test_non_compliant_program_reported(self, hiring_no_cfo):
        report = check_design_guidelines(hiring_no_cfo, "sue", TRANSPARENT)
        assert not report.ok

    def test_linear_head_check(self, hiring, hiring_transparent):
        assert check_linear_head_c1(hiring, "sue") == []
        violations = check_linear_head_c1(hiring_transparent, "sue")
        assert any("linear-head" in v for v in violations)
