"""Serialization: unparse programs, export and replay runs.

* :func:`program_to_text` renders a :class:`WorkflowProgram` back into
  the textual syntax of :mod:`repro.workflow.parser`, such that parsing
  the result yields an equivalent program (same schema, views and
  rules) — the inverse of :func:`~repro.workflow.parser.parse_program`.
* :func:`run_to_dict` / :func:`run_from_dict` export a run as a
  JSON-compatible structure (rule names plus valuations) and replay it
  against a program, enabling audit logs and cross-process transport of
  runs without pickling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .conditions import (
    FALSE,
    TRUE,
    And,
    AttrEq,
    Condition,
    Eq,
    Not,
    Or,
)
from .domain import NULL, FreshValue, is_null
from .errors import WorkflowError
from .events import Event
from .instance import Instance
from .program import WorkflowProgram
from .queries import Comparison, Const, KeyLiteral, RelLiteral, Term, Var
from .rules import Deletion, Insertion, Rule
from .runs import Run, execute
from .views import View


class SerializationError(WorkflowError):
    """A value or construct cannot be represented in the target format."""


# ----------------------------------------------------------------------
# Program -> text
# ----------------------------------------------------------------------


def _render_value(value: object) -> str:
    """A constant in the textual syntax (null, int, or quoted string)."""
    if is_null(value):
        return "null"
    if isinstance(value, bool):
        raise SerializationError("booleans have no textual constant syntax")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        if "'" in value or '"' in value or "\n" in value:
            raise SerializationError(f"string constant {value!r} contains quotes")
        return f"'{value}'"
    raise SerializationError(f"constant {value!r} has no textual syntax")


def _render_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return _render_value(term.value)
    raise SerializationError(f"not a term: {term!r}")


def render_condition(condition: Condition) -> str:
    """A selection condition in the ``where`` clause syntax."""
    if condition == TRUE:
        return "true"
    if condition == FALSE:
        return "false"
    if isinstance(condition, Eq):
        return f"{condition.attribute} = {_render_value(condition.constant)}"
    if isinstance(condition, AttrEq):
        return f"{condition.left} = {condition.right}"
    if isinstance(condition, Not):
        return f"not ({render_condition(condition.inner)})"
    if isinstance(condition, And):
        if not condition.parts:
            return "true"
        return " and ".join(f"({render_condition(p)})" for p in condition.parts)
    if isinstance(condition, Or):
        if not condition.parts:
            return "false"
        return " or ".join(f"({render_condition(p)})" for p in condition.parts)
    raise SerializationError(f"condition {condition!r} has no textual syntax")


def _render_view(view: View) -> str:
    attrs = ", ".join(view.attributes)
    line = f"view {view.relation.name}@{view.peer}({attrs})"
    if view.selection != TRUE:
        line += f" where {render_condition(view.selection)}"
    return line


def _render_literal(literal: object) -> str:
    if isinstance(literal, RelLiteral):
        terms = ", ".join(_render_term(t) for t in literal.terms)
        atom = f"{literal.view.relation.name}@{literal.view.peer}({terms})"
        return atom if literal.positive else f"not {atom}"
    if isinstance(literal, KeyLiteral):
        atom = (
            f"Key[{literal.view.relation.name}]@{literal.view.peer}"
            f"({_render_term(literal.term)})"
        )
        return atom if literal.positive else f"not {atom}"
    if isinstance(literal, Comparison):
        op = "=" if literal.positive else "!="
        return f"{_render_term(literal.left)} {op} {_render_term(literal.right)}"
    raise SerializationError(f"literal {literal!r} has no textual syntax")


def _render_rule(rule: Rule) -> str:
    head_parts: List[str] = []
    for atom in rule.head:
        if isinstance(atom, Insertion):
            terms = ", ".join(_render_term(t) for t in atom.terms)
            head_parts.append(f"+{atom.view.relation.name}@{atom.view.peer}({terms})")
        elif isinstance(atom, Deletion):
            head_parts.append(
                f"-Key[{atom.view.relation.name}]@{atom.view.peer}"
                f"({_render_term(atom.term)})"
            )
    body = ", ".join(_render_literal(lit) for lit in rule.body.literals)
    return f"[{rule.name}] {', '.join(head_parts)} :- {body}".rstrip()


def program_to_text(program: WorkflowProgram) -> str:
    """Unparse *program* into the textual syntax.

    Rule names must be plain identifiers for the round trip to succeed
    (auto-generated and paper-example names all are).

    >>> # text = program_to_text(program)
    >>> # parse_program(text)  # equivalent program
    """
    schema = program.schema
    lines: List[str] = ["peers " + ", ".join(schema.peers)]
    for relation in schema.schema:
        lines.append(f"relation {relation.name}({', '.join(relation.attributes)})")
    for view in schema.all_views():
        lines.append(_render_view(view))
    for rule in program:
        lines.append(_render_rule(rule))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Values <-> JSON
# ----------------------------------------------------------------------


def value_to_json(value: object) -> Any:
    """Encode a domain value as a JSON-compatible structure."""
    if is_null(value):
        return {"$null": True}
    if isinstance(value, FreshValue):
        return {"$fresh": value.index}
    if isinstance(value, (str, int, float, bool)):
        return value
    raise SerializationError(f"value {value!r} is not JSON-serialisable")


def value_from_json(data: Any) -> object:
    """Decode :func:`value_to_json` output."""
    if isinstance(data, dict):
        if data.get("$null"):
            return NULL
        if "$fresh" in data:
            return FreshValue(int(data["$fresh"]))
        raise SerializationError(f"unknown tagged value {data!r}")
    return data


# ----------------------------------------------------------------------
# Runs <-> JSON-compatible dicts
# ----------------------------------------------------------------------


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Encode an event as ``{"rule": name, "valuation": {...}}``."""
    return {
        "rule": event.rule.name,
        "valuation": {
            var.name: value_to_json(value) for var, value in event.valuation
        },
    }


def event_from_dict(program: WorkflowProgram, data: Dict[str, Any]) -> Event:
    """Decode :func:`event_to_dict` output against *program*."""
    rule = program.rule(data["rule"])
    valuation = {
        Var(name): value_from_json(value)
        for name, value in data.get("valuation", {}).items()
    }
    return Event(rule, valuation)


def instance_to_dict(instance: Instance) -> Dict[str, Any]:
    """Encode an instance as relation -> list of attribute maps."""
    out: Dict[str, Any] = {}
    for relation in instance.schema:
        tuples = [
            {attr: value_to_json(tup[attr]) for attr in tup.attributes}
            for tup in instance.relation(relation.name)
        ]
        if tuples:
            out[relation.name] = tuples
    return out


def instance_from_dict(program: WorkflowProgram, data: Dict[str, Any]) -> Instance:
    """Decode :func:`instance_to_dict` output against *program*'s schema."""
    from .tuples import Tuple

    schema = program.schema.schema
    contents = {}
    for name, rows in data.items():
        relation = schema.relation(name)
        contents[name] = [
            Tuple(
                relation.attributes,
                tuple(value_from_json(row.get(a, {"$null": True})) for a in relation.attributes),
            )
            for row in rows
        ]
    return Instance.from_tuples(schema, contents)


def run_to_dict(run: Run, include_instances: bool = False) -> Dict[str, Any]:
    """Encode a run as a replayable JSON-compatible structure.

    Only the event sequence is required to reconstruct the run (events
    determine runs); instances are included for audit logs on request.
    """
    out: Dict[str, Any] = {
        "initial": instance_to_dict(run.initial),
        "events": [event_to_dict(event) for event in run.events],
    }
    if include_instances:
        out["instances"] = [instance_to_dict(inst) for inst in run.instances]
    return out


def run_from_dict(program: WorkflowProgram, data: Dict[str, Any]) -> Run:
    """Replay a :func:`run_to_dict` structure against *program*.

    The events are re-executed, so the result is validated end to end;
    raises :class:`~repro.workflow.errors.RunError` when the log does
    not form a run of the program.
    """
    initial = instance_from_dict(program, data.get("initial", {}))
    events = [event_from_dict(program, entry) for entry in data.get("events", [])]
    return execute(program, events, initial=initial, check_freshness=False)


def run_to_json(run: Run, include_instances: bool = False, indent: Optional[int] = None) -> str:
    """The JSON string form of :func:`run_to_dict`."""
    return json.dumps(run_to_dict(run, include_instances), indent=indent, sort_keys=True)


def run_from_json(program: WorkflowProgram, text: str) -> Run:
    """Parse and replay a :func:`run_to_json` string."""
    return run_from_dict(program, json.loads(text))
