"""Boundedness by acyclicity (Theorem 6.3).

For linear-head programs satisfying (C1), the *p-graph* has the
relations as nodes and an edge ``R → Q`` whenever ``Q`` is invisible at
``p`` and some rule updates ``R`` while reading ``Q``.  If the subgraph
reachable from every p-visible relation is acyclic, the program is
h-bounded for ``h = (ab + 1)^d`` where ``b`` bounds rule bodies, ``a``
is the maximum arity plus one, and ``d = |D|`` (the path-length
refinement ``(ab + 1)^g`` with ``g`` the longest reachable path is also
provided).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

import networkx as nx

from ..workflow.program import WorkflowProgram
from ..workflow.queries import KeyLiteral, RelLiteral


def p_graph(program: WorkflowProgram, peer: str) -> "nx.DiGraph":
    """The dependency graph of Theorem 6.3.

    Edge ``R → Q`` ("R depends on Q"): some rule's head updates ``R``
    and its body reads ``Q`` positively or via ``¬Key_Q``, with ``Q``
    invisible at *peer*.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(program.schema.schema.relation_names)
    for rule in program:
        body_relations: Set[str] = set()
        for literal in rule.body.literals:
            if isinstance(literal, (RelLiteral, KeyLiteral)):
                body_relations.add(literal.view.relation.name)
        for atom in rule.head:
            head_relation = atom.view.relation.name
            for body_relation in body_relations:
                if not program.schema.peer_sees(body_relation, peer):
                    graph.add_edge(head_relation, body_relation)
    return graph


@dataclass(frozen=True)
class AcyclicityReport:
    """Result of the p-acyclicity analysis."""

    acyclic: bool
    cycle: Optional[PyTuple[str, ...]]
    longest_path: int  # g: longest path from a p-visible relation
    bound: Optional[int]  # (ab+1)^g, None when cyclic
    coarse_bound: Optional[int]  # (ab+1)^d

    def __bool__(self) -> bool:
        return self.acyclic


def analyze_acyclicity(program: WorkflowProgram, peer: str) -> AcyclicityReport:
    """Check p-acyclicity and compute the Theorem 6.3 bound.

    Only meaningful for linear-head programs satisfying (C1); the caller
    can verify those with
    :func:`repro.design.guidelines.check_linear_head_c1`.

    >>> # report = analyze_acyclicity(program, "sue")
    >>> # report.acyclic, report.bound
    """
    graph = p_graph(program, peer)
    visible = [
        relation
        for relation in program.schema.schema.relation_names
        if program.schema.peer_sees(relation, peer)
    ]
    reachable: Set[str] = set()
    for relation in visible:
        reachable.add(relation)
        reachable.update(nx.descendants(graph, relation))
    subgraph = graph.subgraph(reachable)
    try:
        cycle_edges = nx.find_cycle(subgraph)
        cycle = tuple(edge[0] for edge in cycle_edges)
    except nx.NetworkXNoCycle:
        cycle = None
    b = max(1, program.max_body_size())
    a = program.schema.schema.max_arity() + 1
    d = len(program.schema.schema)
    if cycle is not None:
        return AcyclicityReport(False, cycle, -1, None, None)
    longest = 0
    if reachable:
        lengths = nx.dag_longest_path_length(subgraph) if subgraph.number_of_nodes() else 0
        longest = int(lengths)
    bound = (a * b + 1) ** max(longest, 0)
    coarse = (a * b + 1) ** d
    return AcyclicityReport(True, None, longest, bound, coarse)


def is_p_acyclic(program: WorkflowProgram, peer: str) -> bool:
    """True iff the program is p-acyclic (Theorem 6.3 premise)."""
    return analyze_acyclicity(program, peer).acyclic
