"""Transparent program design (Section 6).

Design guidelines (C1)-(C4) guaranteeing transparency and boundedness
(Theorem 6.2), boundedness via acyclicity (Theorem 6.3), run-level
properties (Definition 6.4), transparency-form programs (Definition
6.5), and the enforcement of Theorem 6.7 — both as a runtime monitor
and as an explicit ``P → P^t`` program rewriting with projection Π.
"""

from .acyclic import AcyclicityReport, analyze_acyclicity, is_p_acyclic, p_graph
from .enforce import (
    EnforcementDecision,
    EnforcementTrace,
    TransparencyEnforcer,
    enforce_run,
)
from .guidelines import (
    STAGE_ID_ATTRIBUTE,
    GuidelineReport,
    check_c1,
    check_c2,
    check_c3,
    check_c4,
    check_design_guidelines,
    check_linear_head_c1,
)
from .projection import (
    is_liftable,
    lift_events,
    project_instance,
    project_run,
    projection_is_identity_for,
    source_rule_name,
)
from .rewrite import (
    DELETED_OPAQUELY,
    DELETED_TRANSPARENTLY,
    LIVE,
    RewriteResult,
    UnsupportedRewrite,
    is_companion,
    rewrite_transparent,
)
from .run_properties import (
    RunTransparencyReport,
    StageAnalysis,
    analyze_stages,
    is_run_h_bounded,
    is_run_transparent,
    run_stage_bound,
)
from .stage import (
    STAGE_KEY,
    STAGE_RELATION,
    RunStage,
    add_stage_infrastructure,
    has_stage_relation,
    rules_visible_at,
    stages_of_run,
)
from .tf import (
    check_c3_prime,
    check_c4_prime,
    check_transparency_form,
    is_transparency_form,
)

__all__ = [
    "AcyclicityReport",
    "DELETED_OPAQUELY",
    "DELETED_TRANSPARENTLY",
    "EnforcementDecision",
    "EnforcementTrace",
    "GuidelineReport",
    "LIVE",
    "RewriteResult",
    "RunStage",
    "RunTransparencyReport",
    "STAGE_ID_ATTRIBUTE",
    "STAGE_KEY",
    "STAGE_RELATION",
    "StageAnalysis",
    "TransparencyEnforcer",
    "UnsupportedRewrite",
    "add_stage_infrastructure",
    "analyze_acyclicity",
    "analyze_stages",
    "check_c1",
    "check_c2",
    "check_c3",
    "check_c3_prime",
    "check_c4",
    "check_c4_prime",
    "check_design_guidelines",
    "check_linear_head_c1",
    "check_transparency_form",
    "enforce_run",
    "has_stage_relation",
    "is_companion",
    "is_liftable",
    "is_p_acyclic",
    "is_run_h_bounded",
    "is_run_transparent",
    "is_transparency_form",
    "lift_events",
    "p_graph",
    "project_instance",
    "project_run",
    "projection_is_identity_for",
    "rewrite_transparent",
    "rules_visible_at",
    "run_stage_bound",
    "source_rule_name",
    "stages_of_run",
]
