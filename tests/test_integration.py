"""End-to-end integration: the full pipeline on a fresh domain.

A procurement workflow is defined from scratch and pushed through every
layer of the library in one flow: parse → audit → simulate → explain →
narrate → serialize/replay → synthesize the view program → check it on
the simulated runs → enforce transparency at runtime.  The assertions
check *cross-module consistency*, not individual features.
"""

import pytest

from repro import (
    SearchBudget,
    audit_program,
    enforce_run,
    explain_run,
    minimal_faithful_scenario,
    parse_program,
    program_to_text,
    run_from_json,
    run_to_json,
    synthesize_view_program,
)
from repro.core import is_scenario, narrate_run
from repro.transparency import check_view_program, observations_of_run
from repro.workloads import PeerPolicy, Simulator, fact_goal

PROCUREMENT = """
peers requester, buyer, finance, supplier
relation Request(K)
relation Quote(K, req, price)
relation PO(K, req)
relation Shipped(K)

view Request@requester(K)
view Request@buyer(K)
view Request@supplier(K)
view Quote@buyer(K, req, price)
view Quote@finance(K, req, price)
view Quote@supplier(K, req, price)
view PO@buyer(K, req)
view PO@finance(K, req)
view PO@supplier(K, req)
view Shipped@supplier(K)
view Shipped@buyer(K)
view Shipped@requester(K)

[request] +Request@requester(r) :-
[quote]   +Quote@supplier(q, r, 'fair') :- Request@supplier(r)
[order]   +PO@finance(o, r) :- Quote@finance(q, r, 'fair')
[ship]    +Shipped@supplier(o) :- PO@supplier(o, r)
"""


@pytest.fixture(scope="module")
def program():
    return parse_program(PROCUREMENT)


@pytest.fixture(scope="module")
def simulated(program):
    simulator = Simulator(
        program,
        {"supplier": PeerPolicy({"quote": 2.0, "ship": 3.0})},
        seed=13,
    )
    return simulator.run(max_events=24, stop=fact_goal("Shipped"))


class TestPipeline:
    def test_audit_is_clean(self, program):
        report = audit_program(program, "requester")
        assert report.lossless
        assert report.normal_form
        assert report.acyclicity.acyclic

    def test_simulation_reaches_the_goal(self, simulated):
        assert simulated.stopped_by_goal
        assert simulated.run.final_instance.keys("Shipped")

    def test_explanation_consistency(self, simulated):
        run = simulated.run
        explanation = explain_run(run, "requester")
        scenario = minimal_faithful_scenario(run, "requester")
        # The explanation embeds exactly the minimal faithful scenario.
        assert explanation.scenario.indices == scenario.indices
        assert is_scenario(run, "requester", scenario.indices)
        # Narration mentions every observed transition.
        text = narrate_run(run, "requester")
        for observation in explanation.observations:
            assert f"step {observation.position}" in text

    def test_requester_explanation_includes_supply_chain(self, simulated):
        """The shipment observation is explained through the invisible
        quote and purchase order."""
        run = simulated.run
        explanation = explain_run(run, "requester")
        shipped = [
            o
            for o in explanation.observations
            if run.events[o.position].rule.name == "ship"
        ]
        assert shipped
        cause_rules = {
            run.events[i].rule.name for i in shipped[0].cause_positions
        }
        assert {"quote", "order", "ship"} <= cause_rules

    def test_serialization_roundtrip_preserves_explanations(self, program, simulated):
        run = simulated.run
        replayed = run_from_json(program, run_to_json(run))
        assert (
            minimal_faithful_scenario(replayed, "requester").indices
            == minimal_faithful_scenario(run, "requester").indices
        )

    def test_program_text_roundtrip_preserves_observations(self, program, simulated):
        reparsed = parse_program(program_to_text(program))
        from repro.workflow import execute

        replayed = execute(reparsed, simulated.run.events)
        assert observations_of_run(replayed, "requester") == observations_of_run(
            simulated.run, "requester"
        )

    def test_view_program_covers_simulated_runs(self, program, simulated):
        synthesis = synthesize_view_program(
            program,
            "requester",
            h=3,
            budget=SearchBudget(pool_extra=1, max_tuples_per_relation=1),
        )
        report = check_view_program(synthesis, [simulated.run], [])
        assert not report.completeness_failures

    def test_enforcement_accepts_single_stage_chains(self, program):
        """A fresh request fulfilled within one requester-stage is
        transparent; the enforcer agrees."""
        from repro.workflow import Event
        from repro.workflow.domain import FreshValue
        from repro.workflow.queries import Var

        r, q, o = FreshValue(100), FreshValue(101), FreshValue(102)
        events = [
            Event(program.rule("request"), {Var("r"): r}),
            Event(program.rule("quote"), {Var("r"): r, Var("q"): q}),
            Event(program.rule("order"), {Var("r"): r, Var("q"): q, Var("o"): o}),
            Event(program.rule("ship"), {Var("r"): r, Var("o"): o}),
        ]
        trace = enforce_run(program, "requester", 3, events)
        assert trace.accepted
