"""Observability: structured tracing, a metrics registry, and provenance.

Three zero-dependency modules (they import nothing from the rest of the
package, so every layer can report into them without cycles):

* :mod:`repro.obs.trace` — nestable spans with monotonic timings and
  pluggable sinks (no-op default, ring buffer, JSON lines), wired
  through the engine, the scenario and state-space searches, view
  synthesis, the supervisor, and the service;
* :mod:`repro.obs.metrics` — process-wide counters / gauges / fixed
  bucket histograms with Prometheus text rendering, exposed by the
  service's ``metrics`` protocol op and the CLI ``--metrics`` dump;
* :mod:`repro.obs.provenance` — per-run records of which events touched
  which tuples and peer views, cited by the ``explain`` paths.

A fourth module, :mod:`repro.obs.shapley`, ranks provenance events by
Shapley-value importance toward a visible fact.  Unlike the three above
it *does* sit atop the engine (it replays event coalitions), so this
package re-exports it lazily (PEP 562) — engine modules can keep
importing ``repro.obs.metrics``/``trace`` without pulling the engine
back in through a cycle, and ``repro.workflow`` must never import it.

See ``docs/OBSERVABILITY.md`` for the operator's guide and benchmark
E16 for the overhead budget (<5% with tracing disabled).
"""

from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .provenance import ProvenanceLog, ProvenanceRecord
from .trace import (
    JsonLinesSink,
    NullSink,
    RingBufferSink,
    SpanRecord,
    TraceSink,
    capture_spans,
    configure_tracing,
    current_span_id,
    span,
    tracing_enabled,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricFamily",
    "MetricsRegistry",
    "NullSink",
    "ProvenanceLog",
    "ProvenanceRecord",
    "RankedEvent",
    "RingBufferSink",
    "ShapleyReport",
    "SpanRecord",
    "TraceSink",
    "capture_spans",
    "configure_tracing",
    "current_span_id",
    "fact_game",
    "shapley_rank",
    "shapley_values",
    "span",
    "tracing_enabled",
    "view_game",
]

#: Names served lazily from :mod:`repro.obs.shapley` (see the module
#: docstring: the Shapley ranker sits atop the engine, so importing it
#: eagerly here would cycle engine -> obs -> engine).
_SHAPLEY_NAMES = frozenset(
    {
        "RankedEvent",
        "ShapleyReport",
        "fact_game",
        "shapley_rank",
        "shapley_values",
        "view_game",
    }
)


def __getattr__(name: str):
    if name in _SHAPLEY_NAMES:
        from . import shapley

        return getattr(shapley, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
