"""Append-only run journals: durable, replayable execution records.

A journal is a sequence of JSON-lines records describing one execution
of a workflow program, in the spirit of ProvDB's versioned lifecycle
store: a ``begin`` record with the initial instance, one ``event``
record per applied event (the event encoding of
:mod:`repro.workflow.serialization`), periodic ``snapshot`` records
with the full instance, optional ``quarantine`` records for events the
supervisor set aside, and an ``end`` record with the final status.

Each record is flushed as soon as it is written, so a crashed process
leaves a journal describing exactly the prefix it completed; a torn
final line (the crash interrupted a write) is detected and dropped on
read.  :func:`recover_run` replays the journaled events through the
engine — validity is re-checked at every step — and verifies every
snapshot against the replayed instance, turning the journal into a
recovery mechanism and not merely a log.

Crash-consistency contract.  ``flush`` (the default) pushes each record
into the OS page cache before the event is acknowledged: a *process*
crash never loses an acknowledged event, but an OS/power crash may lose
the unsynced tail.  ``fsync=True`` additionally calls ``os.fsync`` per
record, extending the guarantee to power loss at the cost of one disk
round-trip per event.  The storage backends of :mod:`repro.storage`
generalize this into a per-backend
:class:`~repro.storage.DurabilityPolicy`; see ``docs/STORAGE.md`` for
the full durability matrix.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple as PyTuple, Union

from ..workflow.errors import JournalError, RecoveryError, RunError
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.runs import Run, execute
from ..workflow.serialization import (
    event_from_dict,
    event_to_dict,
    instance_from_dict,
    instance_to_dict,
)

__all__ = [
    "JOURNAL_SUFFIX",
    "JOURNAL_VERSION",
    "JournalWriter",
    "MemorySink",
    "RecoveredRun",
    "begin_record",
    "end_record",
    "event_record",
    "journal_path",
    "journal_run",
    "list_journals",
    "quarantine_record",
    "read_journal",
    "read_journal_ex",
    "recover_run",
    "run_id_from_path",
    "snapshot_record",
]

#: Bumped when the record format changes incompatibly.
JOURNAL_VERSION = 1

#: File suffix of on-disk run journals in a journal directory.
JOURNAL_SUFFIX = ".journal"


# ----------------------------------------------------------------------
# Journal directory layout
# ----------------------------------------------------------------------
#
# Every component that maps run ids to journal files — ``repro serve
# --journal-dir``, ``repro recover --journal-dir``, the service registry
# — goes through these three functions, so the layout is defined in
# exactly one place: ``<dir>/<quoted run id>.journal``, with the run id
# percent-encoded so arbitrary ids stay one flat file per run.


def _quote_run_id(run_id: str) -> str:
    from urllib.parse import quote

    if not run_id:
        raise JournalError("run id must be non-empty")
    return quote(run_id, safe="")


def journal_path(journal_dir: Union[str, Path], run_id: str) -> Path:
    """The canonical journal file for *run_id* under *journal_dir*."""
    return Path(journal_dir) / (_quote_run_id(run_id) + JOURNAL_SUFFIX)


def run_id_from_path(path: Union[str, Path]) -> str:
    """Invert :func:`journal_path` on a journal file name."""
    from urllib.parse import unquote

    name = Path(path).name
    if not name.endswith(JOURNAL_SUFFIX):
        raise JournalError(f"{name!r} is not a journal file (missing {JOURNAL_SUFFIX})")
    return unquote(name[: -len(JOURNAL_SUFFIX)])


def list_journals(journal_dir: Union[str, Path]) -> Dict[str, Path]:
    """All run journals under *journal_dir*, as ``run_id -> path``."""
    directory = Path(journal_dir)
    if not directory.is_dir():
        return {}
    return {
        run_id_from_path(path): path
        for path in sorted(directory.glob("*" + JOURNAL_SUFFIX))
    }


# ----------------------------------------------------------------------
# Record constructors
# ----------------------------------------------------------------------
#
# The journal format is defined by these five builders; every producer
# (the text-level JournalWriter below, the record-level stores of
# :mod:`repro.storage`) goes through them, so the format has exactly one
# authority.


def begin_record(initial: Instance, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "type": "begin",
        "version": JOURNAL_VERSION,
        "initial": instance_to_dict(initial),
    }
    if meta:
        record["meta"] = meta
    return record


def event_record(index: int, event: Event) -> Dict[str, Any]:
    return {"type": "event", "index": index, "event": event_to_dict(event)}


def snapshot_record(index: int, events: int, instance: Instance) -> Dict[str, Any]:
    return {
        "type": "snapshot",
        "index": index,
        "events": events,
        "instance": instance_to_dict(instance),
    }


def quarantine_record(index: int, event: Event, error: str, attempts: int) -> Dict[str, Any]:
    return {
        "type": "quarantine",
        "index": index,
        "event": event_to_dict(event),
        "error": error,
        "attempts": attempts,
    }


def end_record(status: str = "completed", reason: Optional[str] = None) -> Dict[str, Any]:
    record: Dict[str, Any] = {"type": "end", "status": status}
    if reason:
        record["reason"] = reason
    return record


class MemorySink:
    """An in-memory journal sink that survives a simulated process crash.

    The fault-injection tests model a crash by abandoning the writer and
    every other in-memory structure while keeping the sink's lines — the
    analogue of the OS page cache surviving a process death.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []

    def write(self, text: str) -> None:
        self.lines.append(text)

    def flush(self) -> None:  # file-object protocol
        pass

    def read_lines(self) -> List[str]:
        return list(self.lines)


class JournalWriter:
    """Append-only writer of journal records.

    *sink* is a path (opened for appending) or any object with ``write``
    and ``flush``; every record is one JSON line, flushed immediately.
    ``snapshot_every`` controls periodic instance snapshots taken by
    :meth:`record_event` (None or 0 disables them; recovery then replays
    from the initial instance).

    ``fsync=True`` upgrades the per-record guarantee from
    "flushed to the OS" (survives a process crash) to "fsynced to disk"
    (survives an OS/power crash) — see the module docstring for the
    crash-consistency contract.  It is ignored for sinks without a file
    descriptor (e.g. :class:`MemorySink`).
    """

    def __init__(
        self,
        sink: Union[str, Path, Any],
        snapshot_every: Optional[int] = 10,
        fsync: bool = False,
    ) -> None:
        self._owns_sink = isinstance(sink, (str, Path))
        self._sink = open(sink, "a", encoding="utf-8") if self._owns_sink else sink
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.events_recorded = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise JournalError("journal writer is closed")
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        self._sink.flush()
        if self.fsync:
            try:
                fileno = self._sink.fileno()
            except (AttributeError, OSError, io.UnsupportedOperation):
                return  # memory sinks have nothing to sync
            os.fsync(fileno)

    def begin(self, initial: Instance, meta: Optional[Dict[str, Any]] = None) -> None:
        """Open the journal with the run's initial instance."""
        self._emit(begin_record(initial, meta))

    def record_event(self, index: int, event: Event, instance: Optional[Instance] = None) -> None:
        """Journal one applied event; snapshot periodically when *instance* given."""
        self._emit(event_record(index, event))
        self.events_recorded += 1
        if (
            instance is not None
            and self.snapshot_every
            and self.events_recorded % self.snapshot_every == 0
        ):
            self.snapshot(index, instance)

    def snapshot(self, index: int, instance: Instance) -> None:
        """Journal a full instance snapshot after the event at *index*."""
        self._emit(snapshot_record(index, self.events_recorded, instance))

    def quarantine(self, index: int, event: Event, error: str, attempts: int) -> None:
        """Journal an event the supervisor set aside as poisoned."""
        self._emit(quarantine_record(index, event, error, attempts))

    def end(self, status: str = "completed", reason: Optional[str] = None) -> None:
        """Close the journal with a final status record."""
        self._emit(end_record(status, reason))

    def observer(self) -> Callable[[int, Event, Instance], None]:
        """An observer for :func:`repro.workflow.runs.execute`.

        Journals each event (with periodic snapshots) as the engine
        applies it, so a crash mid-execution leaves a replayable prefix.
        """

        def observe(index: int, event: Event, instance: Instance) -> None:
            self.record_event(index, event, instance)

        return observe

    def close(self) -> None:
        if not self._closed and self._owns_sink:
            self._sink.close()
        self._closed = True

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading and recovery
# ----------------------------------------------------------------------


def read_journal(source: Union[str, Path, MemorySink, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse a journal into its records.

    *source* is a path, a :class:`MemorySink`, or an iterable of lines.
    A torn final line (a crash interrupted the write — truncated JSON,
    or JSON that is not a typed record) is dropped; a malformed line
    anywhere else raises :class:`JournalError`.  Use
    :func:`read_journal_ex` to also see what was dropped.
    """
    return read_journal_ex(source)[0]


def read_journal_ex(
    source: Union[str, Path, MemorySink, Iterable[str]],
) -> PyTuple[List[Dict[str, Any]], List[str]]:
    """:func:`read_journal`, plus warnings about dropped trailing garbage.

    Returns ``(records, warnings)``: parsing stops at the last complete
    record when the final line is torn (a crash mid-write), and each
    dropped line is described by one warning string instead of raising.
    """
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    elif isinstance(source, MemorySink):
        lines = "".join(source.read_lines()).splitlines()
    else:
        lines = "".join(source).splitlines()
    records: List[Dict[str, Any]] = []
    warnings: List[str] = []
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        last = position == len(lines) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if last:  # torn tail write from a crash: recoverable
                warnings.append(
                    f"dropped torn trailing line {position} (crash mid-write?): {exc}"
                )
                break
            raise JournalError(f"malformed journal line {position}: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            if last:
                warnings.append(
                    f"dropped trailing line {position}: not a typed journal record"
                )
                break
            raise JournalError(f"journal line {position} is not a typed record")
        records.append(record)
    return records, warnings


@dataclass
class RecoveredRun:
    """The result of replaying a journal through the engine.

    ``complete`` is True when the journal carries an ``end`` record with
    status ``completed`` — otherwise the process died (or was budget-
    killed) mid-run and *run* is the validated prefix it had finished.
    """

    run: Run
    complete: bool
    status: Optional[str]
    events_replayed: int
    snapshots_verified: int
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    #: Non-fatal recovery diagnostics, e.g. a torn trailing journal line
    #: that was dropped (the crash interrupted its write).
    warnings: List[str] = field(default_factory=list)

    @property
    def final_instance(self) -> Instance:
        return self.run.final_instance


def recover_run(
    program: WorkflowProgram,
    source: Union[str, Path, MemorySink, Iterable[str], List[Dict[str, Any]]],
    verify_snapshots: bool = True,
) -> RecoveredRun:
    """Replay a journal against *program*, re-checking validity stepwise.

    The journaled events are re-executed through the engine (so every
    body/applicability/chase condition is re-checked — a corrupted
    journal cannot smuggle in an invalid state) and, when
    *verify_snapshots* is set, each snapshot record is compared against
    the replayed instance at the same point, raising
    :class:`RecoveryError` on divergence.

    >>> # recovered = recover_run(program, "run.journal")
    >>> # recovered.run.final_instance  # isomorphic to the crashed run's
    """
    warnings: List[str] = []
    if isinstance(source, list) and (not source or isinstance(source[0], dict)):
        records = source  # pre-parsed
    else:
        records, warnings = read_journal_ex(source)
    if not records or records[0].get("type") != "begin":
        raise RecoveryError("journal has no begin record")
    begin = records[0]
    if begin.get("version", JOURNAL_VERSION) != JOURNAL_VERSION:
        raise RecoveryError(f"unsupported journal version {begin.get('version')!r}")
    initial = instance_from_dict(program, begin.get("initial", {}))
    events: List[Event] = []
    # (events seen so far, snapshot record) in journal order
    snapshots: List[tuple] = []
    quarantined: List[Dict[str, Any]] = []
    status: Optional[str] = None
    for record in records[1:]:
        kind = record.get("type")
        if kind == "event":
            events.append(event_from_dict(program, record["event"]))
        elif kind == "snapshot":
            snapshots.append((len(events), record))
        elif kind == "quarantine":
            quarantined.append(record)
        elif kind == "end":
            status = record.get("status")
        elif kind == "begin":
            raise RecoveryError("journal contains a second begin record")
        else:
            raise RecoveryError(f"unknown journal record type {kind!r}")
    try:
        run = execute(program, events, initial=initial, check_freshness=False)
    except RunError as exc:
        raise RecoveryError(f"journal replay failed: {exc}") from exc
    verified = 0
    if verify_snapshots:
        for events_seen, record in snapshots:
            if events_seen == 0:
                expected = run.initial
            else:
                expected = run.instances[events_seen - 1]
            recorded = instance_from_dict(program, record.get("instance", {}))
            if recorded != expected:
                raise RecoveryError(
                    f"snapshot after {events_seen} events diverges from replay"
                )
            verified += 1
    return RecoveredRun(
        run=run,
        complete=status == "completed",
        status=status,
        events_replayed=len(events),
        snapshots_verified=verified,
        quarantined=quarantined,
        warnings=warnings,
    )


def journal_run(
    run: Run,
    sink: Union[str, Path, Any],
    snapshot_every: Optional[int] = 10,
    status: str = "completed",
) -> JournalWriter:
    """Journal an already-executed run (e.g. for archival or transport)."""
    writer = JournalWriter(sink, snapshot_every=snapshot_every)
    writer.begin(run.initial)
    for index, event in enumerate(run.events):
        writer.record_event(index, event, run.instances[index])
    writer.end(status)
    writer.close()
    return writer
