"""Tests for supervised execution: retry, quarantine, anytime search."""

from __future__ import annotations

import pytest

from repro.core import is_scenario
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.journal import JournalWriter, MemorySink, read_journal
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedRun,
    Supervisor,
    anytime_minimum_scenario,
    anytime_reachable_states,
)
from repro.workflow import Event, execute
from repro.workflow.statespace import StateSpaceExplorer


def approval_events(approval):
    return [Event(approval.rule(name), {}) for name in "efgh"]


def no_sleep_policy(**kwargs):
    return RetryPolicy(sleep=lambda _: None, **kwargs)


class TestRetry:
    def test_backoff_schedule(self):
        policy = RetryPolicy(initial_backoff=0.1, factor=2.0, max_backoff=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)

    def test_transient_faults_absorbed(self, approval):
        """A fault that clears within max_attempts costs retries, not events."""
        plan = FaultPlan(transient_rate=1.0, transient_attempts=2)
        supervisor = Supervisor(
            approval,
            retry=no_sleep_policy(max_attempts=3),
            fault_injector=FaultInjector(plan),
        )
        result = supervisor.execute(approval_events(approval))
        assert result.applied == 4
        assert not result.quarantined
        assert not result.degraded

    def test_persistent_transient_quarantines(self, approval):
        """A transient fault outlasting the retry budget is set aside."""
        plan = FaultPlan(transient_rate=1.0, transient_attempts=10)
        supervisor = Supervisor(
            approval,
            retry=no_sleep_policy(max_attempts=2),
            fault_injector=FaultInjector(plan),
        )
        result = supervisor.execute(approval_events(approval))
        assert result.applied == 0
        assert len(result.quarantined) == 4
        assert all(q.attempts == 2 for q in result.quarantined)
        assert result.degraded

    def test_sleep_called_between_attempts(self, approval):
        naps = []
        plan = FaultPlan(transient_rate=1.0, transient_attempts=1)
        supervisor = Supervisor(
            approval,
            retry=RetryPolicy(max_attempts=3, initial_backoff=0.5, sleep=naps.append),
            fault_injector=FaultInjector(plan),
        )
        supervisor.execute(approval_events(approval)[:1])
        assert naps == [0.5]


class TestQuarantine:
    def test_poisoned_events_quarantined_with_diagnostic(self, approval):
        plan = FaultPlan(poison_rate=1.0)
        supervisor = Supervisor(
            approval,
            retry=no_sleep_policy(max_attempts=2),
            fault_injector=FaultInjector(plan),
        )
        result = supervisor.execute(approval_events(approval))
        assert result.applied == 0
        assert len(result.quarantined) == 4
        for quarantined in result.quarantined:
            assert "ChaseFailure" in quarantined.error
            assert quarantined.attempts == 2

    def test_quarantine_is_journaled(self, approval):
        plan = FaultPlan(poison_rate=1.0)
        sink = MemorySink()
        supervisor = Supervisor(
            approval,
            retry=no_sleep_policy(max_attempts=2),
            journal=JournalWriter(sink),
            fault_injector=FaultInjector(plan),
        )
        supervisor.execute(approval_events(approval)[:2])
        kinds = [r["type"] for r in read_journal(sink)]
        assert kinds == ["begin", "quarantine", "quarantine", "end"]

    def test_inapplicable_event_quarantined_without_injection(self, approval):
        """A genuinely inapplicable event (no faults injected) quarantines."""
        events = approval_events(approval)
        out_of_order = [events[3], events[0], events[1], events[2], events[3]]
        supervisor = Supervisor(approval, retry=no_sleep_policy(max_attempts=2))
        result = supervisor.execute(out_of_order)
        assert result.applied == 4
        assert len(result.quarantined) == 1
        assert result.quarantined[0].index == 0


class TestBudgetedExecution:
    def test_truncated_on_step_budget(self, approval):
        supervisor = Supervisor(approval, budget=Budget(max_steps=2))
        result = supervisor.execute(approval_events(approval))
        assert result.truncated
        assert result.applied == 2
        assert "step budget" in result.reason
        assert result.degraded

    def test_truncation_is_journaled(self, approval):
        sink = MemorySink()
        supervisor = Supervisor(
            approval, budget=Budget(max_steps=2), journal=JournalWriter(sink)
        )
        supervisor.execute(approval_events(approval))
        end = read_journal(sink)[-1]
        assert end["type"] == "end"
        assert end["status"] == "truncated"
        assert "step budget" in end["reason"]

    def test_unlimited_budget_is_noop(self, approval):
        result = Supervisor(approval, budget=Budget()).execute(
            approval_events(approval)
        )
        assert isinstance(result, SupervisedRun)
        assert result.applied == 4
        assert not result.degraded


class TestAnytimeScenario:
    def test_unbudgeted_search_is_exact(self, approval_run):
        result = anytime_minimum_scenario(approval_run, "applicant", Budget())
        assert not result.truncated
        assert is_scenario(approval_run, "applicant", result.value.indices)
        assert len(result.value.indices) == 2  # the known minimum

    def test_budget_killed_search_returns_valid_scenario(self, approval_run):
        """Acceptance: truncated search still returns a real scenario."""
        result = anytime_minimum_scenario(
            approval_run, "applicant", Budget(max_steps=3)
        )
        assert result.truncated
        assert result.reason is not None
        assert is_scenario(approval_run, "applicant", result.value.indices)

    def test_full_run_fallback(self, approval_run):
        """With no time to find anything, the full run is the scenario."""
        result = anytime_minimum_scenario(
            approval_run, "cto", Budget(max_steps=1)
        )
        assert result.truncated
        assert tuple(result.value.indices) == (0, 1, 2, 3)
        assert is_scenario(approval_run, "cto", result.value.indices)


class TestAnytimeExploration:
    def test_unbudgeted_matches_plain_exploration(self, approval):
        plain = list(StateSpaceExplorer(approval).iterate(3, None))
        anytime = anytime_reachable_states(approval, 3, Budget())
        assert not anytime.truncated
        assert len(anytime.value) == len(plain)

    def test_budgeted_exploration_is_partial(self, approval):
        full = anytime_reachable_states(approval, 3, Budget())
        partial = anytime_reachable_states(approval, 3, Budget(max_steps=2))
        assert partial.truncated
        assert 0 < len(partial.value) < len(full.value)


class TestJournalIntegration:
    def test_supervised_run_replayable(self, approval):
        """The journal of a clean supervised run replays to the same state."""
        from repro.runtime.journal import recover_run

        sink = MemorySink()
        supervisor = Supervisor(approval, journal=JournalWriter(sink, snapshot_every=2))
        result = supervisor.execute(approval_events(approval))
        recovered = recover_run(approval, sink)
        assert recovered.complete
        assert recovered.final_instance == result.run.final_instance

    def test_observer_journals_engine_runs(self, approval):
        """`execute(observer=...)` journals without a supervisor."""
        from repro.runtime.journal import recover_run

        sink = MemorySink()
        events = approval_events(approval)
        with JournalWriter(sink, snapshot_every=2) as writer:
            initial = execute(approval, []).initial
            writer.begin(initial)
            run = execute(approval, events, observer=writer.observer())
            writer.end("completed")
        recovered = recover_run(approval, sink)
        assert recovered.complete
        assert recovered.events_replayed == 4
        assert recovered.final_instance == run.final_instance
