"""Normal form for workflow programs (Proposition 2.3).

A program is in *normal form* when (i) every rule whose head contains a
deletion ``−Key_R@q(x)`` also contains a body literal ``R@q(x, u)``, and
(ii) rule bodies contain no negative relational literals ``¬R@q(x, u)``
and no positive key literals ``Key_R@q(x)``.

:func:`normalize` constructs the normal-form program ``P^nf`` together
with the mapping ``θ`` from its rules back to the rules of ``P``:
``ρ`` is a run of ``P`` iff the same instance sequence is a run of
``P^nf`` under events with the same peers and θ-related rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple as PyTuple

from .errors import RuleError
from .program import WorkflowProgram
from .queries import Comparison, Const, KeyLiteral, Literal, Query, RelLiteral, Term, Var
from .rules import Deletion, Rule, UpdateAtom


@dataclass(frozen=True)
class NormalFormResult:
    """The normal-form program and the rule mapping ``θ``."""

    program: WorkflowProgram
    theta: Dict[str, str]  # rule name in P^nf -> rule name in P

    def original_rule(self, nf_rule_name: str) -> str:
        return self.theta[nf_rule_name]


class _VarFactory:
    """Mints variables that do not clash with a rule's existing ones."""

    def __init__(self, taken: Iterable[Var]) -> None:
        self._taken: Set[str] = {v.name for v in taken}
        self._counter = 0

    def fresh(self, hint: str = "z") -> Var:
        while True:
            name = f"_{hint}{self._counter}"
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return Var(name)


def _witness_deletions(rule: Rule, factory: _VarFactory) -> List[Literal]:
    """Literals to add so every head deletion has a body witness (i)."""
    extra: List[Literal] = []
    witnessed = list(rule.body.literals)
    for deletion in rule.deletions():
        if rule.deletion_has_witness(deletion):
            continue
        view = deletion.view
        terms: List[Term] = []
        for attribute in view.attributes:
            if attribute == view.relation.key_attribute:
                terms.append(deletion.term)
            else:
                terms.append(factory.fresh("w"))
        extra.append(RelLiteral(view, tuple(terms), positive=True))
    return extra


def _expand_literal(literal: Literal, factory: _VarFactory) -> List[List[Literal]]:
    """The case split replacing one literal, as alternative literal lists.

    * positive ``Key_R@q(x)`` becomes ``R@q(x, z̄)`` (one case);
    * negative ``¬R@q(x, u)`` becomes either ``¬Key_R@q(x)`` or, for each
      non-key attribute ``A``, ``R@q(x, z̄) ∧ u(A) ≠ z(A)``;
    * every other literal is kept unchanged.
    """
    if isinstance(literal, KeyLiteral) and literal.positive:
        view = literal.view
        terms: List[Term] = []
        for attribute in view.attributes:
            if attribute == view.relation.key_attribute:
                terms.append(literal.term)
            else:
                terms.append(factory.fresh("k"))
        return [[RelLiteral(view, tuple(terms), positive=True)]]
    if isinstance(literal, RelLiteral) and not literal.positive:
        view = literal.view
        key_term = literal.key_term
        cases: List[List[Literal]] = [[KeyLiteral(view, key_term, positive=False)]]
        for position, attribute in enumerate(view.attributes):
            if attribute == view.relation.key_attribute:
                continue
            fresh_terms: List[Term] = []
            mismatch: Term = literal.terms[position]
            mismatch_var = factory.fresh("m")
            for inner_position, inner_attribute in enumerate(view.attributes):
                if inner_attribute == view.relation.key_attribute:
                    fresh_terms.append(key_term)
                elif inner_position == position:
                    fresh_terms.append(mismatch_var)
                else:
                    fresh_terms.append(factory.fresh("n"))
            cases.append(
                [
                    RelLiteral(view, tuple(fresh_terms), positive=True),
                    Comparison(mismatch, mismatch_var, positive=False),
                ]
            )
        return cases
    return [[literal]]


def normalize_rule(rule: Rule, name_prefix: str = "") -> List[Rule]:
    """The set ``Rules(r)`` of normal-form rules replacing *rule*."""
    factory = _VarFactory(rule.variables())
    base_literals = list(rule.body.literals) + _witness_deletions(rule, factory)
    alternatives = [_expand_literal(lit, factory) for lit in base_literals]
    choices = list(itertools.product(*alternatives))
    rules: List[Rule] = []
    for index, choice in enumerate(choices):
        literals: List[Literal] = []
        for parts in choice:
            literals.extend(parts)
        if len(choices) == 1 and literals == list(rule.body.literals):
            name = rule.name
        else:
            name = f"{rule.name}{name_prefix}#nf{index}"
        rules.append(Rule(name, rule.head, Query(literals)))
    return rules


def normalize(program: WorkflowProgram) -> NormalFormResult:
    """Construct the normal-form program ``P^nf`` and the mapping ``θ``.

    Rules already in normal form are kept as-is (with ``θ`` the
    identity); other rules are replaced by their case split.
    """
    new_rules: List[Rule] = []
    theta: Dict[str, str] = {}
    for rule in program:
        variants = normalize_rule(rule)
        for variant in variants:
            new_rules.append(variant)
            theta[variant.name] = rule.name
    return NormalFormResult(WorkflowProgram(program.schema, new_rules), theta)
