"""Scenarios: observationally equivalent subruns (Section 3).

A *scenario* of a run ``ρ`` at peer ``p`` is a subrun ``ρ̂`` with
``ρ̂@p = ρ@p``.  Finding a minimum-length scenario is NP-complete and
even testing minimality is coNP-complete (Theorems 3.3/3.4), so this
module provides:

* :func:`is_scenario` — the polynomial scenario check (replay and
  compare views);
* :func:`minimum_scenario` — an exact branch-and-bound search (worst
  case exponential, as the hardness results dictate);
* :func:`is_minimal_scenario` — exact minimality test via search for a
  strictly smaller scenario inside the candidate;
* :func:`greedy_scenario` — the polynomial greedy heuristic discussed
  after Theorem 3.3: repeatedly drop single events while the result
  remains a scenario.  The result is *1-minimal* (no single event can be
  removed) but not necessarily minimal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from ..obs.metrics import METRICS
from ..obs.trace import span
from ..runtime.budget import Budget, checkpoint
from ..dataflow.delta import refresh_view_instance
from ..workflow.engine import apply_event_with_delta
from ..workflow.errors import BudgetExceeded, EventError
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.runs import OMEGA, Run
from .subruns import EventSubsequence

_SEARCH_NODES = METRICS.counter(
    "repro_search_nodes_total",
    "Search nodes expanded, by search kind",
    labelnames=("search",),
).labels(search="scenario")
_SEARCHES = METRICS.counter(
    "repro_scenario_searches_total",
    "Branch-and-bound scenario searches run",
    labelnames=("outcome",),
)


def is_scenario(run: Run, peer: str, indices: Iterable[int]) -> bool:
    """True iff the subsequence at *indices* is a scenario of *run* at *peer*.

    Checks that the subsequence yields a subrun and that the subrun is
    observationally equivalent to the run for the peer.
    """
    subrun = EventSubsequence(run, indices).to_subrun()
    if subrun is None:
        return False
    return subrun.view(peer) == run.view(peer)


class _ScenarioSearch:
    """Branch-and-bound search for small scenarios.

    The search walks the run's events in order, deciding for each
    whether to include it in the candidate subrun.  It maintains the
    replayed instance and the position reached in the target observation
    sequence, pruning branches whose observations diverge from the
    target.  Events of the observing peer are forced to be included
    (their labels appear verbatim in the view).
    """

    def __init__(
        self,
        run: Run,
        peer: str,
        allowed: Optional[FrozenSet[int]] = None,
        max_depth: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.run = run
        self.peer = peer
        self.schema = run.program.schema
        self.allowed = allowed if allowed is not None else frozenset(range(len(run)))
        self.max_depth = max_depth if max_depth is not None else len(run)
        self.target = run.view(peer).observations()
        self.best: Optional[PyTuple[int, ...]] = None
        self.budget = budget
        self.truncated = False
        self.reason: Optional[str] = None
        self._seen: Dict[PyTuple[int, Instance, int], int] = {}

    def search(self, anytime: bool = False) -> Optional[PyTuple[int, ...]]:
        """Run the search; with *anytime* a tripped budget is absorbed.

        In anytime mode :class:`BudgetExceeded` marks the search
        ``truncated`` and the best candidate found so far is returned
        (None when none was reached yet) instead of propagating.
        """
        initial_view = self.schema.view_instance(self.run.initial, self.peer)
        with span(
            "scenario_search",
            peer=self.peer,
            run_events=len(self.run),
            max_depth=self.max_depth,
        ) as trace:
            try:
                self._explore(0, self.run.initial, initial_view, 0, [])
            except BudgetExceeded as exc:
                if not anytime:
                    _SEARCHES.labels(outcome="budget").inc()
                    raise
                self.truncated = True
                self.reason = str(exc)
            _SEARCHES.labels(
                outcome="truncated" if self.truncated else "completed"
            ).inc()
            trace.set("best", len(self.best) if self.best is not None else None)
            trace.set("truncated", self.truncated)
        return self.best

    def _bound(self) -> int:
        if self.best is not None:
            return min(self.max_depth, len(self.best) - 1)
        return self.max_depth

    def _explore(
        self,
        position: int,
        instance: Instance,
        view: Instance,
        matched: int,
        chosen: List[int],
    ) -> None:
        checkpoint(self.budget, depth=len(chosen))
        _SEARCH_NODES.inc()
        if len(chosen) > self._bound():
            return
        remaining_targets = len(self.target) - matched
        remaining_events = len(self.run) - position
        if remaining_targets > remaining_events:
            return  # not enough events left to produce the missing observations
        state = (position, instance, matched)
        prior = self._seen.get(state)
        if prior is not None and prior <= len(chosen):
            return
        self._seen[state] = len(chosen)
        if position == len(self.run):
            if matched == len(self.target):
                if self.best is None or len(chosen) < len(self.best):
                    self.best = tuple(chosen)
            return
        event = self.run.events[position]
        include_allowed = position in self.allowed
        must_include = include_allowed and event.peer == self.peer
        # Branch 1: include the event (if allowed).
        if include_allowed:
            self._try_include(position, instance, view, matched, chosen, event)
        # Branch 2: skip the event (not possible for the peer's own
        # events, whose labels must appear verbatim in the view).
        if not must_include:
            self._explore(position + 1, instance, view, matched, chosen)

    def _try_include(
        self,
        position: int,
        instance: Instance,
        view: Instance,
        matched: int,
        chosen: List[int],
        event: Event,
    ) -> None:
        try:
            successor, delta = apply_event_with_delta(self.schema, instance, event, None)
        except EventError:
            return
        # The observing peer's view is maintained incrementally: one
        # O(|delta|) patch per replayed event instead of recomputing
        # I@p from the whole instance (refresh returns the same object
        # when the transition is invisible to the peer).
        successor_view = refresh_view_instance(self.schema, self.peer, view, delta)
        visible = event.peer == self.peer or successor_view is not view
        new_matched = matched
        if visible:
            if matched >= len(self.target):
                return  # extra visible transition: diverges from target
            label, view_instance = self.target[matched]
            expected_label = event if event.peer == self.peer else OMEGA
            if label != expected_label:
                return
            if successor_view != view_instance:
                return
            new_matched = matched + 1
        chosen.append(position)
        self._explore(position + 1, successor, successor_view, new_matched, chosen)
        chosen.pop()


def minimum_scenario(
    run: Run,
    peer: str,
    max_depth: Optional[int] = None,
    budget: Optional[Budget] = None,
    *,
    workers: Optional[int] = None,
) -> Optional[EventSubsequence]:
    """A minimum-length scenario of *run* at *peer* (exact, exponential).

    Returns None when *max_depth* is given and no scenario of at most
    that many events exists.  Without *max_depth* the full run is itself
    a scenario, so the result is never None.  A *budget* bounds the
    exponential search and raises
    :class:`~repro.workflow.errors.BudgetExceeded` when it trips; for a
    graceful best-so-far answer use
    :func:`repro.runtime.supervisor.anytime_minimum_scenario`.

    *workers* (or the process default from
    :func:`repro.parallel.set_default_workers`) runs the search as a
    parallel cap portfolio: the returned scenario has the identical
    (optimal) size, though among equal-size optima the chosen index set
    may differ from the sequential search's.
    """
    from ..parallel.config import resolve_workers

    if resolve_workers(workers) > 1:
        from ..parallel.scenarios import parallel_minimum_scenario

        return parallel_minimum_scenario(
            run, peer, max_depth=max_depth, budget=budget, workers=workers
        )
    best = _ScenarioSearch(run, peer, max_depth=max_depth, budget=budget).search()
    if best is None:
        return None
    return EventSubsequence(run, best)


def has_scenario_of_size(
    run: Run, peer: str, size: int, budget: Optional[Budget] = None
) -> bool:
    """Decide the NP-complete bounded-scenario problem of Theorem 3.3."""
    return minimum_scenario(run, peer, max_depth=size, budget=budget) is not None


def scenario_within(
    run: Run,
    peer: str,
    allowed: Iterable[int],
    max_depth: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[EventSubsequence]:
    """A scenario using only events at *allowed* positions, if one exists."""
    best = _ScenarioSearch(
        run, peer, allowed=frozenset(allowed), max_depth=max_depth, budget=budget
    ).search()
    if best is None:
        return None
    return EventSubsequence(run, best)


def is_minimal_scenario(run: Run, peer: str, indices: Iterable[int]) -> bool:
    """Exact minimality test (the coNP-complete problem of Theorem 3.4).

    *indices* is minimal iff it is a scenario and no strict subsequence
    of it is one.
    """
    index_set = frozenset(indices)
    if not is_scenario(run, peer, index_set):
        return False
    smaller = scenario_within(run, peer, index_set, max_depth=len(index_set) - 1)
    return smaller is None


def greedy_scenario(run: Run, peer: str) -> EventSubsequence:
    """The polynomial greedy heuristic: drop events while still a scenario.

    Events are tried for removal from the latest to the earliest.  The
    result is a scenario from which no *single* event can be removed; by
    Theorem 3.4 certifying full minimality is coNP-hard, so the greedy
    result may still contain a strictly smaller scenario.
    """
    current: Set[int] = set(range(len(run)))
    forced = {i for i in current if run.events[i].peer == peer}
    for candidate in sorted(current - forced, reverse=True):
        attempt = current - {candidate}
        if is_scenario(run, peer, attempt):
            current = attempt
    return EventSubsequence(run, current)
