"""Tests for the one-call program audit."""

import pytest

from repro.analysis.audit import audit_program
from repro.transparency.bounded import SearchBudget
from repro.workloads import (
    hiring_no_cfo_program,
    hiring_program,
    hiring_transparent_program,
)

BUDGET = SearchBudget(pool_extra=2, max_tuples_per_relation=1)


class TestStaticOnly:
    def test_hiring_audit(self, hiring):
        report = audit_program(hiring, "sue")
        assert report.lossless
        assert report.normal_form
        assert report.linear_head
        assert not report.c1_violations
        assert report.acyclicity.acyclic
        assert report.boundedness is None and report.transparency is None

    def test_guidelines_opt_in(self, hiring_transparent):
        report = audit_program(
            hiring_transparent, "sue", transparent_relations=["Cleared", "Approved", "Hire"]
        )
        assert report.follows_guidelines is True

    def test_guidelines_absent_by_default(self, hiring):
        assert audit_program(hiring, "sue").follows_guidelines is None

    def test_tf_flag(self, hiring_no_cfo):
        report = audit_program(hiring_no_cfo, "sue")
        assert report.transparency_form  # no deletions => C3' vacuous


class TestWithDecisions:
    def test_non_transparent_detected(self, hiring_no_cfo):
        report = audit_program(hiring_no_cfo, "sue", decide_h=2, budget=BUDGET)
        assert report.boundedness is not None and report.boundedness.bounded
        assert report.transparency is not None
        assert not report.transparency.transparent

    def test_transparency_skipped_when_unbounded(self):
        from repro.workloads import chain_program

        report = audit_program(
            chain_program(3), "observer", decide_h=2,
            budget=SearchBudget(pool_extra=0),
        )
        assert not report.boundedness.bounded
        assert report.transparency is None


class TestRendering:
    def test_to_text_mentions_everything(self, hiring_no_cfo):
        report = audit_program(
            hiring_no_cfo,
            "sue",
            transparent_relations=["Cleared", "Approved", "Hire"],
            decide_h=2,
            budget=BUDGET,
        )
        text = report.to_text()
        assert "lossless schema:        True" in text
        assert "p-acyclic" in text
        assert "2-bounded (decided):   True" in text
        assert "transparent (decided):  False" in text
        assert "findings:" in text  # guideline violations reported
