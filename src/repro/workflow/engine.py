"""Transition semantics: applying events to global instances.

The semantics of an update requested by a peer is specified directly on
the global instance (Section 2), which circumvents the view update
problem:

* a deletion ``−Key_R@p(k)`` is applicable when ``k`` is a key value in
  ``I@p(R@p)`` (the peer sees the tuple); it removes the tuple with key
  ``k`` from ``I(R)``;
* an insertion ``+R@p(u)`` is applicable when
  ``J = chase_K(I ∪ {R(u^⊥)})`` is valid and ``u`` is subsumed by some
  tuple of ``J@p(R@p)`` (the peer sees its insertion afterwards); the
  result is ``J``.

An event fires when its body holds on the peer's view, its head-only
variables are globally fresh, and *all* of its updates are applicable;
the updates (which touch pairwise distinct tuples) are then applied in
any order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple as PyTuple

from ..dataflow.delta import Delta
from ..deprecation import deprecated_module_attrs
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..runtime.budget import ambient_checkpoint
from .domain import NULL, is_null
from .errors import ChaseFailure, EventError, FreshnessViolation, UpdateNotApplicable
from .events import Event
from .instance import Instance
from .queries import Const
from .rules import Deletion, Insertion
from .tuples import Tuple
from .views import CollaborativeSchema

#: Engine metrics, bound once at import so the hot path pays one method
#: call per tick (see docs/OBSERVABILITY.md for the full catalogue).
_EVENTS_APPLIED = METRICS.counter(
    "repro_engine_events_applied_total", "Events successfully applied"
)
_EVENT_REJECTIONS = METRICS.counter(
    "repro_engine_event_rejections_total",
    "Event applications rejected (body/freshness/update violations)",
    labelnames=("error",),
)
_DELTA_KEYS = METRICS.histogram(
    "repro_engine_delta_keys",
    "Keys touched per transition delta",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)


def insertion_result(
    schema: CollaborativeSchema, instance: Instance, insertion: Insertion
) -> Instance:
    """The result of a ground insertion, or raise :class:`UpdateNotApplicable`."""
    view = insertion.view
    values = tuple(term.value for term in insertion.terms)  # ground: Const terms
    u = Tuple(view.attributes, values)
    if is_null(u.key):
        raise UpdateNotApplicable(f"insertion {insertion!r} has a null key")
    padded = u.pad(view.relation.attributes)
    try:
        result = instance.insert(view.relation.name, padded)
    except ChaseFailure as exc:
        raise UpdateNotApplicable(f"insertion {insertion!r}: chase failed ({exc})") from exc
    merged = result.tuple_with_key(view.relation.name, u.key)
    observed = view.observe(merged)
    if observed is None or not u.subsumed_by(observed):
        raise UpdateNotApplicable(
            f"insertion {insertion!r}: inserted tuple is not subsumed by the "
            f"peer's view after the update"
        )
    return result


def deletion_result(
    schema: CollaborativeSchema, instance: Instance, deletion: Deletion
) -> Instance:
    """The result of a ground deletion, or raise :class:`UpdateNotApplicable`."""
    view = deletion.view
    key = deletion.term.value  # ground: Const term
    tup = instance.tuple_with_key(view.relation.name, key)
    if tup is None or not view.sees_tuple(tup):
        raise UpdateNotApplicable(
            f"deletion {deletion!r}: peer {view.peer} sees no tuple with key {key!r}"
        )
    return instance.delete(view.relation.name, key)


def updates_applicable(
    schema: CollaborativeSchema, instance: Instance, event: Event
) -> bool:
    """True iff every update in the event's head is applicable at *instance*."""
    try:
        for atom in event.ground_head():
            if isinstance(atom, Insertion):
                insertion_result(schema, instance, atom)
            else:
                deletion_result(schema, instance, atom)
    except UpdateNotApplicable:
        return False
    return True


def apply_event(
    schema: CollaborativeSchema,
    instance: Instance,
    event: Event,
    forbidden_fresh: Optional[FrozenSet[object]] = None,
    check_body: bool = True,
) -> Instance:
    """Fire *event* at *instance* and return the successor instance.

    Checks, in order: the body holds on the acting peer's view; head-only
    variables carry pairwise-distinct values outside *forbidden_fresh*
    (pass None to skip the freshness check); every update is applicable.
    Raises a :class:`~repro.workflow.errors.EventError` subclass on any
    violation.
    """
    # Event application is the unit of work every search loop performs,
    # so one ambient-budget poll here bounds any library entry point
    # wrapped in repro.runtime.budget.use_budget.
    ambient_checkpoint()
    with span("apply_event", rule=event.rule.name, peer=event.peer):
        try:
            result = _apply_event(
                schema, instance, event, forbidden_fresh, check_body
            )
        except EventError as exc:
            _EVENT_REJECTIONS.labels(error=type(exc).__name__).inc()
            raise
    _EVENTS_APPLIED.inc()
    return result


def _apply_event(
    schema: CollaborativeSchema,
    instance: Instance,
    event: Event,
    forbidden_fresh: Optional[FrozenSet[object]],
    check_body: bool,
) -> Instance:
    if check_body:
        view_instance = schema.view_instance(instance, event.peer)
        if not event.rule.body.satisfied_by(view_instance, event.valuation_dict()):
            raise EventError(
                f"event {event!r}: body does not hold on {event.peer}'s view"
            )
    head_only = sorted(event.rule.head_only_variables(), key=lambda v: v.name)
    if head_only:
        valuation = event.valuation_dict()
        values = [valuation[v] for v in head_only]
        if len(set(values)) != len(values):
            raise FreshnessViolation(
                f"event {event!r}: head-only variables share a value"
            )
        if forbidden_fresh is not None:
            clashes = [v for v in values if v in forbidden_fresh]
            if clashes:
                raise FreshnessViolation(
                    f"event {event!r}: values {clashes!r} are not globally fresh"
                )
    ground_head = event.ground_head()
    # Check applicability of every update against the *current* instance
    # first: an event fires only if all its updates are applicable.
    for atom in ground_head:
        if isinstance(atom, Insertion):
            insertion_result(schema, instance, atom)
        else:
            deletion_result(schema, instance, atom)
    # The updates affect pairwise distinct tuples, so the application
    # order is irrelevant; apply deletions first, then insertions.
    result = instance
    for atom in ground_head:
        if isinstance(atom, Deletion):
            result = result.delete(atom.view.relation.name, atom.term.value)
    for atom in ground_head:
        if isinstance(atom, Insertion):
            values = tuple(term.value for term in atom.terms)
            padded = Tuple(atom.view.attributes, values).pad(atom.view.relation.attributes)
            result = result.insert(atom.view.relation.name, padded)
    return result


def event_delta(before: Instance, after: Instance, event: Event) -> Delta:
    """The :class:`~repro.dataflow.delta.Delta` of ``before ⊢_event after``.

    Costs O(#update atoms): the touched keys are read off the event's
    ground head and looked up on both sides, never scanning an instance.
    """
    changes: Dict[str, Dict[object, PyTuple[Optional[Tuple], Optional[Tuple]]]] = {}
    chase_merged = False
    for atom in event.ground_head():
        relation = atom.view.relation.name
        if isinstance(atom, Insertion):
            key = Tuple(
                atom.view.attributes, tuple(term.value for term in atom.terms)
            ).key
        else:
            key = atom.term.value
        old = before.tuple_with_key(relation, key)
        new = after.tuple_with_key(relation, key)
        if old == new:
            continue
        if isinstance(atom, Insertion) and old is not None and new is not None:
            chase_merged = True
        changes.setdefault(relation, {})[key] = (old, new)
    return Delta(changes, chase_merged)


def apply_event_with_delta(
    schema: CollaborativeSchema,
    instance: Instance,
    event: Event,
    forbidden_fresh: Optional[FrozenSet[object]] = None,
    check_body: bool = True,
) -> PyTuple[Instance, Delta]:
    """Like :func:`apply_event`, also returning the transition's delta.

    The delta is the :class:`~repro.dataflow.delta.Delta` a
    :class:`~repro.dataflow.graph.DeltaGraph` consumes: callers that
    maintain derived state (the service view cache, provenance, the
    applicable-event index) push it once and every subscriber refreshes
    from the touched keys instead of recomputing from the whole
    instance.
    """
    result = apply_event(schema, instance, event, forbidden_fresh, check_body)
    delta = event_delta(instance, result, event)
    _DELTA_KEYS.observe(sum(len(keys) for keys in delta.changes.values()))
    return result, delta


def apply_events(
    schema: CollaborativeSchema,
    instance: Instance,
    events: Iterable[Event],
    forbidden_fresh: Optional[FrozenSet[object]] = None,
    check_body: bool = True,
) -> "list[PyTuple[Instance, Delta]]":
    """Fold :func:`apply_event_with_delta` over *events* under one span.

    Returns one ``(successor, delta)`` pair per event — ``pairs[i][0]``
    is the instance after ``events[:i+1]`` — with the per-event tracing
    span replaced by a single batch span (the budget checkpoint and the
    engine metrics still tick per event, so cancellation stays
    responsive and counters agree with a sequential fold).  Instances
    are immutable, so the fold is pure: the caller commits the pairs —
    or any prefix of them — wherever it keeps state.

    On a failing event the same :class:`EventError` a sequential fold
    would raise propagates, with the clean prefix attached as
    ``exc.batch_prefix`` so callers can commit it before handling the
    failure.
    """
    events = list(events)
    pairs: "list[PyTuple[Instance, Delta]]" = []
    current = instance
    with span("apply_events", count=len(events)):
        for event in events:
            ambient_checkpoint()
            try:
                result = _apply_event(
                    schema, current, event, forbidden_fresh, check_body
                )
            except EventError as exc:
                _EVENT_REJECTIONS.labels(error=type(exc).__name__).inc()
                exc.batch_prefix = pairs
                raise
            _EVENTS_APPLIED.inc()
            delta = event_delta(current, result, event)
            _DELTA_KEYS.observe(sum(len(keys) for keys in delta.changes.values()))
            pairs.append((result, delta))
            current = result
    return pairs


def event_applicable(
    schema: CollaborativeSchema,
    instance: Instance,
    event: Event,
    forbidden_fresh: Optional[FrozenSet[object]] = None,
) -> bool:
    """True iff :func:`apply_event` would succeed."""
    try:
        apply_event(schema, instance, event, forbidden_fresh)
    except EventError:
        return False
    return True


def event_effect(
    schema: CollaborativeSchema, before: Instance, after: Instance, relation: str
) -> Dict[str, Set[object]]:
    """Summarise the effect of a transition on *relation*.

    Returns a dict with keys ``created`` (keys newly present),
    ``deleted`` (keys removed) and ``modified`` (keys present on both
    sides whose tuple changed).
    """
    old = set(before.keys(relation))
    new = set(after.keys(relation))
    modified = {
        k
        for k in old & new
        if before.tuple_with_key(relation, k) != after.tuple_with_key(relation, k)
    }
    return {"created": new - old, "deleted": old - new, "modified": modified}


#: The delta-facing entry points moved to :mod:`repro.dataflow`; the old
#: engine names keep working for one release with a DeprecationWarning.
__getattr__ = deprecated_module_attrs(
    __name__,
    {
        "ViewDelta": ("repro.dataflow", "Delta"),
        "delta_visible_to": ("repro.dataflow", "delta_visible_to"),
        "refresh_view_instance": ("repro.dataflow", "refresh_view_instance"),
    },
)
