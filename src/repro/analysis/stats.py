"""Run statistics and scaling analysis helpers.

Used by the benchmark harness to summarise runs (how much of a run an
explanation discards), to fit scaling curves (validating the PTIME
claim of Theorem 4.7 empirically), and to print the result tables of
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..core.faithful import minimal_faithful_scenario
from ..workflow.runs import Run


@dataclass(frozen=True)
class RunStatistics:
    """Summary of one run from one peer's perspective."""

    events: int
    visible: int
    silent: int
    scenario_size: int
    compression: float  # fraction of the run the explanation discards

    @classmethod
    def of(cls, run: Run, peer: str) -> "RunStatistics":
        visible = len(run.visible_indices(peer))
        scenario = minimal_faithful_scenario(run, peer)
        total = len(run)
        compression = 1.0 - (len(scenario.indices) / total) if total else 0.0
        return cls(total, visible, total - visible, len(scenario.indices), compression)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class ScalingFit:
    """A power-law fit ``time ≈ c · n^k`` from (n, time) samples."""

    exponent: float
    coefficient: float
    r_squared: float

    def is_polynomial(self, max_degree: float) -> bool:
        return self.exponent <= max_degree


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> ScalingFit:
    """Least-squares fit of ``log t = k·log n + log c``.

    Zero or negative samples are dropped (they carry no log-log
    information).

    >>> fit = fit_power_law([10, 20, 40], [1.0, 4.0, 16.0])
    >>> round(fit.exponent)
    2
    """
    points = [
        (math.log(n), math.log(t))
        for n, t in zip(sizes, times)
        if n > 0 and t > 0
    ]
    if len(points) < 2:
        return ScalingFit(0.0, 0.0, 0.0)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_mean, y_mean = mean(xs), mean(ys)
    denominator = sum((x - x_mean) ** 2 for x in xs)
    if denominator == 0:
        return ScalingFit(0.0, math.exp(y_mean), 0.0)
    slope = sum((x - x_mean) * (y - y_mean) for x, y in points) / denominator
    intercept = y_mean - slope * x_mean
    predicted = [slope * x + intercept for x in xs]
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predicted))
    ss_tot = sum((y - y_mean) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return ScalingFit(slope, math.exp(intercept), r_squared)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (used by the benchmark harness)."""
    cells = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


#: Optional secondary sink for result tables (a writable file object).
#: The benchmark harness points this at ``benchmark_tables.txt`` so the
#: tables survive pytest's output capturing.
_table_sink = None


def set_table_sink(sink) -> None:
    """Route a copy of every :func:`print_table` output to *sink* (or None)."""
    global _table_sink
    _table_sink = sink


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print a titled result table (one per experiment in EXPERIMENTS.md)."""
    rendered = f"\n=== {title} ===\n" + format_table(headers, rows)
    print(rendered)
    if _table_sink is not None:
        _table_sink.write(rendered + "\n")
        _table_sink.flush()
