"""The complexity landscape, executed (Theorems 3.3, 3.4, 4.7, 5.4).

Explanations are a mixed bag complexity-wise, and this example runs the
paper's own gadgets to show it:

* minimum scenarios are NP-hard — a Hitting Set instance becomes a
  workflow run whose shortest scenario encodes the optimum;
* testing scenario minimality is coNP-hard — an UNSAT question becomes
  a minimality question;
* minimal *faithful* scenarios avoid all of this: unique and PTIME;
* the undecidability of view-program existence rides on PCP — the
  encoding is executable and finds solutions for easy instances.

Run with: ``python examples/hardness_gadgets.py``
"""

from repro.api import minimal_faithful_scenario, minimum_scenario
from repro.reductions import (
    AndExpr,
    NotExpr,
    PCPInstance,
    VarExpr,
    brute_force_hitting_set,
    brute_force_solution,
    hitting_set_to_workflow,
    is_satisfiable,
    random_instance,
    search_solution,
    unsat_to_minimality,
)


def hitting_set_demo() -> None:
    print("=== Theorem 3.3: minimum scenarios encode Hitting Set ===")
    instance = random_instance(universe=5, n_sets=4, set_size=2, bound=2, seed=7)
    print(f"universe = 0..{instance.universe - 1}, sets = {[set(s) for s in instance.sets]}")
    optimum = brute_force_hitting_set(instance)
    print(f"brute-force hitting set (≤ {instance.bound}): {optimum and set(optimum)}")
    reduction = hitting_set_to_workflow(instance)
    print(
        f"reduction: {len(reduction.program)} rules, run of {len(reduction.run)} "
        f"events, scenario threshold M+k+1 = {reduction.threshold}"
    )
    best = minimum_scenario(reduction.run, "p")
    names = [reduction.run.events[i].rule.name for i in best.sorted_indices()]
    print(f"minimum scenario ({len(best)} events): {names}")
    chosen = {int(n[1:]) for n in names if n.startswith("a")}
    print(f"...which selects the hitting set {chosen}")
    agrees = (optimum is not None) == reduction.scenario_exists()
    print(f"agreement with brute force: {agrees}\n")


def minimality_demo() -> None:
    print("=== Theorem 3.4: minimality testing encodes UNSAT ===")
    x, y = VarExpr("x"), VarExpr("y")
    for formula in (AndExpr((x, NotExpr(x))), AndExpr((x, NotExpr(y)))):
        reduction = unsat_to_minimality(formula)
        print(
            f"φ = {formula!r}: satisfiable={is_satisfiable(formula)}, "
            f"run-is-minimal-scenario={reduction.run_is_minimal_scenario()}"
        )
    print()


def faithful_demo() -> None:
    print("=== Theorem 4.7: faithful scenarios stay polynomial ===")
    instance = random_instance(universe=6, n_sets=5, set_size=2, bound=3, seed=3)
    reduction = hitting_set_to_workflow(instance)
    scenario = minimal_faithful_scenario(reduction.run, "p")
    print(
        f"the unique minimal faithful scenario has {len(scenario.indices)} of "
        f"{len(reduction.run)} events — computed by a fixpoint, no search: it "
        "keeps exactly the events that really derived OK\n"
    )


def pcp_demo() -> None:
    print("=== Theorem 5.4: the PCP gadget behind undecidability ===")
    solvable = PCPInstance((("a", "ab"), ("ba", "a")))
    unsolvable = PCPInstance((("a", "b"),))
    print(f"dominoes {solvable.dominoes}: brute-force solution "
          f"{brute_force_solution(solvable, 3)}")
    print(
        "workflow encoding reaches U (solution found):",
        search_solution(solvable, max_events=8),
    )
    print(f"dominoes {unsolvable.dominoes}: brute-force solution "
          f"{brute_force_solution(unsolvable, 3)}")
    print(
        "workflow encoding reaches U within 5 events:",
        search_solution(unsolvable, max_events=5),
    )


def main() -> None:
    hitting_set_demo()
    minimality_demo()
    faithful_demo()
    pcp_demo()


if __name__ == "__main__":
    main()
