"""Tests for p-fresh instance enumeration (Definition 5.5)."""

import pytest

from repro.transparency.freshness import (
    is_p_fresh,
    iter_p_fresh_instances,
    p_fresh_instances,
)
from repro.transparency.instances import constant_pool
from repro.workflow import Instance
from repro.workflow.tuples import Tuple


class TestEmptyInstance:
    def test_empty_always_p_fresh(self, hiring_no_cfo):
        pool = constant_pool(hiring_no_cfo, 1)
        instances = p_fresh_instances(hiring_no_cfo, "sue", pool, 1)
        assert instances[0][0].is_empty()
        assert instances[0][1] is None


class TestForwardEnumeration:
    def test_results_of_visible_events(self, hiring_no_cfo):
        pool = constant_pool(hiring_no_cfo, 1)
        found = p_fresh_instances(hiring_no_cfo, "sue", pool, 1)
        # Some fresh instance contains a Cleared fact (clear is visible).
        assert any(
            not inst.is_empty() and inst.keys("Cleared") for inst, _ in found
        )

    def test_witnesses_replay(self, hiring_no_cfo):
        from repro.workflow.engine import apply_event

        pool = constant_pool(hiring_no_cfo, 1)
        for instance, witness in p_fresh_instances(hiring_no_cfo, "sue", pool, 1):
            if witness is None:
                continue
            result = apply_event(
                hiring_no_cfo.schema, witness.predecessor, witness.event, None
            )
            assert result == instance

    def test_invisible_events_do_not_witness(self, hiring_no_cfo):
        # approve (inserting Approved, invisible to sue) never witnesses.
        pool = constant_pool(hiring_no_cfo, 1)
        for _instance, witness in p_fresh_instances(hiring_no_cfo, "sue", pool, 1):
            if witness is not None:
                assert witness.event.rule.name != "approve"

    def test_no_duplicates(self, hiring_no_cfo):
        pool = constant_pool(hiring_no_cfo, 1)
        found = [inst for inst, _ in p_fresh_instances(hiring_no_cfo, "sue", pool, 1)]
        assert len(found) == len(set(found))


class TestWitnessFreshness:
    def test_freshness_excludes_value_reuse(self, hiring_no_cfo):
        # Under witness freshness, {Cleared(c), Approved(c)} is NOT
        # sue-fresh: the clear event's head-only x cannot reuse c.
        pool = constant_pool(hiring_no_cfo, 1)
        schema = hiring_no_cfo.schema.schema
        c = pool[-1]
        target = Instance.from_tuples(
            schema,
            {"Cleared": [Tuple(("K",), (c,))], "Approved": [Tuple(("K",), (c,))]},
        )
        assert is_p_fresh(hiring_no_cfo, "sue", target, pool, 1) is None

    def test_literal_reading_allows_value_reuse(self, hiring_no_cfo):
        # Under the literal Definition 5.5 reading (Example 5.7's usage),
        # the same instance IS sue-fresh via +Cleared@hr(c) on {Approved(c)}.
        pool = constant_pool(hiring_no_cfo, 1)
        schema = hiring_no_cfo.schema.schema
        c = pool[-1]
        target = Instance.from_tuples(
            schema,
            {"Cleared": [Tuple(("K",), (c,))], "Approved": [Tuple(("K",), (c,))]},
        )
        witness = is_p_fresh(
            hiring_no_cfo, "sue", target, pool, 1, witness_freshness=False
        )
        assert witness is not None
        assert witness.event.rule.name == "clear"

    def test_fresh_values_still_allowed(self, hiring_no_cfo):
        # {Cleared(c0), Approved(c1)} is sue-fresh even with freshness:
        # clear(c0) on {Approved(c1)}.
        pool = constant_pool(hiring_no_cfo, 2)
        schema = hiring_no_cfo.schema.schema
        c0, c1 = pool[-2], pool[-1]
        target = Instance.from_tuples(
            schema,
            {"Cleared": [Tuple(("K",), (c0,))], "Approved": [Tuple(("K",), (c1,))]},
        )
        assert is_p_fresh(hiring_no_cfo, "sue", target, pool, 1) is not None
