"""Property tests: the delta-maintained applicable-event index.

:class:`~repro.workflow.eventindex.ApplicableEventIndex` must yield the
*same candidate sequence* as the from-scratch
:func:`~repro.workflow.enumerate.applicable_events` at every step of a
run, while re-evaluating only the rules whose bodies the last delta
touched.  Fresh values are minted in enumeration order, so with
identically seeded sources the comparison is plain event equality —
no modulo-renaming needed.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workflow.engine import apply_event_with_delta
from repro.workflow.enumerate import RunGenerator, applicable_events
from repro.workflow.eventindex import ApplicableEventIndex
from repro.workflow.evalstats import EVAL_STATS
from repro.workflow.instance import Instance
from repro.workflow.statespace import StateSpaceExplorer
from repro.workloads.generators import random_propositional_program

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

program_seeds = st.integers(0, 60)
run_seeds = st.integers(0, 60)
lengths = st.integers(1, 12)


def make_program(seed: int):
    return random_propositional_program(
        relations=5, rules=9, seed=seed, deletion_fraction=0.25
    )


class TestIndexMatchesFromScratch:
    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_candidate_sequence_identical_along_runs(self, ps, rs, n):
        """At every step of a random run the maintained index yields
        exactly the events the from-scratch enumeration yields."""
        program = make_program(ps)
        schema = program.schema
        instance = Instance.empty(schema.schema)
        index = ApplicableEventIndex(program, instance)
        rng = random.Random(rs)
        for _ in range(n):
            indexed = list(index.events())
            scratch = list(applicable_events(program, instance))
            assert indexed == scratch
            if not indexed:
                break
            event = rng.choice(indexed)
            instance, delta = apply_event_with_delta(
                schema, instance, event, forbidden_fresh=None, check_body=False
            )
            index.advance(delta, instance)

    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_run_generator_unaffected_by_index(self, ps, rs, n):
        """Seeded random runs are bit-identical with and without the index."""
        program = make_program(ps)
        with_index = RunGenerator(program, seed=rs, use_event_index=True).random_run(n)
        without = RunGenerator(program, seed=rs, use_event_index=False).random_run(n)
        assert with_index.events == without.events
        assert with_index.final_instance == without.final_instance

    @SETTINGS
    @given(program_seeds, st.integers(0, 20))
    def test_advanced_leaves_parent_intact(self, ps, rs):
        """advanced() derives a child index without disturbing the parent
        (the branching-search contract)."""
        program = make_program(ps)
        schema = program.schema
        instance = Instance.empty(schema.schema)
        index = ApplicableEventIndex(program, instance)
        candidates = list(index.events())
        if not candidates:
            return
        event = random.Random(rs).choice(candidates)
        successor, delta = apply_event_with_delta(
            schema, instance, event, forbidden_fresh=None, check_body=False
        )
        child = index.advanced(delta, successor)
        # Parent still answers for the old instance...
        assert list(index.events()) == list(applicable_events(program, instance))
        # ...and the child answers for the new one.
        assert list(child.events()) == list(applicable_events(program, successor))

    def test_advance_skips_untouched_rules(self):
        """Rules whose bodies the delta does not touch are served from
        cache: the skip counter moves, the re-evaluation counter does
        not move by more than the touched rules."""
        program = make_program(3)
        instance = Instance.empty(program.schema.schema)
        index = ApplicableEventIndex(program, instance)
        candidates = list(index.events())
        assert candidates, "seed 3 must admit at least one initial event"
        event = candidates[0]
        successor, delta = apply_event_with_delta(
            program.schema, instance, event, forbidden_fresh=None, check_body=False
        )
        index.advance(delta, successor)
        before = EVAL_STATS.snapshot()
        list(index.events())
        after = EVAL_STATS.snapshot()
        reevaluated = (
            after["event_index_rules_reevaluated"]
            - before["event_index_rules_reevaluated"]
        )
        skipped = after["event_index_rules_skipped"] - before["event_index_rules_skipped"]
        assert reevaluated + skipped == len(index.rules)
        assert reevaluated < len(index.rules)
        assert skipped > 0


class TestExplorerEquivalence:
    @SETTINGS
    @given(program_seeds)
    def test_exploration_identical_with_and_without_index(self, ps):
        """Breadth-first exploration visits the same states along the
        same witness paths whether or not successors come from derived
        (advanced) indexes."""
        program = make_program(ps)
        indexed = StateSpaceExplorer(program, dedup="exact", use_event_index=True)
        plain = StateSpaceExplorer(program, dedup="exact", use_event_index=False)
        indexed_states = [
            (s.instance, s.path) for s in indexed.iterate(max_depth=3, max_states=40)
        ]
        plain_states = [
            (s.instance, s.path) for s in plain.iterate(max_depth=3, max_states=40)
        ]
        assert indexed_states == plain_states
        assert indexed.stats.transitions == plain.stats.transitions

    def test_reachable_count_honours_max_states(self):
        program = make_program(1)
        explorer = StateSpaceExplorer(program, dedup="exact")
        full = explorer.reachable_count(max_depth=3)
        assert full > 2
        capped = explorer.reachable_count(max_depth=3, max_states=2)
        assert capped == 2
        assert explorer.reachable_count(max_depth=3, max_states=full + 10) == full
