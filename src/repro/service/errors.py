"""Errors of the multi-run workflow service, and the wire error codes.

The :data:`ERROR_CODES` registry is the single source of truth for the
machine-readable ``error`` codes the JSON-lines protocol emits: the
server classifies exceptions through :func:`error_code`, the protocol
docs enumerate :data:`ERROR_CODES`, and the load generator's violation
checks accept exactly these codes — one registry, three consumers.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..workflow.errors import EventError, WorkflowError

__all__ = [
    "AdmissionError",
    "DuplicateRunError",
    "ERROR_CODES",
    "ProtocolError",
    "ServiceError",
    "UnknownRunError",
    "error_code",
]


class ServiceError(WorkflowError):
    """Base class for errors raised by the service layer."""


class UnknownRunError(ServiceError):
    """A request referenced a run id the registry does not host."""


class DuplicateRunError(ServiceError):
    """An open request used a run id that is already hosted."""


class AdmissionError(ServiceError):
    """The broker rejected an event at admission (backpressure/budget)."""


class ProtocolError(ServiceError):
    """A malformed request or response line on the wire."""


#: Every ``error`` code a response can carry, with its meaning.  This is
#: the registry the protocol documentation and the load generator's
#: violation checks share with the server.
ERROR_CODES: Dict[str, str] = {
    "unknown_run": "the request referenced a run id that is not hosted",
    "duplicate_run": "an open used a run id that is already hosted",
    "protocol": "the request line was malformed, oversized or used an unknown op",
    "event": "the event was rejected by the engine (body, freshness, chase)",
    "service": "a service-layer failure (admission, unknown peer, ...)",
    "unavailable": "the owning shard is down or restarting; retry shortly",
    "workflow": "any other workflow-level failure",
}

#: Exception classification, most specific first — the first matching
#: entry decides the wire code (so ProtocolError is "protocol", not its
#: base class's "service").
_CLASSIFICATION: Tuple[Tuple[Type[BaseException], str], ...] = (
    (UnknownRunError, "unknown_run"),
    (DuplicateRunError, "duplicate_run"),
    (ProtocolError, "protocol"),
    (EventError, "event"),
    (ServiceError, "service"),
)


def error_code(exc: BaseException) -> str:
    """The stable wire code for *exc* (always a key of :data:`ERROR_CODES`)."""
    for kind, code in _CLASSIFICATION:
        if isinstance(exc, kind):
            return code
    return "workflow"
