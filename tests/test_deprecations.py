"""The deprecation shims of the dataflow consolidation.

The delta-facing entry points moved into :mod:`repro.dataflow`
(``ViewDelta`` -> ``Delta``, plus the ``delta_visible_to`` /
``refresh_view_instance`` function forms); the old engine and
``repro.workflow`` spellings keep working for one release through
PEP 562 module ``__getattr__`` shims that warn and resolve to the new
objects.  This suite pins exactly that shim set — and pins that the
*previous* generation of shims (the PR 3/4 renamed kwargs and
pre-backend toggles) is gone, so nothing resurrects them silently.
"""

from __future__ import annotations

import warnings

import pytest

from repro.deprecation import deprecated_module_attrs


class TestDeprecatedModuleAttrs:
    def test_resolves_with_warning(self):
        getter = deprecated_module_attrs(
            "fake.module", {"OldName": ("repro.dataflow", "Delta")}
        )
        with pytest.warns(DeprecationWarning, match="fake.module.OldName"):
            resolved = getter("OldName")
        from repro.dataflow import Delta

        assert resolved is Delta

    def test_warning_names_the_new_location(self):
        getter = deprecated_module_attrs(
            "fake.module", {"OldName": ("repro.dataflow", "Delta")}
        )
        with pytest.warns(DeprecationWarning, match="repro.dataflow.Delta"):
            getter("OldName")

    def test_unknown_attribute_raises_attribute_error(self):
        getter = deprecated_module_attrs("fake.module", {})
        with pytest.raises(AttributeError, match="fake.module"):
            getter("anything")


class TestMovedDeltaNames:
    """The engine's delta surface now lives in repro.dataflow."""

    def test_engine_viewdelta_is_dataflow_delta(self):
        import repro.dataflow as dataflow
        import repro.workflow.engine as engine

        with pytest.warns(DeprecationWarning, match="repro.dataflow.Delta"):
            assert engine.ViewDelta is dataflow.Delta

    def test_workflow_viewdelta_is_dataflow_delta(self):
        import repro.dataflow as dataflow
        import repro.workflow as workflow

        with pytest.warns(DeprecationWarning, match="repro.dataflow.Delta"):
            assert workflow.ViewDelta is dataflow.Delta

    def test_engine_delta_visible_to_shim(self):
        import repro.dataflow as dataflow
        import repro.workflow.engine as engine

        with pytest.warns(DeprecationWarning, match="delta_visible_to"):
            assert engine.delta_visible_to is dataflow.delta_visible_to

    def test_engine_refresh_view_instance_shim(self):
        import repro.dataflow as dataflow
        import repro.workflow.engine as engine

        with pytest.warns(DeprecationWarning, match="refresh_view_instance"):
            assert engine.refresh_view_instance is dataflow.refresh_view_instance

    def test_new_locations_are_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.dataflow import (  # noqa: F401
                Delta,
                delta_visible_to,
                refresh_view_instance,
            )

    def test_unknown_engine_attribute_still_raises(self):
        import repro.workflow.engine as engine

        with pytest.raises(AttributeError):
            engine.no_such_name


class TestRetiredShims:
    """The PR 3/4 shims completed their cycle and are gone for good."""

    def test_renamed_kwarg_is_gone(self):
        import repro.deprecation as deprecation

        assert not hasattr(deprecation, "renamed_kwarg")

    def test_set_planned_is_gone(self):
        from repro.workflow import planner

        assert not hasattr(planner, "set_planned")
        assert "set_planned" not in planner.__all__

    def test_naive_queries_env_is_ignored(self, monkeypatch):
        from repro.workflow import planner

        monkeypatch.delenv("REPRO_QUERY_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_NAIVE_QUERIES", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert planner._backend_from_env() == "compiled"

    def test_minimum_scenario_rejects_max_size(self, approval_run):
        from repro.core import minimum_scenario

        with pytest.raises(TypeError):
            minimum_scenario(approval_run, "applicant", max_size=3)

    def test_enumerate_rejects_max_length(self, approval):
        from repro.workflow.enumerate import enumerate_event_sequences

        with pytest.raises(TypeError):
            list(enumerate_event_sequences(approval, max_length=2))

    def test_enumerate_depth_is_still_required(self, approval):
        from repro.workflow.enumerate import enumerate_event_sequences

        with pytest.raises(TypeError, match="max_depth"):
            list(enumerate_event_sequences(approval))

    def test_lint_rejects_explore_depth(self, approval):
        from repro.workflow.lint import lint_program

        with pytest.raises(TypeError):
            lint_program(approval, explore_depth=3)

    def test_anytime_minimum_scenario_rejects_max_size(self, approval_run):
        from repro.runtime import Budget, anytime_minimum_scenario

        with pytest.raises(TypeError):
            anytime_minimum_scenario(approval_run, "applicant", Budget(), max_size=3)
