"""The pluggable storage layer beneath hosted runs.

A :class:`StorageBackend` owns the durable record history of every run
the service hosts — the same begin/event/snapshot/quarantine/end
records :mod:`repro.runtime.journal` defines — behind two small
interfaces:

* :class:`StorageBackend` — the per-service object: run id → record
  store, existence/listing/deletion, aggregate stats;
* :class:`RunStore` — the per-run handle: append one record, read them
  all back (with torn-tail warnings), force a durability barrier,
  compact.

Four implementations ship: :class:`MemoryBackend` (records in RAM — the
default, preserving the pre-storage semantics where a process death
loses unjournaled runs), :class:`FileBackend` (the legacy flat
``<dir>/<run>.journal`` JSON-lines layout, interoperable with ``repro
recover --journal-dir``), :class:`~repro.storage.segment.SegmentBackend`
(segmented log with per-record CRC framing, torn-write
truncate-and-recover and manifest-atomic compaction) and
:class:`~repro.storage.sqlitestore.SqliteBackend` (stdlib sqlite3).
All four are proven bit-identical over random workloads by
``tests/storage/test_equivalence.py``.

Compaction is a pure record transform (:func:`compact_records`): all
events and quarantines survive — they are the run's replayable evidence
and the substrate of explanations — while superseded snapshots (the
bulky part: one full instance every ``snapshot_every`` events) are
dropped, keeping only the latest.  Recovery then costs O(events since
the last checkpoint) of engine work via
:func:`repro.runtime.checkpoint.fast_recover`, and journal size stays
O(events + one instance) instead of O(events × instance/snapshot_every).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple, Union

from ..obs.metrics import METRICS
from ..runtime.faults import DiskFault
from ..runtime.journal import (
    JOURNAL_SUFFIX,
    begin_record,
    end_record,
    event_record,
    journal_path,
    quarantine_record,
    read_journal_ex,
    run_id_from_path,
    snapshot_record,
)
from ..workflow.errors import WorkflowError
from ..workflow.events import Event
from ..workflow.instance import Instance

__all__ = [
    "CompactionStats",
    "DurabilityPolicy",
    "FileBackend",
    "MemoryBackend",
    "RecordJournal",
    "RunStore",
    "StorageBackend",
    "StorageCorruptionError",
    "StorageError",
    "compact_records",
    "open_backend",
]


class StorageError(WorkflowError):
    """A storage backend failed or was misused."""


class StorageCorruptionError(StorageError):
    """A record failed its integrity check somewhere other than the tail.

    Trailing damage (a torn or corrupted final record) is *recovered*,
    not raised — the crash interrupted a write that was never
    acknowledged.  Interior damage means acknowledged history is gone,
    which no amount of truncation can hide; it must surface loudly.
    """


# ----------------------------------------------------------------------
# Shared metrics (one family per phenomenon, labelled by backend)
# ----------------------------------------------------------------------

COMPACTIONS = METRICS.counter(
    "repro_storage_compactions_total",
    "Journal compactions performed, by backend",
    labelnames=("backend",),
)
COMPACTION_RECLAIMED = METRICS.counter(
    "repro_storage_compaction_reclaimed_records_total",
    "Records dropped by compaction (superseded snapshots, stale markers)",
    labelnames=("backend",),
)
FSYNC_SECONDS = METRICS.histogram(
    "repro_storage_fsync_seconds",
    "Latency of storage fsync barriers",
    buckets=(0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0),
)
DISK_FAULTS = METRICS.counter(
    "repro_storage_disk_faults_total",
    "Injected disk faults surfaced by storage backends, by kind",
    labelnames=("kind",),
)
TAIL_RECOVERIES = METRICS.counter(
    "repro_storage_tail_recoveries_total",
    "Torn/corrupt trailing records truncated away on read or repair",
    labelnames=("backend",),
)


# ----------------------------------------------------------------------
# Durability policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DurabilityPolicy:
    """When a backend fsyncs — the knob of the crash-consistency contract.

    ``mode`` is one of:

    * ``"flush"`` (default) — every record is flushed to the OS before
      the event is acknowledged: a process crash loses nothing, an
      OS/power crash may lose the unsynced tail;
    * ``"fsync"`` — every record is fsynced: acknowledged events survive
      power loss, at one disk round-trip per event;
    * ``"interval"`` — flush per record, fsync every ``interval``
      appends *and* at every barrier (snapshot, seal, compaction): a
      power crash loses at most ``interval`` acknowledged events;
    * ``"none"`` — no flush at all (benchmarking only).

    See ``docs/STORAGE.md`` for the durability matrix.
    """

    mode: str = "flush"
    interval: int = 8

    _MODES = ("none", "flush", "interval", "fsync")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise StorageError(
                f"unknown durability mode {self.mode!r} "
                f"(expected one of {', '.join(self._MODES)})"
            )
        if self.mode == "interval" and self.interval < 1:
            raise StorageError("durability interval must be at least 1")

    @classmethod
    def parse(cls, spec: Union[str, "DurabilityPolicy", None]) -> "DurabilityPolicy":
        """``"fsync"``, ``"interval:32"``, … → a policy (None → default)."""
        if spec is None:
            return cls()
        if isinstance(spec, DurabilityPolicy):
            return spec
        mode, _, arg = spec.partition(":")
        if mode == "interval" and arg:
            try:
                return cls(mode="interval", interval=int(arg))
            except ValueError:
                raise StorageError(f"bad durability interval in {spec!r}") from None
        return cls(mode=mode)

    @property
    def flushes(self) -> bool:
        return self.mode != "none"

    def wants_fsync(self, appends_since_sync: int, barrier: bool) -> bool:
        if self.mode == "fsync":
            return True
        if self.mode == "interval":
            return barrier or appends_since_sync >= self.interval
        return False


# ----------------------------------------------------------------------
# Compaction (a pure record transform)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CompactionStats:
    """What one compaction pass accomplished."""

    records_before: int
    records_after: int
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def records_reclaimed(self) -> int:
        return self.records_before - self.records_after

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after

    def to_dict(self) -> Dict[str, int]:
        return {
            "records_before": self.records_before,
            "records_after": self.records_after,
            "records_reclaimed": self.records_reclaimed,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


def compact_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The compacted form of a journal's records.

    Kept, in order: the begin record, every event and quarantine record
    (the replayable evidence — explanations and provenance need the full
    history), the *latest* snapshot at its correct position, and the
    final end record when the journal is sealed (an ``end`` as its last
    record).  Dropped: superseded snapshots and stale end markers left
    behind by crash/recover cycles.  Replaying the compacted records
    yields a state bit-identical to replaying the originals, and
    :func:`~repro.runtime.checkpoint.fast_recover` on them does
    O(events since the kept snapshot) engine work.
    """
    last_snapshot = None
    for position, record in enumerate(records):
        if record.get("type") == "snapshot":
            last_snapshot = position
    sealed = bool(records) and records[-1].get("type") == "end"
    kept: List[Dict[str, Any]] = []
    for position, record in enumerate(records):
        kind = record.get("type")
        if kind == "snapshot" and position != last_snapshot:
            continue
        if kind == "end" and not (sealed and position == len(records) - 1):
            continue
        kept.append(record)
    return kept


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------


class RunStore:
    """The per-run record handle a backend hands out.

    Subclasses implement the five storage verbs; the base class only
    fixes the contract:

    * :meth:`append` makes *record* part of the run's history per the
      backend's durability policy, raising
      :class:`~repro.runtime.faults.DiskFault` when an injected fault
      fires — in which case the record is NOT acknowledged and the
      store self-heals on the next append (truncate-and-recover);
    * :meth:`read` returns ``(records, warnings)``, dropping torn or
      corrupted *trailing* records with a warning and raising
      :class:`StorageCorruptionError` for interior damage;
    * :meth:`sync` is an explicit durability barrier;
    * :meth:`compact` rewrites the history as :func:`compact_records`;
    * :meth:`close` releases the handle (the records stay).
    """

    run_id: str

    def append(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def read(self) -> PyTuple[List[Dict[str, Any]], List[str]]:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def compact(self) -> CompactionStats:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def record_count(self) -> int:
        raise NotImplementedError

    def size_bytes(self) -> int:
        return 0

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    #: Where the records live on disk, when they do (diagnostics only).
    path: Optional[Path] = None


class StorageBackend:
    """Run id → :class:`RunStore`; the service's durable substrate."""

    #: Short name used in metrics labels and ``--storage`` specs.
    name: str = "abstract"
    #: Whether records survive a process death.  The registry refuses to
    #: simulate crash recovery on non-durable backends (the state would
    #: genuinely be lost), and only durable backends make eviction a
    #: RAM-for-disk trade rather than a RAM-for-RAM one.
    durable: bool = False

    def exists(self, run_id: str) -> bool:
        raise NotImplementedError

    def store(self, run_id: str) -> RunStore:
        """The run's record store, created empty if it does not exist."""
        raise NotImplementedError

    def read_records(self, run_id: str) -> PyTuple[List[Dict[str, Any]], List[str]]:
        store = self.store(run_id)
        try:
            return store.read()
        finally:
            store.close()

    def run_ids(self) -> List[str]:
        raise NotImplementedError

    def delete(self, run_id: str) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        return {"backend": self.name, "durable": self.durable}

    def close(self) -> None:
        pass

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Record-level journal (the writer hosted runs hold)
# ----------------------------------------------------------------------


class RecordJournal:
    """A :class:`~repro.runtime.journal.JournalWriter`-compatible emitter
    over a :class:`RunStore`.

    Same public surface (``begin`` / ``record_event`` / ``snapshot`` /
    ``quarantine`` / ``end`` / ``observer`` / ``close``), but records go
    to the store as dicts instead of JSON lines to a file — compaction
    and CRC framing are the store's business.  ``compact_every``
    triggers an automatic compaction after that many snapshots (0
    disables; compaction can still be forced via the store).
    """

    def __init__(
        self,
        store: RunStore,
        snapshot_every: Optional[int] = 10,
        compact_every: int = 4,
    ) -> None:
        self.store = store
        self.snapshot_every = snapshot_every
        self.compact_every = compact_every
        self.events_recorded = 0
        #: ``events_recorded`` as of the last snapshot (None: no snapshot
        #: yet).  Eviction consults this to skip redundant snapshots.
        self.last_snapshot_at: Optional[int] = None
        self._snapshots_since_compact = 0
        self._closed = False

    def resume(
        self, events_recorded: int, last_snapshot_at: Optional[int]
    ) -> None:
        """Adopt the position of an existing journal being reopened.

        Keeps the snapshot cadence continuous across rehydration: a run
        evicted and reloaded at event 25 with ``snapshot_every=10``
        snapshots again at 30, not at 35.
        """
        self.events_recorded = events_recorded
        self.last_snapshot_at = last_snapshot_at

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise StorageError("record journal is closed")
        self.store.append(record)

    def begin(self, initial: Instance, meta: Optional[Dict[str, Any]] = None) -> None:
        self._emit(begin_record(initial, meta))

    def record_event(
        self, index: int, event: Event, instance: Optional[Instance] = None
    ) -> None:
        self._emit(event_record(index, event))
        self.events_recorded += 1
        if (
            instance is not None
            and self.snapshot_every
            and self.events_recorded % self.snapshot_every == 0
        ):
            try:
                self.snapshot(index, instance)
            except DiskFault:
                # The event record above is already acknowledged; a
                # snapshot is a recovery-cost optimization, not part of
                # the ack.  Raising here would make the caller retry an
                # acknowledged append and duplicate the event record.
                pass

    def snapshot(self, index: int, instance: Instance) -> None:
        self._emit(snapshot_record(index, self.events_recorded, instance))
        self.last_snapshot_at = self.events_recorded
        self._snapshots_since_compact += 1
        if self.compact_every and self._snapshots_since_compact >= self.compact_every:
            self.store.compact()
            self._snapshots_since_compact = 0

    def quarantine(self, index: int, event: Event, error: str, attempts: int) -> None:
        self._emit(quarantine_record(index, event, error, attempts))

    def end(self, status: str = "completed", reason: Optional[str] = None) -> None:
        self._emit(end_record(status, reason))
        self.store.sync()

    def observer(self) -> Callable[[int, Event, Instance], None]:
        def observe(index: int, event: Event, instance: Instance) -> None:
            self.record_event(index, event, instance)

        return observe

    def close(self) -> None:
        if not self._closed:
            self.store.close()
        self._closed = True

    def __enter__(self) -> "RecordJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Memory backend (the default: pre-storage semantics, records in RAM)
# ----------------------------------------------------------------------


class _MemoryStore(RunStore):
    def __init__(self, backend: "MemoryBackend", run_id: str) -> None:
        self.backend = backend
        self.run_id = run_id
        self._records = backend._records.setdefault(run_id, [])
        self._closed = False

    def append(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise StorageError(f"store for run {self.run_id!r} is closed")
        self._records.append(record)

    def read(self) -> PyTuple[List[Dict[str, Any]], List[str]]:
        return list(self._records), []

    def sync(self) -> None:
        pass

    def compact(self) -> CompactionStats:
        before = len(self._records)
        kept = compact_records(self._records)
        self._records[:] = kept
        COMPACTIONS.labels(backend=self.backend.name).inc()
        COMPACTION_RECLAIMED.labels(backend=self.backend.name).inc(before - len(kept))
        self.backend.compactions += 1
        return CompactionStats(records_before=before, records_after=len(kept))

    def close(self) -> None:
        self._closed = True

    def record_count(self) -> int:
        return len(self._records)

    def size_bytes(self) -> int:
        return sum(len(json.dumps(r, sort_keys=True)) for r in self._records)


class MemoryBackend(StorageBackend):
    """Records held in process memory — the default backend.

    Hosted-run semantics are bit-identical to the pre-storage service:
    nothing touches disk, and a (real or simulated) process death loses
    any run that was only hosted here.  What the records buy within the
    process is LRU eviction: an idle run's live state (instance, caches,
    explainers — the RAM-heavy part) can be dropped and transparently
    rehydrated from its records on next access.
    """

    name = "memory"
    durable = False

    def __init__(self) -> None:
        self._records: Dict[str, List[Dict[str, Any]]] = {}
        self.compactions = 0

    def exists(self, run_id: str) -> bool:
        return bool(self._records.get(run_id))

    def store(self, run_id: str) -> _MemoryStore:
        return _MemoryStore(self, run_id)

    def run_ids(self) -> List[str]:
        return sorted(run_id for run_id, records in self._records.items() if records)

    def delete(self, run_id: str) -> None:
        self._records.pop(run_id, None)

    def stats(self) -> Dict[str, Any]:
        return {
            **super().stats(),
            "runs": len(self._records),
            "records": sum(len(r) for r in self._records.values()),
            "compactions": self.compactions,
        }


# ----------------------------------------------------------------------
# File backend (the legacy flat .journal layout, now storage-shaped)
# ----------------------------------------------------------------------


class _FileStore(RunStore):
    def __init__(self, backend: "FileBackend", run_id: str) -> None:
        self.backend = backend
        self.run_id = run_id
        self.path = journal_path(backend.root, run_id)
        backend.root.mkdir(parents=True, exist_ok=True)
        self._sink = open(self.path, "a", encoding="utf-8")
        self._appends_since_sync = 0

    def append(self, record: Dict[str, Any]) -> None:
        if self._sink.closed:
            raise StorageError(f"store for run {self.run_id!r} is closed")
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        policy = self.backend.durability
        if policy.flushes:
            self._sink.flush()
        self._appends_since_sync += 1
        barrier = record.get("type") in ("snapshot", "end")
        if policy.wants_fsync(self._appends_since_sync, barrier):
            self.sync()

    def read(self) -> PyTuple[List[Dict[str, Any]], List[str]]:
        self._sink.flush()
        if not self.path.exists():
            return [], []
        return read_journal_ex(self.path)

    def sync(self) -> None:
        self._sink.flush()
        started = time.perf_counter()
        os.fsync(self._sink.fileno())
        FSYNC_SECONDS.observe(time.perf_counter() - started)
        self._appends_since_sync = 0

    def compact(self) -> CompactionStats:
        """Rewrite the journal file compacted, via tmp + atomic rename.

        The legacy format stays legacy: plain JSON lines, readable by
        ``repro recover --journal-dir`` before and after.
        """
        self._sink.flush()
        bytes_before = self.path.stat().st_size if self.path.exists() else 0
        records, _ = self.read()
        kept = compact_records(records)
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "w", encoding="utf-8") as sink:
            for record in kept:
                sink.write(json.dumps(record, sort_keys=True) + "\n")
            sink.flush()
            os.fsync(sink.fileno())
        self._sink.close()
        os.replace(tmp, self.path)
        self._sink = open(self.path, "a", encoding="utf-8")
        COMPACTIONS.labels(backend=self.backend.name).inc()
        COMPACTION_RECLAIMED.labels(backend=self.backend.name).inc(
            len(records) - len(kept)
        )
        self.backend.compactions += 1
        return CompactionStats(
            records_before=len(records),
            records_after=len(kept),
            bytes_before=bytes_before,
            bytes_after=self.path.stat().st_size,
        )

    def close(self) -> None:
        if not self._sink.closed:
            self._sink.close()

    def record_count(self) -> int:
        return len(self.read()[0])

    def size_bytes(self) -> int:
        self._sink.flush()
        return self.path.stat().st_size if self.path.exists() else 0


class FileBackend(StorageBackend):
    """The PR-2 journal-directory layout behind the storage protocol.

    One flat ``<dir>/<quoted run id>.journal`` JSON-lines file per run —
    byte-compatible with what ``repro serve --journal-dir`` always
    wrote, so ``repro recover --journal-dir`` and every existing journal
    keep working unchanged.
    """

    name = "file"
    durable = True

    def __init__(
        self,
        root: Union[str, Path],
        durability: Union[str, DurabilityPolicy, None] = None,
    ) -> None:
        self.root = Path(root)
        self.durability = DurabilityPolicy.parse(durability)
        self.compactions = 0

    def exists(self, run_id: str) -> bool:
        return journal_path(self.root, run_id).exists()

    def store(self, run_id: str) -> _FileStore:
        return _FileStore(self, run_id)

    def run_ids(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            run_id_from_path(path)
            for path in self.root.glob("*" + JOURNAL_SUFFIX)
        )

    def delete(self, run_id: str) -> None:
        path = journal_path(self.root, run_id)
        if path.exists():
            path.unlink()

    def stats(self) -> Dict[str, Any]:
        run_ids = self.run_ids()
        return {
            **super().stats(),
            "root": str(self.root),
            "runs": len(run_ids),
            "compactions": self.compactions,
            "durability": self.durability.mode,
        }


# ----------------------------------------------------------------------
# Backend spec parsing (the CLI's --storage flag)
# ----------------------------------------------------------------------


def open_backend(
    spec: Union[str, StorageBackend],
    durability: Union[str, DurabilityPolicy, None] = None,
    fault_injector: Optional[Any] = None,
) -> StorageBackend:
    """``"memory"`` / ``"file:DIR"`` / ``"segment:DIR"`` / ``"sqlite:PATH"``
    → a backend.

    *durability* applies to the disk backends; *fault_injector* (a
    :class:`~repro.runtime.faults.DiskFaultInjector`) is threaded into
    the backends that support injected disk faults.
    """
    if isinstance(spec, StorageBackend):
        return spec
    kind, _, arg = spec.partition(":")
    if kind == "memory":
        if arg:
            raise StorageError("the memory backend takes no argument")
        return MemoryBackend()
    if not arg:
        raise StorageError(
            f"storage spec {spec!r} needs an argument, e.g. {kind}:<path>"
        )
    if kind in ("file", "journal"):
        return FileBackend(arg, durability=durability)
    if kind == "segment":
        from .segment import SegmentBackend

        return SegmentBackend(arg, durability=durability, fault_injector=fault_injector)
    if kind == "sqlite":
        from .sqlitestore import SqliteBackend

        return SqliteBackend(arg, durability=durability, fault_injector=fault_injector)
    raise StorageError(
        f"unknown storage backend {kind!r} "
        "(expected memory, file:<dir>, segment:<dir> or sqlite:<path>)"
    )
