"""Shapley-value attribution of provenance events to visible facts.

Which of a run's events actually *mattered* for a fact the observer can
see?  Provenance (:mod:`repro.obs.provenance`) answers "which events
touched it"; this module ranks them by their Shapley value — each
event's average marginal contribution to the target over every order in
which the run's events could be assembled, the classic fair-attribution
semantics (here following "Explainable Verification of Hierarchical
Workflows Mined from Event Logs with Shapley Values", PAPERS.md).

The characteristic function replays an event *subset* leniently: events
are applied in run order, and an event whose body or updates no longer
hold without its missing predecessors is skipped rather than failing
the coalition.  Two game shapes are provided:

* a **fact game** — 1.0 when the target ``(relation, key)`` is visible
  in the peer's view after the subset replay (or, with no key, the
  number of visible keys of the relation);
* a **view game** — how many of the full run's final visible tuples the
  subset reproduces.

Exact computation (:func:`shapley_values` with ``method="exact"``)
enumerates all ``2^n`` coalitions with :class:`fractions.Fraction`
weights, so the efficiency axiom ``sum(values) == v(N) - v(∅)`` holds
*exactly*.  For larger runs, seeded permutation sampling
(``method="sampled"``) averages marginal contributions along random
orders; each permutation's marginals telescope to ``v(N) - v(∅)``, so
efficiency again holds up to float rounding, and the standard error
shrinks as ``O(1/sqrt(samples))``.  ``method="auto"`` picks exact up to
``exact_limit`` players and sampling beyond.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from math import factorial
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..workflow.engine import apply_event
from ..workflow.errors import EventError
from ..workflow.instance import Instance
from ..workflow.runs import Run

__all__ = [
    "EXACT_HARD_LIMIT",
    "RankedEvent",
    "ShapleyReport",
    "fact_game",
    "shapley_rank",
    "shapley_values",
    "view_game",
]

#: ``method="exact"`` refuses above this many players (2^n coalitions).
EXACT_HARD_LIMIT = 16


def shapley_values(
    players: Sequence[int],
    value: Callable[[FrozenSet[int]], float],
    method: str = "auto",
    samples: int = 128,
    seed: int = 0,
    exact_limit: int = 12,
) -> Tuple[str, Dict[int, float]]:
    """Shapley values of *players* under characteristic function *value*.

    Returns ``(method_used, {player: value})``.  *value* must be
    memo-friendly (it is called on frozensets, many times); this function
    memoizes it internally so callers can pass a plain closure.
    """
    players = list(players)
    n = len(players)
    if method not in ("auto", "exact", "sampled"):
        raise ValueError(f"unknown Shapley method {method!r}")
    if method == "auto":
        method = "exact" if n <= exact_limit else "sampled"
    if not players:
        return method, {}

    cache: Dict[FrozenSet[int], float] = {}

    def v(coalition: FrozenSet[int]) -> float:
        cached = cache.get(coalition)
        if cached is None:
            cached = float(value(coalition))
            cache[coalition] = cached
        return cached

    if method == "exact":
        if n > EXACT_HARD_LIMIT:
            raise ValueError(
                f"exact Shapley over {n} players needs 2^{n} coalitions; "
                f"use method='sampled' (hard limit {EXACT_HARD_LIMIT})"
            )
        totals: Dict[int, Fraction] = {p: Fraction(0) for p in players}
        n_fact = factorial(n)
        index = {p: i for i, p in enumerate(players)}
        for mask in range(1 << n):
            coalition = frozenset(p for p in players if mask >> index[p] & 1)
            size = len(coalition)
            if size == n:  # no player left to join
                continue
            base = v(coalition)
            weight = Fraction(factorial(size) * factorial(n - size - 1), n_fact)
            for p in players:
                if p in coalition:
                    continue
                marginal = Fraction(v(coalition | {p})) - Fraction(base)
                totals[p] += weight * marginal
        return "exact", {p: float(totals[p]) for p in players}

    rng = random.Random(seed)
    sums: Dict[int, float] = {p: 0.0 for p in players}
    empty = v(frozenset())
    for _ in range(samples):
        order = players[:]
        rng.shuffle(order)
        coalition: set = set()
        previous = empty
        for p in order:
            coalition.add(p)
            current = v(frozenset(coalition))
            sums[p] += current - previous
            previous = current
    return "sampled", {p: sums[p] / samples for p in players}


# ----------------------------------------------------------------------
# Characteristic functions over lenient replay
# ----------------------------------------------------------------------


def _lenient_replay(run: Run, coalition: FrozenSet[int]) -> Instance:
    """Apply the coalition's events in run order, skipping inapplicable ones."""
    schema = run.program.schema
    instance = run.initial
    if instance is None:
        instance = Instance.empty(schema.schema)
    for index in sorted(coalition):
        try:
            instance = apply_event(
                schema, instance, run.events[index], forbidden_fresh=None
            )
        except EventError:
            continue
    return instance


def _visible_keys(run: Run, instance: Instance, peer: str, relation: str):
    view = run.program.schema.view_instance(instance, peer)
    name = f"{relation}@{peer}"
    if name not in view.schema.relation_names:
        raise KeyError(f"peer {peer!r} has no view of relation {relation!r}")
    return view.keys(name)


def _key_matches(candidate: object, key: object) -> bool:
    return candidate == key or repr(candidate) == str(key)


def fact_game(
    run: Run, peer: str, relation: str, key: Optional[object] = None
) -> Callable[[FrozenSet[int]], float]:
    """1.0 iff the target fact is visible (no key: count of visible keys)."""
    # Fail fast on an unknown relation before any coalition is replayed.
    _visible_keys(run, _lenient_replay(run, frozenset()), peer, relation)

    def value(coalition: FrozenSet[int]) -> float:
        keys = _visible_keys(run, _lenient_replay(run, coalition), peer, relation)
        if key is None:
            return float(len(keys))
        return 1.0 if any(_key_matches(k, key) for k in keys) else 0.0

    return value


def view_game(run: Run, peer: str) -> Callable[[FrozenSet[int]], float]:
    """How many of the final visible tuples the coalition reproduces."""
    schema = run.program.schema

    def rendered(instance: Instance) -> set:
        view = schema.view_instance(instance, peer)
        return {
            (name, repr(t))
            for name in view.schema.relation_names
            for t in view.relation(name)
        }

    target = rendered(run.final_instance)

    def value(coalition: FrozenSet[int]) -> float:
        return float(len(rendered(_lenient_replay(run, coalition)) & target))

    return value


# ----------------------------------------------------------------------
# Ranked reports
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RankedEvent:
    """One event's attribution toward the target."""

    position: int
    rule: str
    peer: str
    value: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "position": self.position,
            "rule": self.rule,
            "peer": self.peer,
            "value": self.value,
        }


@dataclass(frozen=True)
class ShapleyReport:
    """Shapley attributions of a run's events toward one target."""

    peer: str
    target: str
    method: str
    samples: int
    seed: int
    baseline: float  # v(empty coalition)
    grand: float  # v(all events)
    attributions: Tuple[RankedEvent, ...]  # in event order

    def total(self) -> float:
        """Sum of attributions; equals ``grand - baseline`` (efficiency)."""
        return sum(entry.value for entry in self.attributions)

    def ranking(self) -> Tuple[RankedEvent, ...]:
        """Most important first; ties broken by run position."""
        return tuple(
            sorted(self.attributions, key=lambda e: (-e.value, e.position))
        )

    def top(self, count: int) -> Tuple[int, ...]:
        """The positions of the *count* highest-value events."""
        return tuple(entry.position for entry in self.ranking()[:count])

    def to_dict(self) -> Dict[str, object]:
        return {
            "peer": self.peer,
            "target": self.target,
            "method": self.method,
            "samples": self.samples,
            "seed": self.seed,
            "baseline": self.baseline,
            "grand": self.grand,
            "total": self.total(),
            "ranking": [entry.to_dict() for entry in self.ranking()],
        }


def shapley_rank(
    run: Run,
    peer: str,
    relation: Optional[str] = None,
    key: Optional[object] = None,
    method: str = "auto",
    samples: int = 128,
    seed: int = 0,
    exact_limit: int = 12,
) -> ShapleyReport:
    """Rank *run*'s events by Shapley contribution to a visible target.

    With *relation* (and optionally *key*) the target is that fact in
    *peer*'s view (the fact game); without, the target is the peer's
    whole final view (the view game).  Deterministic given ``seed``.
    """
    if key is not None and relation is None:
        raise ValueError("a target key needs a target relation")
    if peer not in run.program.schema.peers:
        raise KeyError(f"unknown peer {peer!r}")
    if relation is not None:
        value = fact_game(run, peer, relation, key)
        target = relation if key is None else f"{relation}[{key}]"
    else:
        value = view_game(run, peer)
        target = "view"
    players = list(range(len(run.events)))
    method_used, values = shapley_values(
        players,
        value,
        method=method,
        samples=samples,
        seed=seed,
        exact_limit=exact_limit,
    )
    attributions = tuple(
        RankedEvent(
            position=index,
            rule=run.events[index].rule.name,
            peer=run.events[index].rule.peer,
            value=values[index],
        )
        for index in players
    )
    return ShapleyReport(
        peer=peer,
        target=f"{target}@{peer}",
        method=method_used,
        samples=samples if method_used == "sampled" else 0,
        seed=seed,
        baseline=value(frozenset()),
        grand=value(frozenset(players)),
        attributions=attributions,
    )
