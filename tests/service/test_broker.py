"""Broker semantics: per-run FIFO, backpressure, budgets, quarantine."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan
from repro.runtime.supervisor import RetryPolicy
from repro.service.broker import (
    APPLIED,
    QUARANTINED,
    REJECTED_BACKPRESSURE,
    REJECTED_BUDGET,
    EventBroker,
)
from repro.service.errors import UnknownRunError
from repro.service.registry import ShardedRunRegistry
from repro.workflow import Event, FreshValue, Var
from repro.workloads.generators import churn_program


def make_event(program, index):
    """An always-applicable creation event with its own fresh value."""
    return Event(program.rule("make"), {Var("x"): FreshValue(1000 + index)})


def kill_event(program, index):
    """A deletion that is invalid unless the object exists (poison here)."""
    return Event(program.rule("kill"), {Var("x"): FreshValue(1000 + index)})


class TestOrdering:
    def test_concurrent_submitters_preserve_per_run_fifo(self):
        """Interleaved submitters see one total order: seqs 0..N-1, and
        each submitter's own awaited submissions keep relative order."""
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(registry)
            await registry.open("r")
            per_task_seqs = []

            async def submitter(task_index, count):
                seqs = []
                for j in range(count):
                    outcome = await broker.submit(
                        "r", make_event(program, task_index * 100 + j)
                    )
                    assert outcome.status == APPLIED
                    seqs.append(outcome.seq)
                per_task_seqs.append(seqs)

            await asyncio.gather(*(submitter(i, 10) for i in range(4)))
            await broker.shutdown()
            return per_task_seqs

        per_task_seqs = asyncio.run(scenario())
        all_seqs = [seq for seqs in per_task_seqs for seq in seqs]
        assert sorted(all_seqs) == list(range(40))
        for seqs in per_task_seqs:
            assert seqs == sorted(seqs), "a submitter's own seqs went backwards"

    def test_distinct_runs_progress_independently(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(registry)
            for run_id in ("a", "b"):
                await registry.open(run_id)
            outcomes = await asyncio.gather(
                *(
                    broker.submit(run_id, make_event(program, base + i))
                    for base, run_id in ((0, "a"), (50, "b"))
                    for i in range(5)
                )
            )
            await broker.shutdown()
            return outcomes

        outcomes = asyncio.run(scenario())
        by_run = {}
        for outcome in outcomes:
            assert outcome.status == APPLIED
            by_run.setdefault(outcome.run_id, []).append(outcome.seq)
        assert sorted(by_run["a"]) == list(range(5))
        assert sorted(by_run["b"]) == list(range(5))


class TestAdmissionControl:
    def test_backpressure_rejects_when_mailbox_full(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            # A poisoned head-of-line event keeps the worker busy in
            # backoff while we fill the (tiny) mailbox behind it.
            broker = EventBroker(
                registry,
                queue_capacity=2,
                retry=RetryPolicy(max_attempts=3, initial_backoff=0.2),
            )
            await registry.open("r")
            poisoned = asyncio.create_task(
                broker.submit("r", kill_event(program, 0))
            )
            await asyncio.sleep(0.05)  # worker is now retrying the poison
            queued = [
                asyncio.create_task(broker.submit("r", make_event(program, i)))
                for i in (1, 2)
            ]
            await asyncio.sleep(0.05)  # both sit in the mailbox
            rejected = await broker.submit("r", make_event(program, 3))
            results = [await poisoned] + [await task for task in queued]
            await broker.shutdown()
            return rejected, results

        rejected, results = asyncio.run(scenario())
        assert rejected.status == REJECTED_BACKPRESSURE
        assert "mailbox full" in rejected.reason
        assert results[0].status == QUARANTINED
        assert [r.status for r in results[1:]] == [APPLIED, APPLIED]

    def test_budget_exhaustion_rejects_new_submissions(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(registry, budget=Budget(max_steps=3))
            await registry.open("r")
            outcomes = [
                await broker.submit("r", make_event(program, i)) for i in range(5)
            ]
            await broker.shutdown()
            return outcomes

        outcomes = asyncio.run(scenario())
        # The budget's violation test is strict (steps > max), so the
        # step cap of 3 admits four events and rejects the fifth.
        assert [o.status for o in outcomes[:4]] == [APPLIED] * 4
        assert outcomes[4].status == REJECTED_BUDGET
        assert "budget" in outcomes[4].reason

    def test_unknown_run_raises(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(registry)
            with pytest.raises(UnknownRunError):
                await broker.submit("ghost", make_event(program, 0))
            await broker.shutdown()

        asyncio.run(scenario())


class TestResilience:
    def test_poison_event_quarantined_after_bounded_retries(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(
                registry, retry=RetryPolicy(max_attempts=2, initial_backoff=0.001)
            )
            await registry.open("r")
            outcome = await broker.submit("r", kill_event(program, 0))
            hosted = await registry.get("r")
            await broker.shutdown()
            return outcome, hosted.quarantined, hosted.applied

        outcome, quarantined, applied = asyncio.run(scenario())
        assert outcome.status == QUARANTINED
        assert outcome.attempts == 2
        assert quarantined == 1 and applied == 0

    def test_release_resolves_in_flight_and_queued_submitters(self):
        """Closing a run must never leave a submitter awaiting forever."""
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(
                registry,
                retry=RetryPolicy(max_attempts=5, initial_backoff=0.5),
            )
            await registry.open("r")
            # Head-of-line poison sits in retry backoff (in flight, not
            # queued); a second event waits behind it in the mailbox.
            in_flight = asyncio.create_task(
                broker.submit("r", kill_event(program, 0))
            )
            await asyncio.sleep(0.05)
            queued = asyncio.create_task(
                broker.submit("r", make_event(program, 1))
            )
            await asyncio.sleep(0.05)
            await broker.release("r")
            with pytest.raises(UnknownRunError):
                await in_flight
            with pytest.raises(UnknownRunError):
                await queued

        asyncio.run(scenario())

    def test_quiesce_waits_for_in_flight_events(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            broker = EventBroker(
                registry, retry=RetryPolicy(max_attempts=2, initial_backoff=0.05)
            )
            await registry.open("r")
            pending = asyncio.create_task(
                broker.submit("r", kill_event(program, 0))
            )
            await asyncio.sleep(0.01)  # dequeued, now retrying in flight
            await broker.quiesce("r")
            # If quiesce ignored the in-flight event it would return
            # ~90ms before the retry quarantines; the tight timeout
            # would then trip.
            outcome = await asyncio.wait_for(pending, timeout=0.01)
            await broker.shutdown()
            return outcome

        outcome = asyncio.run(scenario())
        assert outcome.status == QUARANTINED

    def test_injected_crash_recovers_from_journal_and_retries(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            broker = EventBroker(
                registry, fault_plan=FaultPlan(crash_at_event=2)
            )
            await registry.open("r")
            outcomes = [
                await broker.submit("r", make_event(program, i)) for i in range(4)
            ]
            hosted = await registry.get("r")
            await broker.shutdown()
            return outcomes, hosted

        outcomes, hosted = asyncio.run(scenario())
        assert [o.status for o in outcomes] == [APPLIED] * 4
        assert [o.seq for o in outcomes] == [0, 1, 2, 3]
        assert outcomes[2].recovered, "the crashed event must report recovery"
        assert hosted.recoveries == 1
        assert hosted.applied == 4
        assert len(hosted.instance.relation("Obj")) == 4
