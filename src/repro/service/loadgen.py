"""Load generator and verification client for the workflow service.

Drives synthetic traffic from :mod:`repro.workloads.generators` against
a live server: one connection per concurrent run, events pre-generated
client-side with :class:`~repro.workflow.enumerate.RunGenerator` and
submitted in order.  Beyond throughput/latency numbers the harness is a
*checker* — it independently replays the events the server reported as
applied and verifies:

* **ordering** — the server's ``seq`` for a run's applied events is
  exactly 0, 1, 2, … in submission order (per-run FIFO survived
  concurrency, backpressure, retries and crash recovery);
* **consistency** — every peer's served view instance equals the view
  of the client-side replay, tuple for tuple (the materialized caches
  never drift from ``I@p``, even across injected faults).

Any mismatch counts as a violation in the :class:`LoadReport`; the CI
smoke job asserts both counters are zero under fault injection.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from ..workflow.enumerate import RunGenerator
from ..workflow.events import Event
from ..workflow.program import WorkflowProgram
from ..workflow.runs import execute
from ..workflow.serialization import event_to_dict, instance_to_dict
from .errors import ERROR_CODES, ServiceError
from .protocol import PROTOCOL_VERSION, decode_line, encode_message

__all__ = [
    "ClientStats",
    "LoadReport",
    "RunOutcome",
    "ServiceClient",
    "run_loadgen",
]


class ServiceClient:
    """A minimal JSON-lines client for one connection to the service."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, **message: Any) -> Dict[str, Any]:
        """Send one request and await its response line.

        The client is also a protocol checker: a failure response whose
        ``error`` is not in the shared :data:`ERROR_CODES` registry, or
        a response claiming a newer protocol than this client speaks,
        is itself a violation and raises.
        """
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        response = decode_line(line)
        claimed = response.get("protocol")
        if isinstance(claimed, int) and claimed > PROTOCOL_VERSION:
            raise ServiceError(
                f"server speaks protocol {claimed}, client only {PROTOCOL_VERSION}"
            )
        if not response.get("ok") and response.get("error") not in ERROR_CODES:
            raise ServiceError(
                f"failure response carries unregistered error code "
                f"{response.get('error')!r} (known: {', '.join(sorted(ERROR_CODES))})"
            )
        return response

    async def expect_ok(self, **message: Any) -> Dict[str, Any]:
        response = await self.request(**message)
        if not response.get("ok"):
            raise ServiceError(
                f"request {message.get('op')!r} failed: "
                f"{response.get('error')}: {response.get('message')}"
            )
        return response

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - teardown best effort
            pass


def _canonical_view(data: Dict[str, Any]) -> Dict[str, frozenset]:
    """An order-insensitive form of an instance_to_dict payload."""
    return {
        relation: frozenset(
            frozenset((attr, repr(value)) for attr, value in row.items())
            for row in rows
        )
        for relation, rows in data.items()
        if rows
    }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


@dataclass
class RunOutcome:
    """What happened to one driven run."""

    run_id: str
    submitted: int = 0
    applied: int = 0
    quarantined: int = 0
    rejected: int = 0
    recoveries: int = 0
    deduped: int = 0
    ordering_violations: int = 0
    consistency_violations: int = 0
    latencies: List[float] = field(default_factory=list)
    #: The events the server acknowledged as applied, in ack order —
    #: the client-side ground truth the cluster post-mortem audit
    #: compares every shard store against.
    applied_events: List[Event] = field(default_factory=list)


@dataclass
class ClientStats:
    """Per-connection throughput when driving with ``clients=N``."""

    client: int
    runs: int
    applied: int
    wall_seconds: float

    @property
    def events_per_second(self) -> float:
        return (self.applied / self.wall_seconds) if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "runs": self.runs,
            "applied": self.applied,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_per_second": round(self.events_per_second, 1),
        }


@dataclass
class LoadReport:
    """Aggregate results of one load-generation session."""

    runs: int
    wall_seconds: float
    submitted: int
    applied: int
    quarantined: int
    rejected: int
    recoveries: int
    ordering_violations: int
    consistency_violations: int
    events_per_second: float
    p50_ms: float
    p99_ms: float
    verified_views: int
    deduped: int = 0
    #: How many client connections drove the traffic (1 = the legacy
    #: connection-per-run mode) and how many events each submit request
    #: carried (1 = plain ``submit``, >1 = ``submit_batch`` chunks).
    clients: int = 1
    batch_size: int = 1
    client_stats: List[ClientStats] = field(default_factory=list)
    #: Per-run detail (not serialized); the cluster harness reads the
    #: acked event lists off these for its storage audit.
    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no ordering or consistency violation was observed."""
        return self.ordering_violations == 0 and self.consistency_violations == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "wall_seconds": round(self.wall_seconds, 4),
            "submitted": self.submitted,
            "applied": self.applied,
            "quarantined": self.quarantined,
            "rejected": self.rejected,
            "recoveries": self.recoveries,
            "deduped": self.deduped,
            "ordering_violations": self.ordering_violations,
            "consistency_violations": self.consistency_violations,
            "events_per_second": round(self.events_per_second, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "verified_views": self.verified_views,
            "clients": self.clients,
            "batch_size": self.batch_size,
            "per_client": [stats.to_dict() for stats in self.client_stats],
            "clean": self.clean,
        }


async def _expect_ok_retrying(
    client: ServiceClient,
    retry_unavailable: bool,
    retry_seconds: float = 15.0,
    **message: Any,
) -> Dict[str, Any]:
    """``expect_ok``, but ``unavailable`` is retried when safe.

    The cluster router answers ``unavailable`` when the owning shard is
    down longer than its own retry budget; in idempotent mode every
    request here is safe to resend (reads, opens, and ``seq``-keyed
    submits), so the client keeps trying until the failover lands.
    """
    deadline = time.perf_counter() + retry_seconds
    backoff = 0.05
    while True:
        response = await client.request(**message)
        if response.get("ok"):
            return response
        if (
            retry_unavailable
            and response.get("error") == "unavailable"
            and time.perf_counter() < deadline
        ):
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, 0.5)
            continue
        raise ServiceError(
            f"request {message.get('op')!r} failed: "
            f"{response.get('error')}: {response.get('message')}"
        )


async def _drive_run(
    program: WorkflowProgram,
    host: str,
    port: int,
    run_id: str,
    events: Sequence[Event],
    verify: bool,
    view_every: int,
    close_run: bool,
    idempotent: bool = False,
    progress: Optional[Callable[[], None]] = None,
    batch_size: int = 1,
    client: Optional[ServiceClient] = None,
) -> RunOutcome:
    outcome = RunOutcome(run_id)
    owned = client is None
    if client is None:
        client = await ServiceClient.connect(host, port)
    expected_seq = 0

    def _account(event: Event, result: Dict[str, Any]) -> str:
        """Fold one per-event outcome into the run tally; returns status."""
        nonlocal expected_seq
        outcome.submitted += 1
        if result.get("recovered"):
            outcome.recoveries += 1
        if result.get("deduped"):
            outcome.deduped += 1
        status = result.get("status")
        if status == "applied":
            if result.get("seq") != expected_seq:
                outcome.ordering_violations += 1
            expected_seq += 1
            outcome.applied += 1
            outcome.applied_events.append(event)
            if progress is not None:
                progress()
        elif status == "quarantined":
            outcome.quarantined += 1
        else:
            outcome.rejected += 1
        return status or "rejected"

    async def _submit_one(event: Event) -> str:
        submit: Dict[str, Any] = {
            "op": "submit",
            "run": run_id,
            "event": event_to_dict(event),
        }
        if idempotent:
            # The seq idempotency key makes router retries (and our
            # own unavailable retries) exactly-once across failover.
            submit["seq"] = expected_seq
        start = time.perf_counter()
        response = await _expect_ok_retrying(client, idempotent, **submit)
        outcome.latencies.append(time.perf_counter() - start)
        return _account(event, response)

    async def _submit_chunk(chunk: Sequence[Event]) -> None:
        entries: List[Dict[str, Any]] = []
        for offset, event in enumerate(chunk):
            entry: Dict[str, Any] = {"event": event_to_dict(event)}
            if idempotent:
                entry["seq"] = expected_seq + offset
            entries.append(entry)
        start = time.perf_counter()
        response = await _expect_ok_retrying(
            client, idempotent, op="submit_batch", run=run_id, events=entries
        )
        outcome.latencies.append(time.perf_counter() - start)
        results = response.get("results", [])
        retry: List[Event] = []
        for event, result in zip(chunk, results):
            # A non-applied entry shifts every later precomputed seq
            # key by one, so later entries of the chunk can bounce as
            # gaps.  With idempotency keys it is safe to resubmit a
            # rejected entry one at a time (an entry that actually
            # landed is deduped, not double-applied), which restores
            # exactly the single-submit per-event semantics; the
            # resubmission supplies the authoritative tally.
            if idempotent and result.get("status") not in (
                "applied",
                "quarantined",
            ):
                retry.append(event)
                continue
            _account(event, result)
        for event in retry:
            await _submit_one(event)

    try:
        await _expect_ok_retrying(client, idempotent, op="open", run=run_id)
        position = 0
        step = max(1, batch_size)
        while position < len(events):
            chunk = events[position : position + step]
            if len(chunk) == 1:
                await _submit_one(chunk[0])
            else:
                await _submit_chunk(chunk)
            position += len(chunk)
            if view_every and (position % view_every) < len(chunk):
                await _expect_ok_retrying(
                    client,
                    idempotent,
                    op="view",
                    run=run_id,
                    peer=program.schema.peers[-1],
                )
        if verify:
            replayed = execute(
                program, outcome.applied_events, check_freshness=False
            )
            for peer in program.schema.peers:
                response = await _expect_ok_retrying(
                    client, idempotent, op="view", run=run_id, peer=peer
                )
                expected = instance_to_dict(
                    program.schema.view_instance(replayed.final_instance, peer)
                )
                if _canonical_view(response.get("instance", {})) != _canonical_view(
                    expected
                ):
                    outcome.consistency_violations += 1
        if close_run:
            await _expect_ok_retrying(client, idempotent, op="close", run=run_id)
    finally:
        if owned:
            await client.close()
    return outcome


async def run_loadgen(
    program: WorkflowProgram,
    host: str,
    port: int,
    runs: int = 8,
    events_per_run: int = 20,
    seed: int = 0,
    verify: bool = True,
    view_every: int = 0,
    close_runs: bool = True,
    run_prefix: str = "load",
    max_concurrency: Optional[int] = None,
    shutdown: bool = False,
    idempotent: bool = False,
    progress: Optional[Callable[[], None]] = None,
    clients: int = 1,
    batch_size: int = 1,
) -> LoadReport:
    """Drive *runs* concurrent runs against a live server and report.

    Each run gets its own connection and its own pre-generated event
    sequence (seeded per run, so distinct runs exercise distinct
    trajectories).  ``view_every`` adds a read-your-writes view fetch
    every N events; ``shutdown`` sends a shutdown request at the end.

    With ``clients=N`` (N > 1) the harness instead opens exactly N
    connections and partitions the runs round-robin across them; each
    client drives its runs sequentially over its one connection, and
    the report carries per-client throughput in ``client_stats``.
    With ``batch_size=B`` (B > 1) events are submitted in chunks of B
    through the ``submit_batch`` op instead of one ``submit`` per
    event; per-event acks and checks are unchanged.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    generated: List[PyTuple[str, List[Event]]] = []
    for index in range(runs):
        generator = RunGenerator(program, seed=seed * 10007 + index)
        generated.append(
            (
                f"{run_prefix}-{seed}-{index}",
                list(generator.random_run(events_per_run).events),
            )
        )

    client_stats: List[ClientStats] = []
    started = time.perf_counter()
    if clients == 1:
        semaphore = asyncio.Semaphore(max_concurrency or runs)

        async def bounded(run_id: str, events: List[Event]) -> RunOutcome:
            async with semaphore:
                return await _drive_run(
                    program,
                    host,
                    port,
                    run_id,
                    events,
                    verify,
                    view_every,
                    close_runs,
                    idempotent=idempotent,
                    progress=progress,
                    batch_size=batch_size,
                )

        outcomes = list(
            await asyncio.gather(
                *(bounded(run_id, events) for run_id, events in generated)
            )
        )
    else:
        buckets: List[List[PyTuple[str, List[Event]]]] = [
            generated[index::clients] for index in range(clients)
        ]

        async def drive_client(
            index: int, bucket: List[PyTuple[str, List[Event]]]
        ) -> PyTuple[ClientStats, List[RunOutcome]]:
            connection = await ServiceClient.connect(host, port)
            begun = time.perf_counter()
            driven: List[RunOutcome] = []
            try:
                for run_id, events in bucket:
                    driven.append(
                        await _drive_run(
                            program,
                            host,
                            port,
                            run_id,
                            events,
                            verify,
                            view_every,
                            close_runs,
                            idempotent=idempotent,
                            progress=progress,
                            batch_size=batch_size,
                            client=connection,
                        )
                    )
            finally:
                await connection.close()
            elapsed = time.perf_counter() - begun
            stats = ClientStats(
                client=index,
                runs=len(bucket),
                applied=sum(o.applied for o in driven),
                wall_seconds=elapsed,
            )
            return stats, driven

        driven_pairs = await asyncio.gather(
            *(
                drive_client(index, bucket)
                for index, bucket in enumerate(buckets)
                if bucket
            )
        )
        outcomes = [outcome for _, driven in driven_pairs for outcome in driven]
        client_stats = [stats for stats, _ in driven_pairs]
    wall = time.perf_counter() - started
    if shutdown:
        client = await ServiceClient.connect(host, port)
        try:
            await client.expect_ok(op="shutdown")
        finally:
            await client.close()
    latencies = sorted(
        latency for outcome in outcomes for latency in outcome.latencies
    )
    applied = sum(o.applied for o in outcomes)
    return LoadReport(
        runs=runs,
        wall_seconds=wall,
        submitted=sum(o.submitted for o in outcomes),
        applied=applied,
        quarantined=sum(o.quarantined for o in outcomes),
        rejected=sum(o.rejected for o in outcomes),
        recoveries=sum(o.recoveries for o in outcomes),
        ordering_violations=sum(o.ordering_violations for o in outcomes),
        consistency_violations=sum(o.consistency_violations for o in outcomes),
        events_per_second=(applied / wall) if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        verified_views=(len(program.schema.peers) * runs) if verify else 0,
        deduped=sum(o.deduped for o in outcomes),
        clients=clients,
        batch_size=batch_size,
        client_stats=client_stats,
        outcomes=list(outcomes),
    )
