"""The per-run provenance log and its queries."""

from __future__ import annotations

from types import SimpleNamespace

from repro.obs.provenance import ProvenanceLog, ProvenanceRecord


def delta(changes):
    """A ViewDelta-shaped stand-in: relation -> key -> (before, after)."""
    return SimpleNamespace(changes=changes)


def sample_log():
    log = ProvenanceLog("run-1")
    log.record(
        0, "open", "sue", delta({"Req": {("r1",): (None, "row")}}), {"sue", "bob"}
    )
    log.record(
        1,
        "review",
        "bob",
        delta({"Req": {("r1",): ("row", "row'")}, "Log": {("l1",): (None, "row")}}),
        {"bob"},
    )
    log.record(
        2, "purge", "sue", delta({"Req": {("r1",): ("row'", None)}}), {"sue"}
    )
    return log


class TestRecording:
    def test_actions_read_off_the_delta(self):
        log = sample_log()
        assert log.records()[0].touched == (("Req", ("r1",), "insert"),)
        assert ("Req", ("r1",), "update") in log.records()[1].touched
        assert log.records()[2].touched == (("Req", ("r1",), "delete"),)

    def test_visible_to_is_sorted_and_deduplicated(self):
        log = ProvenanceLog()
        record = log.record(0, "r", "p", delta({}), ["zoe", "amy", "zoe"])
        assert record.visible_to == ("amy", "zoe")

    def test_length_and_get(self):
        log = sample_log()
        assert len(log) == 3
        assert log.get(1).rule == "review"
        assert log.get(99) is None


class TestQueries:
    def test_events_touching_relation(self):
        log = sample_log()
        assert log.events_touching("Req") == (0, 1, 2)
        assert log.events_touching("Log") == (1,)
        assert log.events_touching("Nope") == ()

    def test_events_touching_key(self):
        log = sample_log()
        assert log.events_touching("Req", ("r1",)) == (0, 1, 2)
        assert log.events_touching("Log", ("l1",)) == (1,)
        assert log.events_touching("Req", ("other",)) == ()

    def test_events_visible_to(self):
        log = sample_log()
        assert log.events_visible_to("sue") == (0, 2)
        assert log.events_visible_to("bob") == (0, 1)
        assert log.events_visible_to("eve") == ()

    def test_citations_skip_unknown_seqs(self):
        log = sample_log()
        citations = log.citations([2, 0, 99])
        assert [c["seq"] for c in citations] == [0, 2]
        assert citations[0]["rule"] == "open"

    def test_to_dicts_round_trips_json_safely(self):
        import json

        log = sample_log()
        payload = json.dumps(log.to_dicts())
        assert json.loads(payload)[1]["touched"][0]["action"] in (
            "insert",
            "update",
            "delete",
        )

    def test_record_carries_span_id(self):
        log = ProvenanceLog()
        record = log.record(0, "r", "p", delta({}), ["p"], span_id=42)
        assert record.span_id == 42
        assert log.to_dicts()[0]["span_id"] == 42
        bare = ProvenanceRecord(0, "r", "p", (), ("p",))
        assert "span_id" not in bare.to_dict()


class TestOfflineRebuild:
    def test_run_provenance_replays_a_run(self, approval_run):
        from repro.core.explain import run_provenance

        log = run_provenance(approval_run)
        assert len(log) == len(approval_run.events)
        for seq, (record, event) in enumerate(zip(log.records(), approval_run.events)):
            assert record.seq == seq
            assert record.rule == event.rule.name
            assert record.peer == event.peer
            assert event.peer in record.visible_to

    def test_offline_visibility_matches_run_views(self, approval_run):
        from repro.core.explain import run_provenance

        log = run_provenance(approval_run)
        for peer in approval_run.program.schema.peers:
            # Every event the peer observes as its own is visible to it.
            for index in approval_run.visible_indices(peer):
                assert index in log.events_visible_to(peer)
