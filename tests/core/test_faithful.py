"""Tests for faithfulness: Definitions 4.3-4.5, Lemma 4.6, Theorem 4.7."""

import pytest

from repro.core.faithful import (
    FaithfulnessAnalysis,
    is_faithful_scenario,
    minimal_faithful_scenario,
    relevant_attributes,
)
from repro.core.scenarios import is_scenario
from repro.core.subruns import EventSubsequence
from repro.workflow import Event, RunGenerator, execute
from repro.workflow.domain import FreshValue
from repro.workflow.queries import Var
from repro.workloads.generators import profile_program


class TestExample42:
    """Example 4.2: gh is applicant-faithful, eh is not."""

    def test_eh_not_faithful(self, approval_run):
        assert not is_faithful_scenario(approval_run, "applicant", [0, 3])

    def test_gh_faithful(self, approval_run):
        assert is_faithful_scenario(approval_run, "applicant", [2, 3])

    def test_gh_is_the_minimal_faithful_scenario(self, approval_run):
        scenario = minimal_faithful_scenario(approval_run, "applicant")
        assert scenario.indices == (2, 3)

    def test_faithful_scenario_is_scenario(self, approval_run):
        # Lemma 4.6: faithfulness implies scenario-hood.
        scenario = minimal_faithful_scenario(approval_run, "applicant")
        assert is_scenario(approval_run, "applicant", scenario.indices)
        subrun = scenario.subrun()
        assert subrun.view("applicant") == approval_run.view("applicant")

    def test_efgh_requires_boundary_closure(self, approval_run):
        # Including e (position 0) forces its lifecycle's right boundary
        # f (position 1): the set {e, g, h} is not boundary faithful.
        analysis = FaithfulnessAnalysis(approval_run, "applicant")
        assert not analysis.is_boundary_faithful(frozenset({0, 2, 3}))
        assert analysis.is_boundary_faithful(frozenset({0, 1, 2, 3}))

    def test_full_run_is_faithful(self, approval_run):
        assert is_faithful_scenario(approval_run, "applicant", range(4))

    def test_faithful_must_contain_visible(self, approval_run):
        # Position 3 is visible at applicant: omitting it breaks faithfulness.
        assert not is_faithful_scenario(approval_run, "applicant", [2])


class TestRequiredEvents:
    def test_boundary_requirements(self, approval_run):
        analysis = FaithfulnessAnalysis(approval_run, "applicant")
        # h (position 3) reads ok(0), whose lifecycle [2, ∞) starts at g.
        assert analysis.required_events(3) == {2}
        # f (position 1) deletes ok(0): it lies in lifecycle [0,1].
        assert analysis.required_events(1) == {0}
        # e (position 0) is a left boundary of a closed lifecycle [0,1]:
        # including it requires the right boundary f.
        assert analysis.required_events(0) == {1}

    def test_closure_is_fixpoint(self, approval_run):
        analysis = FaithfulnessAnalysis(approval_run, "applicant")
        closure = analysis.closure([3])
        assert analysis.step(closure) == closure
        assert closure == {2, 3}

    def test_closure_monotone(self, approval_run):
        analysis = FaithfulnessAnalysis(approval_run, "applicant")
        small = analysis.closure([3])
        large = analysis.closure([0, 3])
        assert small <= large


class TestModificationFaithfulness:
    """Attribute-level modification requirements on the profile workload."""

    @pytest.fixture
    def profile_run(self):
        program = profile_program()
        k = FreshValue(100)
        events = [
            Event(program.rule("create"), {Var("x"): k}),
            Event(program.rule("set_email"), {Var("x"): k}),
            Event(program.rule("set_phone"), {Var("x"): k}),
            Event(program.rule("notify"), {Var("x"): k}),
        ]
        return execute(program, events)

    def test_notify_requires_both_modifications(self, profile_run):
        # notify (position 3) is by 'emailer' and reads only the email,
        # but modification faithfulness for the observer also requires
        # set_phone, which fills an attribute in att(P, observer).
        analysis = FaithfulnessAnalysis(profile_run, "observer")
        assert analysis.required_events(3) == {0, 1, 2}

    def test_minimal_faithful_scenario_contains_all(self, profile_run):
        scenario = minimal_faithful_scenario(profile_run, "observer")
        assert scenario.indices == (0, 1, 2, 3)

    def test_dropping_phone_changes_observer_view(self, profile_run):
        # set_phone is visible at the observer (phone ∈ att(P@observer)),
        # so dropping it does not even produce a scenario.
        assert not is_scenario(profile_run, "observer", [0, 1, 3])
        assert profile_run.visible_at("observer", 2)

    def test_modification_faithful_predicate(self, profile_run):
        analysis = FaithfulnessAnalysis(profile_run, "observer")
        assert analysis.is_modification_faithful(frozenset({0, 1, 2, 3}))
        assert not analysis.is_modification_faithful(frozenset({0, 1, 3}))

    def test_relevant_attributes(self, profile_run):
        schema = profile_run.program.schema
        assert relevant_attributes(schema, "P", "observer") == {"K", "phone"}
        assert relevant_attributes(schema, "P", "emailer") == {"K", "email"}
        assert relevant_attributes(schema, "P", "nobody") == frozenset()


class TestExample41:
    """Example 4.1 (essence): faithfulness pins the actual derivation."""

    @pytest.fixture
    def derivation_run(self):
        from repro.workloads.paper_examples import derivation_choice_program

        program = derivation_choice_program()
        events = [Event(program.rule(name), {}) for name in ("v1", "c5a", "v2", "c5b")]
        return execute(program, events)

    def test_alternative_derivation_is_a_scenario(self, derivation_run):
        # v2 c5b reproduces p's observations although c5a actually
        # derived C5.
        assert is_scenario(derivation_run, "p", [2, 3])

    def test_alternative_derivation_not_faithful(self, derivation_run):
        assert not is_faithful_scenario(derivation_run, "p", [2, 3])

    def test_faithful_scenario_uses_actual_derivation(self, derivation_run):
        scenario = minimal_faithful_scenario(derivation_run, "p")
        assert scenario.indices == (0, 1)  # v1 then c5a

    def test_noop_rederivation_requires_left_boundary(self, derivation_run):
        analysis = FaithfulnessAnalysis(derivation_run, "p")
        # c5b (position 3) touches C5's lifecycle [1, ∞): it requires the
        # actual creator c5a, which in turn requires v1.
        assert analysis.closure([3]) == {0, 1, 2, 3}


class TestTheorem47:
    """The minimal faithful scenario: existence, uniqueness, minimality."""

    @pytest.mark.parametrize("seed", range(6))
    def test_minimal_faithful_scenario_properties(self, hiring, seed):
        run = RunGenerator(hiring, seed=seed).random_run(14)
        analysis = FaithfulnessAnalysis(run, "sue")
        scenario = minimal_faithful_scenario(run, "sue")
        indices = frozenset(scenario.indices)
        # Faithful, and a scenario (Lemma 4.6 / Theorem 4.7).
        assert analysis.is_faithful(indices)
        assert is_scenario(run, "sue", indices)
        # Contained in every faithful superset we can build.
        for extra in range(len(run)):
            candidate = analysis.closure(indices | {extra})
            assert indices <= candidate
            assert analysis.is_faithful(candidate | frozenset(run.visible_indices("sue")))

    @pytest.mark.parametrize("seed", range(6))
    def test_no_strictly_smaller_faithful_scenario(self, approval, seed):
        run = RunGenerator(approval, seed=seed).random_run(10)
        scenario = minimal_faithful_scenario(run, "applicant")
        indices = frozenset(scenario.indices)
        # Removing any single event breaks faithfulness (minimality).
        for index in indices:
            assert not is_faithful_scenario(run, "applicant", indices - {index})

    def test_empty_run(self, approval):
        run = execute(approval, [])
        scenario = minimal_faithful_scenario(run, "applicant")
        assert scenario.indices == ()
