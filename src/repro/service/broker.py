"""Async event broker: per-run FIFO mailboxes with admission control.

Submissions for one run are funneled through a bounded mailbox drained
by a single worker task, which gives the service the paper's run
semantics for free: events of a hosted run are applied in a total
order, one at a time, against its current instance.  Distinct runs
drain concurrently — the asyncio analogue of a shard-per-core event
loop.

Admission control happens *before* enqueueing, so an overloaded or
budget-exhausted service answers immediately instead of buffering
unboundedly:

* **backpressure** — a full mailbox rejects the event with
  ``rejected_backpressure`` (the client retries; nothing was applied);
* **budget** — an exhausted :class:`~repro.runtime.budget.Budget`
  (wall-clock or step cap over the whole service) rejects with
  ``rejected_budget``.

Application reuses the supervisor's resilience semantics
(:mod:`repro.runtime.supervisor`): transient faults are retried with
exponential backoff (async sleeps — the loop keeps serving other runs
while one backs off), deterministic rejections are quarantined with a
journaled diagnostic after bounded retries, and an injected
:class:`~repro.runtime.faults.CrashFault` kills the hosted run's
in-memory state, which is then recovered from its journal before the
event is retried — the full crash/recover/resume story, inline in the
serving path.
"""

from __future__ import annotations

import asyncio
import dataclasses
import weakref
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple as PyTuple

from ..obs.metrics import METRICS
from ..runtime.budget import Budget
from ..runtime.faults import (
    CrashFault,
    DiskFault,
    FaultInjector,
    FaultPlan,
    TransientFault,
)
from ..runtime.supervisor import POISON_ERRORS, RetryPolicy
from ..workflow.events import Event
from .errors import ServiceError, UnknownRunError
from .registry import ShardedRunRegistry

__all__ = ["EventBroker", "SubmitOutcome"]

#: Submission statuses reported to clients.
APPLIED = "applied"
QUARANTINED = "quarantined"
REJECTED_BACKPRESSURE = "rejected_backpressure"
REJECTED_BUDGET = "rejected_budget"

_SUBMISSIONS = METRICS.counter(
    "repro_broker_submissions_total",
    "Event submissions resolved by the broker, by status",
    labelnames=("status",),
)
_BROKER_RETRIES = METRICS.counter(
    "repro_broker_retries_total",
    "Event applications retried by broker workers",
)
_BROKER_RECOVERIES = METRICS.counter(
    "repro_broker_crash_recoveries_total",
    "Crash/recover cycles performed while an event was in flight",
)
_BROKER_DISK_FAULTS = METRICS.counter(
    "repro_broker_disk_faults_total",
    "Storage disk faults absorbed (retried or quarantined) by workers",
)

#: Live brokers, tracked weakly for the mailbox-depth gauge.
_live_brokers: "weakref.WeakSet[EventBroker]" = weakref.WeakSet()


def _collect_broker_gauges(metrics) -> None:
    gauge = metrics.gauge(
        "repro_broker_queued_events",
        "Events waiting in per-run mailboxes, summed over live brokers",
    )
    gauge.set(
        sum(
            mailbox.queue.qsize()
            for broker in _live_brokers
            for mailbox in broker._mailboxes.values()
        )
    )


METRICS.register_collector(_collect_broker_gauges)


@dataclass(frozen=True)
class SubmitOutcome:
    """The broker's verdict on one submitted event.

    ``seq`` is the event's position in the run when applied (-1
    otherwise); ``attempts`` counts application attempts including
    retries; ``recovered`` flags that a crash/recovery happened while
    this event was in flight.
    """

    run_id: str
    status: str
    seq: int = -1
    attempts: int = 0
    reason: Optional[str] = None
    recovered: bool = False
    #: True when the event's ``expected_seq`` idempotency key showed it
    #: was already applied, so the ack was repeated without re-applying.
    deduped: bool = False
    #: The acting peer's view version immediately after this event
    #: applied — captured at commit time so batched drains report the
    #: same per-event versions a one-at-a-time drain would.
    version: Optional[int] = None

    @property
    def applied(self) -> bool:
        return self.status == APPLIED

    @property
    def rejected(self) -> bool:
        return self.status in (REJECTED_BACKPRESSURE, REJECTED_BUDGET)


@dataclass
class _Mailbox:
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    worker: Optional[asyncio.Task] = None
    #: 1 while the worker is applying a dequeued event (quiesce must
    #: wait for it: the event is in flight but no longer in the queue).
    in_flight: int = 0


class EventBroker:
    """Admission control + per-run ordered application over a registry."""

    def __init__(
        self,
        registry: ShardedRunRegistry,
        queue_capacity: int = 64,
        retry: Optional[RetryPolicy] = None,
        budget: Optional[Budget] = None,
        fault_plan: Optional[FaultPlan] = None,
        batch_size: int = 1,
    ) -> None:
        if queue_capacity < 1:
            raise ServiceError("mailbox capacity must be at least 1")
        if batch_size < 1:
            raise ServiceError("batch size must be at least 1")
        self.registry = registry
        self.queue_capacity = queue_capacity
        self.batch_size = batch_size
        self.retry = retry if retry is not None else RetryPolicy(initial_backoff=0.001)
        self.budget = budget
        self.fault_plan = fault_plan
        # One injector per run: the injector's attempt/crash bookkeeping
        # is per submission index, so sharing one across runs would let
        # run A's crash at index i suppress run B's.  The per-run seed
        # keeps schedules deterministic yet varied across runs.
        self._injectors: Dict[str, FaultInjector] = {}
        self._mailboxes: Dict[str, _Mailbox] = {}
        self.counters: Dict[str, int] = {
            APPLIED: 0,
            QUARANTINED: 0,
            REJECTED_BACKPRESSURE: 0,
            REJECTED_BUDGET: 0,
            "retries": 0,
            "crash_recoveries": 0,
            "disk_faults": 0,
        }
        _live_brokers.add(self)

    # ------------------------------------------------------------------
    # Submission (the client-facing edge)
    # ------------------------------------------------------------------

    async def submit(
        self, run_id: str, event: Event, expected_seq: Optional[int] = None
    ) -> SubmitOutcome:
        """Submit one event to *run_id*'s mailbox and await its outcome.

        FIFO per run: outcomes resolve in mailbox order.  Concurrent
        submitters interleave at the queue, but each submitter's own
        awaited submissions keep their relative order.

        *expected_seq* is the protocol's idempotency key: when given
        and the run has already applied that sequence number, the
        event is acknowledged again (``deduped=True``) instead of being
        re-applied — the exactly-once contract retries through the
        cluster router rely on.  An *expected_seq* ahead of the run is
        a gap and raises :class:`ServiceError`.
        """
        if self.budget is not None and self.budget.exhausted():
            self.counters[REJECTED_BUDGET] += 1
            _SUBMISSIONS.labels(status=REJECTED_BUDGET).inc()
            return SubmitOutcome(
                run_id,
                REJECTED_BUDGET,
                reason=self.budget.violation() or "budget exhausted",
            )
        hosted = await self.registry.get(run_id)  # raises UnknownRunError
        hosted.submitted += 1
        mailbox = self._mailbox(run_id)
        if mailbox.queue.qsize() >= self.queue_capacity:
            self.counters[REJECTED_BACKPRESSURE] += 1
            _SUBMISSIONS.labels(status=REJECTED_BACKPRESSURE).inc()
            return SubmitOutcome(
                run_id,
                REJECTED_BACKPRESSURE,
                reason=f"mailbox full ({self.queue_capacity} events queued)",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        mailbox.queue.put_nowait((event, expected_seq, future))
        return await future

    async def submit_many(
        self, run_id: str, entries: "list[PyTuple[Event, Optional[int]]]"
    ) -> "list[SubmitOutcome]":
        """Submit several events to *run_id* in one enqueue; await them all.

        *entries* holds ``(event, expected_seq)`` pairs; the returned
        outcomes are positional.  Admission control runs per entry with
        the same checks as :meth:`submit` — a rejected entry gets its
        rejection outcome without being enqueued, and the rest of the
        batch proceeds.  Because all entries enter the mailbox before
        any is awaited, the drain worker can apply them as one batch
        (``batch_size`` permitting); with sequential :meth:`submit`
        calls the queue never grows past one.

        One admission-time divergence from N sequential submits: the
        budget is read when the batch is admitted, so a budget that
        would exhaust mid-batch rejects later entries only at the next
        batch.
        """
        if not entries:
            return []
        hosted = await self.registry.get(run_id)  # raises UnknownRunError
        mailbox = self._mailbox(run_id)
        outcomes: "list[Optional[SubmitOutcome]]" = []
        pending: "list[PyTuple[int, asyncio.Future]]" = []
        loop = asyncio.get_running_loop()
        for event, expected_seq in entries:
            if self.budget is not None and self.budget.exhausted():
                self.counters[REJECTED_BUDGET] += 1
                _SUBMISSIONS.labels(status=REJECTED_BUDGET).inc()
                outcomes.append(
                    SubmitOutcome(
                        run_id,
                        REJECTED_BUDGET,
                        reason=self.budget.violation() or "budget exhausted",
                    )
                )
                continue
            hosted.submitted += 1
            if mailbox.queue.qsize() >= self.queue_capacity:
                self.counters[REJECTED_BACKPRESSURE] += 1
                _SUBMISSIONS.labels(status=REJECTED_BACKPRESSURE).inc()
                outcomes.append(
                    SubmitOutcome(
                        run_id,
                        REJECTED_BACKPRESSURE,
                        reason=f"mailbox full ({self.queue_capacity} events queued)",
                    )
                )
                continue
            future = loop.create_future()
            mailbox.queue.put_nowait((event, expected_seq, future))
            pending.append((len(outcomes), future))
            outcomes.append(None)
        for index, future in pending:
            outcomes[index] = await future
        return outcomes  # type: ignore[return-value]

    def queue_depth(self, run_id: str) -> int:
        mailbox = self._mailboxes.get(run_id)
        return mailbox.queue.qsize() if mailbox is not None else 0

    # ------------------------------------------------------------------
    # Per-run workers
    # ------------------------------------------------------------------

    def _mailbox(self, run_id: str) -> _Mailbox:
        mailbox = self._mailboxes.get(run_id)
        if mailbox is None:
            mailbox = _Mailbox()
            mailbox.worker = asyncio.get_running_loop().create_task(
                self._drain(run_id, mailbox), name=f"broker:{run_id}"
            )
            self._mailboxes[run_id] = mailbox
        return mailbox

    async def _drain(self, run_id: str, mailbox: _Mailbox) -> None:
        while True:
            items = [await mailbox.queue.get()]
            while len(items) < self.batch_size:
                try:
                    items.append(mailbox.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            items = [item for item in items if not item[2].cancelled()]
            if not items:
                continue
            mailbox.in_flight = len(items)
            try:
                if len(items) == 1 or self._injector(run_id) is not None:
                    # batch_size=1, or fault injection active: the
                    # injector's per-submission crash/retry schedule
                    # needs the one-event application loop.
                    for item in items:
                        await self._settle(run_id, *item)
                else:
                    await self._apply_batched(run_id, items)
            except asyncio.CancelledError:
                # Worker cancelled mid-apply (run closed / shutdown):
                # resolve every dequeued submitter instead of leaving
                # them hanging (queued ones are failed by the canceller).
                for _, _, future in items:
                    if not future.done():
                        future.set_exception(
                            UnknownRunError(
                                f"run {run_id!r} closed while its event "
                                "was in flight"
                            )
                        )
                raise
            finally:
                mailbox.in_flight = 0

    async def _settle(
        self,
        run_id: str,
        event: Event,
        expected_seq: Optional[int],
        future: asyncio.Future,
    ) -> None:
        """Apply one dequeued submission and resolve its future."""
        try:
            outcome = await self._apply(run_id, event, expected_seq)
        except asyncio.CancelledError:
            if not future.done():
                future.set_exception(
                    UnknownRunError(
                        f"run {run_id!r} closed while its event was in flight"
                    )
                )
            raise
        except UnknownRunError as exc:
            future.set_exception(exc)
            return
        except Exception as exc:  # defensive: never kill the worker silently
            future.set_exception(exc)
            return
        self.counters[outcome.status] = self.counters.get(outcome.status, 0) + 1
        _SUBMISSIONS.labels(status=outcome.status).inc()
        if self.budget is not None:
            # Tick the service budget per applied event without
            # raising out of the worker; admission sees the result.
            self.budget.steps += 1
        future.set_result(outcome)

    async def _apply_batched(
        self,
        run_id: str,
        items: "list[PyTuple[Event, Optional[int], asyncio.Future]]",
    ) -> None:
        """Apply a dequeued batch through :meth:`HostedRun.apply_batch`.

        The fast path handles the clean case — fresh events, no faults:
        the hosted run commits them in one amortized pass and every
        future resolves ``applied`` with its sequential ack.  Anything
        irregular (idempotent replays, seq gaps, a failing event, a
        disk fault) falls back to the per-event path for the affected
        suffix, which preserves the retry/quarantine/dedup semantics of
        sequential draining exactly.
        """
        try:
            hosted = await self.registry.get(run_id)
        except UnknownRunError as exc:
            for _, _, future in items:
                if not future.done():
                    future.set_exception(exc)
            return
        base = hosted.applied
        clean = all(
            expected_seq is None or expected_seq == base + offset
            for offset, (_, expected_seq, _) in enumerate(items)
        )
        if not clean:
            for item in items:
                await self._settle(run_id, *item)
            return
        try:
            results = hosted.apply_batch([event for event, _, _ in items])
        except asyncio.CancelledError:
            raise
        except DiskFault as exc:
            self.counters["disk_faults"] += 1
            _BROKER_DISK_FAULTS.inc()
            results = list(getattr(exc, "batch_results", ()))
        except Exception as exc:
            # The committed prefix is acked below; the failing event
            # re-derives its error (and its retry/quarantine verdict)
            # in the per-event fallback.
            results = list(getattr(exc, "batch_results", ()))
        committed = hosted.applied - base
        for offset in range(committed):
            _, _, future = items[offset]
            self.counters[APPLIED] += 1
            _SUBMISSIONS.labels(status=APPLIED).inc()
            if self.budget is not None:
                self.budget.steps += 1
            if not future.done():
                version = (
                    results[offset][2] if offset < len(results) else None
                )
                future.set_result(
                    SubmitOutcome(
                        run_id,
                        APPLIED,
                        seq=base + offset,
                        attempts=1,
                        version=version,
                    )
                )
        # The failing event (if any) and everything behind it re-enter
        # the per-event loop against the committed prefix — the same
        # state a sequential drain would retry them from.
        for item in items[committed:]:
            await self._settle(run_id, *item)

    def _injector(self, run_id: str) -> Optional[FaultInjector]:
        if self.fault_plan is None:
            return None
        injector = self._injectors.get(run_id)
        if injector is None:
            plan = dataclasses.replace(
                self.fault_plan,
                seed=self.fault_plan.seed ^ zlib.crc32(run_id.encode("utf-8")),
            )
            injector = FaultInjector(plan)
            self._injectors[run_id] = injector
        return injector

    async def _apply(
        self, run_id: str, event: Event, expected_seq: Optional[int] = None
    ) -> SubmitOutcome:
        """Apply one event with the supervisor's retry/quarantine policy."""
        attempt = 0
        recovered = False
        injector = self._injector(run_id)
        while True:
            attempt += 1
            hosted = await self.registry.get(run_id)
            if expected_seq is not None:
                # Checked inside the mailbox worker (not at admission),
                # so the comparison is race-free against this run's
                # other in-flight events.
                if expected_seq < hosted.applied:
                    return SubmitOutcome(
                        run_id,
                        APPLIED,
                        seq=expected_seq,
                        attempts=attempt,
                        recovered=recovered,
                        deduped=True,
                    )
                if expected_seq > hosted.applied:
                    raise ServiceError(
                        f"submit seq {expected_seq} is ahead of run "
                        f"{run_id!r} (applied {hosted.applied}): "
                        "an acknowledged event is missing"
                    )
            try:
                if injector is not None:
                    # Index by events *attempted* (applied + quarantined),
                    # which is stable across retries and crash recovery —
                    # the supervisor's submission-index semantics.
                    injector.before_apply(
                        hosted.applied + hosted.quarantined, event
                    )
                seq, _ = hosted.apply(event)
                return SubmitOutcome(
                    run_id,
                    APPLIED,
                    seq=seq,
                    attempts=attempt,
                    recovered=recovered,
                    version=hosted.view_version(event.peer),
                )
            except CrashFault:
                await self.registry.crash_and_recover(run_id)
                self.counters["crash_recoveries"] += 1
                _BROKER_RECOVERIES.inc()
                recovered = True
                # The injector only crashes once per index: retry resumes
                # against the journal-recovered instance.
                continue
            except DiskFault as exc:
                # The journal refused the record *before* any in-memory
                # mutation: the event is unacknowledged and the store
                # self-heals (truncate-and-recover) on the next append,
                # so retrying is safe and duplicates are impossible.
                self.counters["disk_faults"] += 1
                _BROKER_DISK_FAULTS.inc()
                if attempt >= self.retry.max_attempts:
                    hosted.record_quarantine(
                        event, f"disk fault persisted ({exc.kind}): {exc}", attempt
                    )
                    return SubmitOutcome(
                        run_id,
                        QUARANTINED,
                        attempts=attempt,
                        reason=f"disk fault persisted ({exc.kind}): {exc}",
                        recovered=recovered,
                    )
                self.counters["retries"] += 1
                _BROKER_RETRIES.inc()
                await asyncio.sleep(self.retry.backoff(attempt))
            except TransientFault as exc:
                if attempt >= self.retry.max_attempts:
                    hosted.record_quarantine(
                        event, f"transient fault persisted: {exc}", attempt
                    )
                    return SubmitOutcome(
                        run_id,
                        QUARANTINED,
                        attempts=attempt,
                        reason=f"transient fault persisted: {exc}",
                        recovered=recovered,
                    )
                self.counters["retries"] += 1
                _BROKER_RETRIES.inc()
                await asyncio.sleep(self.retry.backoff(attempt))
            except POISON_ERRORS as exc:
                diagnostic = f"{type(exc).__name__}: {exc}"
                if attempt >= self.retry.max_attempts:
                    hosted.record_quarantine(event, diagnostic, attempt)
                    return SubmitOutcome(
                        run_id,
                        QUARANTINED,
                        attempts=attempt,
                        reason=diagnostic,
                        recovered=recovered,
                    )
                self.counters["retries"] += 1
                _BROKER_RETRIES.inc()
                await asyncio.sleep(self.retry.backoff(attempt))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def quiesce(self, run_id: Optional[str] = None) -> None:
        """Wait until the given run's mailbox (or all mailboxes) drains."""
        boxes = (
            [self._mailboxes[run_id]]
            if run_id is not None and run_id in self._mailboxes
            else list(self._mailboxes.values())
        )
        for mailbox in boxes:
            while not mailbox.queue.empty() or mailbox.in_flight:
                await asyncio.sleep(0)

    def _fail_pending(self, run_id: str, mailbox: _Mailbox) -> None:
        """Resolve still-queued submissions of a dying mailbox."""
        while not mailbox.queue.empty():
            _, _, future = mailbox.queue.get_nowait()
            if not future.done():
                future.set_exception(
                    UnknownRunError(
                        f"run {run_id!r} closed before its event was applied"
                    )
                )

    async def release(self, run_id: str) -> None:
        """Drop one run's mailbox (used when the run is closed)."""
        mailbox = self._mailboxes.pop(run_id, None)
        if mailbox is not None and mailbox.worker is not None:
            mailbox.worker.cancel()
            try:
                await mailbox.worker
            except (asyncio.CancelledError, Exception):
                pass
            self._fail_pending(run_id, mailbox)

    async def shutdown(self) -> None:
        """Cancel every worker task; pending submissions resolve with errors."""
        for mailbox in self._mailboxes.values():
            if mailbox.worker is not None:
                mailbox.worker.cancel()
        for run_id, mailbox in self._mailboxes.items():
            if mailbox.worker is not None:
                try:
                    await mailbox.worker
                except (asyncio.CancelledError, Exception):
                    pass
            self._fail_pending(run_id, mailbox)
        self._mailboxes.clear()

    def stats(self) -> Dict[str, object]:
        return {
            "queue_capacity": self.queue_capacity,
            "batch_size": self.batch_size,
            "active_mailboxes": len(self._mailboxes),
            "queued_events": sum(m.queue.qsize() for m in self._mailboxes.values()),
            **self.counters,
        }
