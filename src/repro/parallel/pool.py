"""Work-sharing worker pools with deterministic, ordered task results.

A :class:`WorkerPool` runs picklable task payloads through one
module-level task function, either in-process (``workers=1``) or on a
``multiprocessing`` pool (``workers>=2``).  Three properties make it
usable under the engine's determinism contract:

* **Ordered results.**  :meth:`WorkerPool.run` yields one result per
  task *in task order*, regardless of which worker finished first — the
  merge layers above never observe scheduling nondeterminism.
* **Budget propagation.**  A :class:`BudgetSpec` snapshots the caller's
  remaining wall-clock allowance (explicit *and* ambient budget) into a
  picklable form; workers rebuild a local :class:`Budget` from it, so a
  deadline set in the parent also bounds computation inside workers.  A
  worker whose budget trips returns a :class:`TaskTruncated` marker
  instead of a result — the caller decides how to degrade.
* **Fault tolerance.**  Tasks that die in a worker (the deterministic
  :class:`~repro.runtime.faults.FaultPlan` injects a simulated crash or
  a starved, empty-handed worker) are retried *in the parent process*,
  which holds the same task context as the workers.  A retried task
  produces the identical result it would have produced in the worker,
  so injected worker failures are invisible in the merged output.

The context (program, peer, search parameters, ...) is installed once
per worker by the pool initializer and kept on the pool in the parent,
so task payloads stay small (an instance, a few indices) and the
per-task IPC cost is bounded by the state being expanded, not by the
program.
"""

from __future__ import annotations

import pickle
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..obs.metrics import METRICS
from ..runtime.budget import Budget, current_budget
from ..runtime.faults import FaultPlan
from .config import set_default_workers

__all__ = [
    "BudgetSpec",
    "TaskTruncated",
    "WorkerPool",
    "task_fault",
]

_TASKS = METRICS.counter(
    "repro_parallel_tasks_total",
    "Parallel task units executed, by outcome",
    labelnames=("outcome",),
)
_BUSY = METRICS.counter(
    "repro_parallel_busy_seconds_total",
    "Cumulative busy seconds across all parallel workers",
)
_POOLS = METRICS.counter(
    "repro_parallel_pools_total",
    "Worker pools created, by execution mode",
    labelnames=("mode",),
)
_WORKERS = METRICS.gauge(
    "repro_parallel_pool_workers",
    "Workers of the most recently created pool",
)


@dataclass(frozen=True)
class BudgetSpec:
    """A picklable snapshot of the budget limits a worker must honour.

    Only the wall-clock axis crosses the process boundary: step budgets
    are global counters that cannot be split soundly across workers, so
    the merge layers enforce them in the parent (at the exact points the
    sequential engines poll them), and workers enforce the deadline.
    """

    wall_remaining: Optional[float] = None

    @classmethod
    def capture(cls, *budgets: Optional[Budget]) -> Optional["BudgetSpec"]:
        """The tightest remaining wall allowance of *budgets* + ambient."""
        remaining: Optional[float] = None
        seen: List[Budget] = []
        for budget in tuple(budgets) + (current_budget(),):
            if budget is None or any(budget is b for b in seen):
                continue
            seen.append(budget)
            left = budget.remaining_seconds()
            if left is not None and (remaining is None or left < remaining):
                remaining = left
        if remaining is None:
            return None
        return cls(wall_remaining=remaining)

    def to_budget(self) -> Optional[Budget]:
        """A fresh local :class:`Budget` enforcing this spec."""
        if self.wall_remaining is None:
            return None
        return Budget(wall_seconds=self.wall_remaining)


@dataclass(frozen=True)
class TaskTruncated:
    """Marker result: the task's local budget tripped before it finished.

    *partial* carries whatever the task had computed so far (task
    functions define its shape); *reason* names the exhausted axis.
    """

    reason: str
    partial: Any = None


@dataclass(frozen=True)
class _TaskFailure:
    """Internal marker: the task died in a worker and must be retried."""

    kind: str
    seq: int


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def task_fault(plan: Optional[FaultPlan], seq: int) -> Optional[str]:
    """The fault shape scheduled for task *seq*, pure in (seed, seq).

    Follows the :class:`~repro.runtime.faults.FaultInjector` convention
    (one seeded generator per index) so a schedule never depends on
    which worker picks the task up: ``crash`` simulates a dying worker,
    ``transient`` a starved one that returns late and empty-handed.
    """
    if plan is None:
        return None
    rng = random.Random(f"{plan.seed}:parallel-task:{seq}")
    if plan.crash_rate and rng.random() < plan.crash_rate:
        return "crash"
    if plan.transient_rate and rng.random() < plan.transient_rate:
        return "transient"
    return None


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

# Installed by the pool initializer; meaningful only in worker processes
# (the parent executes tasks through its own pool-local state).
_WORKER_STATE: Optional[Tuple[Callable[[Any, Any], Any], Any, Optional[FaultPlan]]] = None


def _worker_init(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)
    # A worker must never fan out its own sub-pool.
    set_default_workers(1)


def _run_task(
    state: Tuple[Callable[[Any, Any], Any], Any, Optional[FaultPlan]],
    task: Tuple[int, Any],
) -> Any:
    """Run one task; injected faults become failure markers, not raises."""
    task_fn, context, faults = state
    seq, arg = task
    kind = task_fault(faults, seq)
    if kind is not None:
        if kind == "transient":
            time.sleep(0.001)
        return _TaskFailure(kind=kind, seq=seq)
    started = time.perf_counter()
    result = task_fn(context, arg)
    _BUSY.inc(time.perf_counter() - started)
    return result


def _worker_execute(task: Tuple[int, Any]) -> Any:
    assert _WORKER_STATE is not None, "worker used before initialization"
    return _run_task(_WORKER_STATE, task)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class WorkerPool:
    """Ordered task execution over N processes (or in-process for N=1).

    >>> # with WorkerPool(4, _expand_states, context) as pool:
    >>> #     for result in pool.run(tasks):
    >>> #         merge(result)
    """

    def __init__(
        self,
        workers: int,
        task_fn: Callable[[Any, Any], Any],
        context: Any,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._seq = 0
        self._pool = None
        self._faulty_state = (task_fn, context, fault_plan)
        self._clean_state = (task_fn, context, None)
        if workers >= 2 and _fork_available():
            # Only the fork start method is safe: model objects cache
            # structural hashes (Tuple eagerly, Instance lazily), and a
            # spawn/forkserver child runs under a different string-hash
            # seed, so hashes pickled back from such a child would be
            # inconsistent with the parent's.  Fork children inherit the
            # parent's hash seed.  Without fork we degrade to in-process
            # execution — same results, no parallelism.
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            payload = pickle.dumps(self._faulty_state)
            self._pool = ctx.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(payload,),
            )
            _POOLS.labels(mode="process").inc()
        else:
            _POOLS.labels(mode="serial").inc()
        _WORKERS.set(workers)

    # ------------------------------------------------------------------

    def run(self, args: Iterable[Any], chunksize: int = 1) -> Iterator[Any]:
        """Yield one result per task argument, in task order.

        Tasks failed by injected faults are transparently retried in the
        parent with the fault gate off; the merged result stream is
        therefore exactly what a sequential execution of the task
        function over *args* would produce.
        """
        tasks: List[Tuple[int, Any]] = []
        for arg in args:
            tasks.append((self._seq, arg))
            self._seq += 1
        if self._pool is None:
            raw_results: Iterable[Any] = (
                _run_task(self._faulty_state, task) for task in tasks
            )
        else:
            raw_results = self._pool.imap(_worker_execute, tasks, chunksize)
        for task, result in zip(tasks, raw_results):
            if isinstance(result, _TaskFailure):
                _TASKS.labels(outcome="retried").inc()
                result = _run_task(self._clean_state, task)
            if isinstance(result, TaskTruncated):
                _TASKS.labels(outcome="truncated").inc()
            else:
                _TASKS.labels(outcome="ok").inc()
            yield result

    # ------------------------------------------------------------------

    def close(self) -> None:
        # close()+join(), not terminate(): tasks are short and
        # deterministic, and a clean worker exit lets coverage/profiling
        # hooks installed in the children flush their data.
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
