"""High-level runtime explanation API.

Wraps scenarios and faithful scenarios into a single report object: for
a run and an observing peer, the :class:`Explanation` carries the peer's
view, the unique minimal faithful scenario, and — for every transition
the peer observes — the *provenance*: the scenario events that the
observed transition depends on (the faithful closure of the underlying
event).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple as PyTuple

from ..obs.provenance import ProvenanceLog
from ..workflow.events import Event
from ..workflow.runs import OMEGA, Run, RunView
from .faithful import FaithfulnessAnalysis, FaithfulScenario, minimal_faithful_scenario
from .subruns import EventSubsequence


@dataclass(frozen=True)
class ObservationExplanation:
    """Why one observed transition happened.

    ``position`` is the index of the underlying event in the global run;
    ``cause_positions`` are the global-run indices of the events in its
    minimal faithful explanation (all of them members of the minimal
    faithful scenario when the observation is visible).
    """

    position: int
    observed_label: object  # the event itself, or OMEGA
    cause_positions: PyTuple[int, ...]

    def describe(self, run: Run) -> str:
        causes = ", ".join(
            f"[{i}] {run.events[i]!r}" for i in self.cause_positions
        )
        label = "own event" if self.observed_label is not OMEGA else "side-effect"
        return f"transition {self.position} ({label}) caused by: {causes}"


@dataclass(frozen=True)
class Explanation:
    """The complete runtime explanation of a run for one peer."""

    run: Run
    peer: str
    view: RunView
    scenario: FaithfulScenario
    observations: PyTuple[ObservationExplanation, ...]

    def scenario_subrun(self) -> Run:
        """The minimal faithful scenario replayed as a run."""
        return self.scenario.subrun()

    def scenario_events(self) -> PyTuple[Event, ...]:
        return EventSubsequence(self.run, self.scenario.indices).events()

    def irrelevant_indices(self) -> PyTuple[int, ...]:
        """Run positions with no bearing on what the peer observed."""
        relevant = set(self.scenario.indices)
        return tuple(i for i in range(len(self.run)) if i not in relevant)

    def compression_ratio(self) -> float:
        """Fraction of the run the explanation discards (0 = nothing)."""
        if not len(self.run):
            return 0.0
        return 1.0 - len(self.scenario.indices) / len(self.run)

    def to_text(self) -> str:
        """A human-readable rendering of the explanation."""
        lines = [
            f"Explanation of a {len(self.run)}-event run for peer {self.peer!r}",
            f"  visible transitions: {len(self.view)}",
            f"  minimal faithful scenario: {len(self.scenario.indices)} events "
            f"(discards {self.compression_ratio():.0%} of the run)",
        ]
        for observation in self.observations:
            lines.append("  " + observation.describe(self.run))
        return "\n".join(lines)


def explain_run(run: Run, peer: str) -> Explanation:
    """Explain *run* to *peer* via its minimal faithful scenario.

    >>> # explanation = explain_run(run, "sue")
    >>> # print(explanation.to_text())
    """
    analysis = FaithfulnessAnalysis(run, peer)
    visible = run.visible_indices(peer)
    scenario_indices = tuple(sorted(analysis.closure(visible)))
    scenario = FaithfulScenario(run, peer, scenario_indices)
    view = run.view(peer)
    observations: List[ObservationExplanation] = []
    for step in view.steps:
        causes = tuple(sorted(analysis.closure([step.index])))
        observations.append(
            ObservationExplanation(step.index, step.label, causes)
        )
    return Explanation(run, peer, view, scenario, tuple(observations))


def run_provenance(run: Run) -> ProvenanceLog:
    """The per-event provenance log of *run*, rebuilt by replay.

    The service records provenance live, at application time
    (:class:`repro.service.registry.HostedRun`); this is the offline
    form for runs that exist only as event logs — one replay, O(|delta|)
    recording per event.  Each record's ``visible_to`` holds the peers
    whose view of the transition changed, so explanation citations
    ("event 3 inserted key k of R, visible to sue") can be grounded in
    the same structure either way.
    """
    from ..dataflow.delta import refresh_view_instance
    from ..workflow.engine import apply_event_with_delta

    schema = run.program.schema
    log = ProvenanceLog()
    instance = run.initial
    views = {peer: schema.view_instance(instance, peer) for peer in schema.peers}
    for seq, event in enumerate(run.events):
        instance, delta = apply_event_with_delta(
            schema, instance, event, forbidden_fresh=None, check_body=False
        )
        visible_to = {event.peer}
        for peer, view in views.items():
            refreshed = refresh_view_instance(schema, peer, view, delta)
            if refreshed is not view:
                visible_to.add(peer)
                views[peer] = refreshed
        log.record(seq, event.rule.name, event.peer, delta, visible_to)
    return log


def explain_event(run: Run, peer: str, position: int) -> FrozenSet[int]:
    """The minimal faithful explanation ``T_p^ω(ρ, {f})`` of one event.

    The event need not be visible at the peer; the result is the
    smallest boundary- and modification-faithful subsequence containing
    it (used as auxiliary state by incremental maintenance).
    """
    analysis = FaithfulnessAnalysis(run, peer)
    return analysis.closure([position])
