"""Realistic workflow program families, sized by knobs.

Importing this package registers the four families in
:data:`~repro.workloads.families.base.FAMILIES`:

* ``ecommerce`` — order fulfillment across shop, bank, warehouses and
  couriers (observer: ``customer``);
* ``healthcare`` — treatment approvals through doctors, a review-board
  chain and an insurer (observer: ``patient``);
* ``cicd`` — commit build/test pipeline with per-service deploys and
  rollbacks (observer: ``oncall``);
* ``procurement`` — requisition, competitive quotes, award, a finance
  approval chain and fulfillment (observer: ``auditor``).

Every family accepts a ``visibility`` density knob (0.0–1.0) governing
how much of the internal pipeline its observer sees, plus size knobs
listed in its ``defaults``.  Specs like ``"ecommerce:items=5,couriers=3"``
resolve through :func:`make_family_program`.
"""

from __future__ import annotations

from .base import (
    FAMILIES,
    WorkflowFamily,
    family_names,
    get_family,
    make_family_program,
    parse_family_spec,
    register,
)
from .cicd import CICD, cicd_program
from .ecommerce import ECOMMERCE, ecommerce_program
from .healthcare import HEALTHCARE, healthcare_program
from .procurement import PROCUREMENT, procurement_program

__all__ = [
    "CICD",
    "ECOMMERCE",
    "FAMILIES",
    "HEALTHCARE",
    "PROCUREMENT",
    "WorkflowFamily",
    "cicd_program",
    "ecommerce_program",
    "family_names",
    "get_family",
    "healthcare_program",
    "make_family_program",
    "parse_family_spec",
    "procurement_program",
    "register",
]
