"""Tests for formulas and the Theorem 3.4 minimality reduction."""

import pytest

from repro.core.scenarios import is_scenario
from repro.reductions.formulas import (
    AndExpr,
    NotExpr,
    OrExpr,
    VarExpr,
    assignments,
    is_satisfiable,
    random_cnf,
    satisfying_assignment,
)
from repro.reductions.sat import (
    formula_to_condition,
    scenario_for_assignment,
    unsat_to_minimality,
)

x, y, z = VarExpr("x"), VarExpr("y"), VarExpr("z")


class TestFormulas:
    def test_evaluation(self):
        formula = AndExpr((x, OrExpr((NotExpr(y), z))))
        assert formula.evaluate({"x": True, "y": False, "z": False})
        assert not formula.evaluate({"x": False, "y": False, "z": False})

    def test_variables(self):
        assert AndExpr((x, NotExpr(y))).variables() == {"x", "y"}

    def test_assignments_count(self):
        assert len(list(assignments(["a", "b"]))) == 4

    def test_satisfiability(self):
        assert is_satisfiable(OrExpr((x, NotExpr(x))))
        assert not is_satisfiable(AndExpr((x, NotExpr(x))))
        model = satisfying_assignment(AndExpr((x, NotExpr(y))))
        assert model == {"x": True, "y": False}

    def test_random_cnf_shape(self):
        formula = random_cnf(4, 5, seed=1)
        assert formula.variables() <= {f"x{i}" for i in range(4)}


class TestFormulaToCondition:
    def test_translation_agrees_with_evaluation(self):
        from repro.workflow.tuples import Tuple

        formula = OrExpr((AndExpr((x, NotExpr(y))), z))
        condition = formula_to_condition(formula)
        for assignment in assignments(["x", "y", "z"]):
            tup = Tuple(
                ("K", "A_x", "A_y", "A_z"),
                (0,) + tuple(1 if assignment[n] else 0 for n in ("x", "y", "z")),
            )
            assert condition.evaluate(tup) == formula.evaluate(assignment)


class TestReduction:
    def test_precondition_enforced(self):
        with pytest.raises(ValueError):
            unsat_to_minimality(x)  # satisfied by all-true

    def test_unsat_formula_gives_minimal_run(self):
        reduction = unsat_to_minimality(AndExpr((x, NotExpr(x))))
        assert reduction.run_is_minimal_scenario()

    def test_sat_formula_gives_non_minimal_run(self):
        reduction = unsat_to_minimality(AndExpr((x, NotExpr(y))))
        assert not reduction.run_is_minimal_scenario()

    def test_observer_sees_ok_only_after_e(self):
        reduction = unsat_to_minimality(AndExpr((x, NotExpr(y))))
        assert reduction.run.visible_indices("p") == (len(reduction.run) - 1,)

    def test_satisfying_assignment_yields_scenario(self):
        formula = AndExpr((x, NotExpr(y)))
        reduction = unsat_to_minimality(formula)
        model = satisfying_assignment(formula)
        positions = scenario_for_assignment(reduction, model)
        assert is_scenario(reduction.run, "p", positions)
        assert len(positions) < len(reduction.run)

    def test_falsifying_assignment_yields_no_scenario(self):
        formula = AndExpr((x, NotExpr(y)))
        reduction = unsat_to_minimality(formula)
        positions = scenario_for_assignment(reduction, {"x": False, "y": True})
        assert not is_scenario(reduction.run, "p", positions)

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem_34_equivalence_random(self, seed):
        formula = random_cnf(3, 3, clause_size=2, seed=seed)
        if formula.evaluate({name: True for name in formula.variables()}):
            pytest.skip("precondition (*) fails: formula holds under all-true")
        reduction = unsat_to_minimality(formula)
        assert reduction.run_is_minimal_scenario() == (not is_satisfiable(formula))
