"""Structured tracing: span nesting, sinks, and the disabled fast path."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.trace import (
    JsonLinesSink,
    NullSink,
    RingBufferSink,
    SpanRecord,
    capture_spans,
    configure_tracing,
    current_span_id,
    span,
    tracing_enabled,
)


class TestDisabledFastPath:
    def test_off_by_default(self):
        assert not tracing_enabled()
        assert current_span_id() is None

    def test_disabled_span_is_shared_noop(self):
        # No allocation while off: every call returns the same object.
        assert span("a") is span("b", key="value")

    def test_noop_span_supports_the_span_protocol(self):
        with span("anything") as active:
            active.set("key", "value")  # silently dropped

    def test_null_sink_keeps_tracing_disabled(self):
        previous = configure_tracing(NullSink())
        try:
            assert not tracing_enabled()
            assert span("a") is span("b")
        finally:
            configure_tracing(previous)


class TestSpans:
    def test_capture_records_name_status_and_timing(self):
        with capture_spans() as sink:
            with span("work", peer="sue"):
                pass
        (record,) = sink.spans()
        assert record.name == "work"
        assert record.status == "ok"
        assert record.error is None
        assert record.duration_us >= 0
        assert record.attributes == {"peer": "sue"}

    def test_nesting_via_parent_id(self):
        with capture_spans() as sink:
            with span("outer") as outer:
                assert current_span_id() == outer.span_id
                with span("inner") as inner:
                    assert current_span_id() == inner.span_id
                assert current_span_id() == outer.span_id
        assert current_span_id() is None
        inner_record = sink.named("inner")[0]
        outer_record = sink.named("outer")[0]
        assert inner_record.parent_id == outer_record.span_id
        assert outer_record.parent_id is None
        # Sinks see spans innermost first (emitted on exit).
        assert [r.name for r in sink.spans()] == ["inner", "outer"]

    def test_mid_span_attributes(self):
        with capture_spans() as sink:
            with span("search") as active:
                active.set("nodes", 17)
        assert sink.spans()[0].attributes["nodes"] == 17

    def test_exceptions_recorded_and_propagated(self):
        with capture_spans() as sink:
            with pytest.raises(KeyError):
                with span("failing"):
                    raise KeyError("boom")
        (record,) = sink.spans()
        assert record.status == "error"
        assert record.error == "KeyError"

    def test_capture_restores_previous_sink(self):
        outer_sink = RingBufferSink()
        previous = configure_tracing(outer_sink)
        try:
            with capture_spans() as inner_sink:
                with span("inner-only"):
                    pass
            with span("outer-only"):
                pass
            assert [r.name for r in inner_sink.spans()] == ["inner-only"]
            assert [r.name for r in outer_sink.spans()] == ["outer-only"]
        finally:
            configure_tracing(previous)

    def test_broken_sink_never_breaks_traced_code(self):
        class Broken(RingBufferSink):
            def emit(self, record):
                raise RuntimeError("sink bug")

        previous = configure_tracing(Broken())
        try:
            with span("work"):
                pass  # must not raise
        finally:
            configure_tracing(previous)


class TestSinks:
    def test_ring_buffer_drops_oldest(self):
        sink = RingBufferSink(capacity=2)
        for name in ("a", "b", "c"):
            sink.emit(
                SpanRecord(
                    name=name, span_id=1, parent_id=None, started_at=0.0, duration_us=1.0
                )
            )
        assert [r.name for r in sink.spans()] == ["b", "c"]
        assert sink.emitted == 3
        assert len(sink) == 2
        sink.clear()
        assert sink.spans() == []

    def test_ring_buffer_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonlines_sink_writes_one_object_per_span(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream, flush_every=1)
        previous = configure_tracing(sink)
        try:
            with span("outer", steps=2):
                with span("inner"):
                    pass
        finally:
            configure_tracing(previous)
            sink.close()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [entry["name"] for entry in lines] == ["inner", "outer"]
        assert lines[0]["parent_id"] == lines[1]["span_id"]
        assert lines[1]["attributes"] == {"steps": 2}

    def test_jsonlines_sink_owns_paths(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        sink.emit(
            SpanRecord(
                name="a", span_id=1, parent_id=None, started_at=0.0, duration_us=1.0
            )
        )
        sink.close()
        assert json.loads(path.read_text().strip())["name"] == "a"


class TestInstrumentation:
    def test_engine_and_generator_spans_nest(self, approval):
        from repro.workflow import RunGenerator

        with capture_spans() as sink:
            RunGenerator(approval, seed=0).random_run(4)
        runs = sink.named("random_run")
        applies = sink.named("apply_event")
        assert len(runs) == 1
        assert applies, "apply_event spans should be recorded"
        # Candidate applications nest under the generator's span (the
        # final replay of the chosen run happens outside it).
        assert any(record.parent_id == runs[0].span_id for record in applies)

    def test_scenario_search_span_records_outcome(self, approval_run):
        from repro.core import minimum_scenario

        with capture_spans() as sink:
            minimum_scenario(approval_run, "applicant")
        (record,) = sink.named("scenario_search")
        assert record.status == "ok"
