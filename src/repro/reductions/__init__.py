"""Hardness gadgets from the paper's proofs.

Executable versions of the reductions behind Theorem 3.3 (Hitting Set →
minimum scenario length), Theorem 3.4 (UNSAT → scenario minimality) and
the PCP machinery behind the undecidability results of Section 5, each
paired with a brute-force reference solver for differential validation.
"""

from .formulas import (
    AndExpr,
    BoolExpr,
    NotExpr,
    OrExpr,
    VarExpr,
    assignments,
    is_satisfiable,
    random_cnf,
    satisfying_assignment,
)
from .hitting_set import (
    HittingSetInstance,
    HittingSetReduction,
    brute_force_hitting_set,
    greedy_hitting_set,
    hitting_set_to_workflow,
    random_instance,
)
from .pcp import (
    PCPInstance,
    brute_force_solution,
    pcp_workflow,
    search_solution,
    u_reachable,
)
from .sat import (
    MinimalityReduction,
    formula_to_condition,
    scenario_for_assignment,
    unsat_to_minimality,
)

__all__ = [
    "AndExpr",
    "BoolExpr",
    "HittingSetInstance",
    "HittingSetReduction",
    "MinimalityReduction",
    "NotExpr",
    "OrExpr",
    "PCPInstance",
    "VarExpr",
    "assignments",
    "brute_force_hitting_set",
    "brute_force_solution",
    "formula_to_condition",
    "greedy_hitting_set",
    "hitting_set_to_workflow",
    "is_satisfiable",
    "pcp_workflow",
    "random_cnf",
    "random_instance",
    "satisfying_assignment",
    "scenario_for_assignment",
    "search_solution",
    "u_reachable",
    "unsat_to_minimality",
]
