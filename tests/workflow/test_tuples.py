"""Tests for tuples: projection, padding, subsumption and merging."""

import pytest
from hypothesis import given, strategies as st

from repro.workflow.domain import NULL
from repro.workflow.errors import SchemaError
from repro.workflow.tuples import Tuple

ATTRS = ("K", "A", "B")


def make(k, a, b):
    return Tuple(ATTRS, (k, a, b))


class TestBasics:
    def test_getitem_and_key(self):
        t = make(1, "x", NULL)
        assert t["K"] == 1
        assert t["A"] == "x"
        assert t.key == 1

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            make(1, 2, 3)["Z"]

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Tuple(("K", "A"), (1,))

    def test_immutable(self):
        t = make(1, 2, 3)
        with pytest.raises(AttributeError):
            t.values = (9, 9, 9)

    def test_from_mapping_defaults_to_null(self):
        t = Tuple.from_mapping(ATTRS, {"K": 1, "B": "y"})
        assert t["A"] is NULL
        assert t["B"] == "y"

    def test_replace(self):
        t = make(1, "x", "y").replace(A="z")
        assert t["A"] == "z"
        assert t["B"] == "y"
        with pytest.raises(SchemaError):
            t.replace(Z=1)

    def test_as_dict(self):
        assert make(1, 2, 3).as_dict() == {"K": 1, "A": 2, "B": 3}

    def test_equality_and_hash(self):
        assert make(1, 2, 3) == make(1, 2, 3)
        assert make(1, 2, 3) != make(1, 2, 4)
        assert len({make(1, 2, 3), make(1, 2, 3)}) == 1

    def test_iter_len(self):
        t = make(1, 2, 3)
        assert list(t) == [1, 2, 3]
        assert len(t) == 3


class TestProjectionPadding:
    def test_project(self):
        t = make(1, "x", "y").project(("K", "B"))
        assert t.attributes == ("K", "B")
        assert t.values == (1, "y")

    def test_pad_fills_null(self):
        t = Tuple(("K", "B"), (1, "y")).pad(ATTRS)
        assert t["A"] is NULL
        assert t["B"] == "y"

    def test_pad_then_project_roundtrip(self):
        t = Tuple(("K", "A"), (1, "x"))
        assert t.pad(ATTRS).project(("K", "A")) == t

    def test_non_null_attributes(self):
        assert make(1, NULL, "y").non_null_attributes() == ("K", "B")


class TestSubsumption:
    def test_null_subsumed_by_anything(self):
        assert make(1, NULL, NULL).subsumed_by(make(1, "x", "y"))

    def test_conflicting_value_not_subsumed(self):
        assert not make(1, "x", NULL).subsumed_by(make(1, "z", "y"))

    def test_different_attributes_not_subsumed(self):
        assert not Tuple(("K",), (1,)).subsumed_by(make(1, 2, 3))

    def test_reflexive(self):
        t = make(1, "x", NULL)
        assert t.subsumed_by(t)


class TestMerge:
    def test_merge_fills_nulls_both_ways(self):
        merged = make(1, "x", NULL).merge(make(1, NULL, "y"))
        assert merged.values == (1, "x", "y")

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            make(1, "x", NULL).merge(make(1, "z", NULL))

    def test_conflicts_with(self):
        assert make(1, "x", NULL).conflicts_with(make(1, "z", NULL))
        assert not make(1, "x", NULL).conflicts_with(make(1, NULL, "y"))

    def test_merge_different_attribute_sets_rejected(self):
        with pytest.raises(SchemaError):
            make(1, 2, 3).merge(Tuple(("K",), (1,)))


values = st.one_of(st.integers(0, 5), st.just(NULL))


@given(a=values, b=values, c=values, d=values)
def test_merge_commutative_when_defined(a, b, c, d):
    """Property: merge is commutative (when it succeeds on either side)."""
    left, right = make(1, a, b), make(1, c, d)
    try:
        first = left.merge(right)
    except ValueError:
        with pytest.raises(ValueError):
            right.merge(left)
        return
    assert first == right.merge(left)


@given(a=values, b=values)
def test_merge_idempotent(a, b):
    t = make(1, a, b)
    assert t.merge(t) == t


@given(a=values, b=values, c=values, d=values)
def test_subsumption_iff_merge_equals_bigger(a, b, c, d):
    """u subsumed by v iff merging them yields v (for same keys)."""
    u, v = make(1, a, b), make(1, c, d)
    if u.subsumed_by(v):
        assert u.merge(v) == v
