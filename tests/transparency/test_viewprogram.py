"""Tests for view-program synthesis (Theorem 5.13, Example 5.1)."""

import pytest

from repro.transparency.bounded import SearchBudget
from repro.transparency.equivalence import check_view_program
from repro.transparency.viewprogram import WORLD, synthesize_view_program, view_world_schema
from repro.workflow import RunGenerator
from repro.workflow.queries import KeyLiteral, RelLiteral
from repro.workflow.rules import Insertion
from repro.workloads.generators import chain_program

SMALL = SearchBudget(pool_extra=2, max_tuples_per_relation=1)


class TestWorldSchema:
    def test_relations_match_peer_views(self, hiring):
        schema = view_world_schema(hiring, "sue")
        assert set(schema.schema.relation_names) == {"Cleared", "Hire"}
        assert schema.peers == ("sue", WORLD)
        for view in schema.all_views():
            assert view.is_full()


@pytest.fixture(scope="module")
def sue_synthesis():
    from repro.workloads.paper_examples import hiring_program

    return synthesize_view_program(hiring_program(), "sue", h=3, budget=SMALL)


class TestExample51Synthesis:
    def test_two_world_rules(self, sue_synthesis):
        # The paper's view program: +Cleared@ω(x) :- and
        # +Hire@ω(x) :- Cleared@ω(x) (ours adds the ¬Key_Hire literal
        # the paper's construction prescribes but the example elides).
        rules = sue_synthesis.world_rules()
        assert len(rules) == 2

    def test_clear_rule_shape(self, sue_synthesis):
        unconditional = [r for r in sue_synthesis.world_rules() if len(r.body) == 0]
        assert len(unconditional) == 1
        (rule,) = unconditional
        assert isinstance(rule.head[0], Insertion)
        assert rule.head[0].view.relation.name == "Cleared"
        assert rule.head_only_variables()  # fresh key

    def test_hire_rule_shape(self, sue_synthesis):
        conditional = [r for r in sue_synthesis.world_rules() if len(r.body) > 0]
        assert len(conditional) == 1
        (rule,) = conditional
        assert rule.head[0].view.relation.name == "Hire"
        positives = [l for l in rule.body.literals if isinstance(l, RelLiteral)]
        assert len(positives) == 1
        assert positives[0].view.relation.name == "Cleared"

    def test_no_peer_rules_for_sue(self, sue_synthesis):
        assert sue_synthesis.peer_rules() == ()

    def test_witness_records(self, sue_synthesis):
        assert len(sue_synthesis.records) == 2
        hire_record = [
            r
            for r in sue_synthesis.records
            if r.rule.head[0].view.relation.name == "Hire"
        ][0]
        names = [e.rule.name for e in hire_record.witness.events]
        assert names == ["cfook", "approve", "hire"]

    def test_provenance_facts(self, sue_synthesis):
        hire_record = [
            r
            for r in sue_synthesis.records
            if r.rule.head[0].view.relation.name == "Hire"
        ][0]
        facts = hire_record.provenance_facts(
            sue_synthesis.source.schema, "sue"
        )
        assert any("Cleared" in fact for fact in facts)


class TestEquivalence:
    def test_sound_and_complete_on_samples(self, sue_synthesis):
        source = sue_synthesis.source
        source_runs = [RunGenerator(source, seed=s).random_run(8) for s in range(5)]
        view_runs = [
            RunGenerator(sue_synthesis.program, seed=s).random_run(5)
            for s in range(5)
        ]
        report = check_view_program(sue_synthesis, source_runs, view_runs)
        assert report.ok, (
            report.completeness_failures,
            report.soundness_failures,
        )

    def test_chain_synthesis_equivalence(self):
        program = chain_program(2)
        synthesis = synthesize_view_program(
            program, "observer", h=3, budget=SearchBudget(pool_extra=0)
        )
        # Single world rule: +S2@ω(0) :- (the chain collapses).
        assert len(synthesis.world_rules()) == 1
        source_runs = [RunGenerator(program, seed=s).random_run(4) for s in range(4)]
        view_runs = [
            RunGenerator(synthesis.program, seed=s).random_run(2) for s in range(4)
        ]
        report = check_view_program(synthesis, source_runs, view_runs)
        assert report.ok

    def test_transparent_variant_synthesis(self, hiring_transparent):
        synthesis = synthesize_view_program(
            hiring_transparent, "sue", h=2, budget=SMALL
        )
        assert synthesis.world_rules()
        source = synthesis.source
        source_runs = [RunGenerator(source, seed=s).random_run(8) for s in range(4)]
        view_runs = [
            RunGenerator(synthesis.program, seed=s).random_run(4) for s in range(4)
        ]
        report = check_view_program(synthesis, source_runs, view_runs)
        assert report.ok, (
            report.completeness_failures,
            report.soundness_failures,
        )
