"""Parametrized synthetic workloads.

These generators produce program families used across tests, examples
and benchmarks:

* :func:`profile_program` — attribute-level workflow where modification
  faithfulness requires strictly more than observational replay;
* :func:`chain_program` — a silent derivation chain of configurable
  depth ending in an event visible to the observer (drives boundedness
  experiments: the minimal faithful run through the chain has exactly
  ``depth + 1`` events);
* :func:`noisy_chain_program` — the chain plus irrelevant relations and
  peers whose activity the observer's explanations must filter out;
* :func:`parallel_chains_program` — several independent chains;
* :func:`churn_program` — create/delete lifecycle churn on a shared key
  space;
* :func:`random_propositional_program` — random ground propositional
  programs for randomized differential testing.

The canonical observer peer is always called ``observer``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..workflow.parser import parse_program
from ..workflow.program import WorkflowProgram

#: Name of the observing peer in all generated workloads.
OBSERVER = "observer"


def profile_program() -> WorkflowProgram:
    """Profiles with separately-filled attributes.

    ``P(K, email, phone)`` is created empty, then ``emailer`` fills the
    email and ``phoner`` the phone.  The observer sees ``K, phone`` of
    ``P`` and the ``Notified`` relation.  The ``notify`` rule (by
    ``emailer``) only reads the email, yet modification faithfulness for
    the observer also drags in the phone-filling event, because it
    modifies an attribute in ``att(P, observer)`` within the same
    lifecycle — a strictly stronger requirement than replayability.
    """
    return parse_program(
        """
        peers owner, emailer, phoner, observer
        relation P(K, email, phone)
        relation Notified(K)
        view P@owner(K, email, phone)
        view P@emailer(K, email)
        view P@phoner(K, phone)
        view P@observer(K, phone)
        view Notified@owner(K)
        view Notified@emailer(K)
        view Notified@observer(K)
        [create]    +P@owner(x, null, null) :-
        [set_email] +P@emailer(x, 'e') :- P@emailer(x, null)
        [set_phone] +P@phoner(x, 'p') :- P@phoner(x, null)
        [notify]    +Notified@emailer(x) :- P@emailer(x, 'e')
        """
    )


def chain_program(depth: int, observer_sees_start: bool = False) -> WorkflowProgram:
    """A silent derivation chain ``S0 → S1 → ... → S<depth>``.

    The observer sees only the last proposition (and optionally the
    first).  Rules: ``start`` inserts ``S0``; ``step<i>`` derives
    ``S<i+1>`` from ``S<i>``; all rules belong to a worker peer.  The
    minimal faithful run reaching a visible event has ``depth + 1``
    events, making the family the canonical h-boundedness stress.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    lines: List[str] = [f"peers worker, {OBSERVER}"]
    for i in range(depth + 1):
        lines.append(f"relation S{i}(K)")
    for i in range(depth + 1):
        lines.append(f"view S{i}@worker(K)")
    lines.append(f"view S{depth}@{OBSERVER}(K)")
    if observer_sees_start and depth > 0:
        lines.append(f"view S0@{OBSERVER}(K)")
    lines.append("[start] +S0@worker(0) :-")
    for i in range(depth):
        lines.append(f"[step{i}] +S{i + 1}@worker(0) :- S{i}@worker(0)")
    return parse_program("\n".join(lines))


def noisy_chain_program(depth: int, noise: int) -> WorkflowProgram:
    """The chain of :func:`chain_program` plus *noise* irrelevant relations.

    Each noise relation ``N<i>`` has its own peer inserting and deleting
    facts the observer never sees; explanations must discard them.
    """
    base_lines: List[str] = [
        "peers worker, "
        + ", ".join(f"noisemaker{i}" for i in range(noise))
        + (", " if noise else "")
        + OBSERVER
    ]
    for i in range(depth + 1):
        base_lines.append(f"relation S{i}(K)")
        base_lines.append(f"view S{i}@worker(K)")
    base_lines.append(f"view S{depth}@{OBSERVER}(K)")
    for i in range(noise):
        base_lines.append(f"relation N{i}(K)")
        base_lines.append(f"view N{i}@noisemaker{i}(K)")
    base_lines.append("[start] +S0@worker(0) :-")
    for i in range(depth):
        base_lines.append(f"[step{i}] +S{i + 1}@worker(0) :- S{i}@worker(0)")
    for i in range(noise):
        base_lines.append(f"[ins_n{i}] +N{i}@noisemaker{i}(0) :-")
        base_lines.append(f"[del_n{i}] -Key[N{i}]@noisemaker{i}(0) :- N{i}@noisemaker{i}(0)")
    return parse_program("\n".join(base_lines))


def parallel_chains_program(chains: int, depth: int) -> WorkflowProgram:
    """*chains* independent silent chains; the observer sees every chain's end."""
    lines: List[str] = [f"peers worker, {OBSERVER}"]
    for c in range(chains):
        for i in range(depth + 1):
            lines.append(f"relation C{c}S{i}(K)")
            lines.append(f"view C{c}S{i}@worker(K)")
        lines.append(f"view C{c}S{depth}@{OBSERVER}(K)")
    for c in range(chains):
        lines.append(f"[start{c}] +C{c}S0@worker(0) :-")
        for i in range(depth):
            lines.append(f"[step{c}_{i}] +C{c}S{i + 1}@worker(0) :- C{c}S{i}@worker(0)")
    return parse_program("\n".join(lines))


def churn_program() -> WorkflowProgram:
    """Create/delete churn: objects cycle through lifecycles.

    ``maker`` creates objects, ``killer`` deletes them, and ``auditor``
    stamps visible audit facts for objects currently alive.  The
    observer sees only the audit relation, so explanations must identify
    the lifecycle each audited object was in.
    """
    return parse_program(
        f"""
        peers maker, killer, auditor, {OBSERVER}
        relation Obj(K)
        relation Audit(K, obj)
        view Obj@maker(K)
        view Obj@killer(K)
        view Obj@auditor(K)
        view Audit@auditor(K, obj)
        view Audit@{OBSERVER}(K, obj)
        [make]  +Obj@maker(x) :-
        [kill]  -Key[Obj]@killer(x) :- Obj@killer(x)
        [audit] +Audit@auditor(a, x) :- Obj@auditor(x)
        """
    )


def random_propositional_program(
    relations: int,
    rules: int,
    peers: int = 3,
    visible_fraction: float = 0.3,
    deletion_fraction: float = 0.2,
    max_body: int = 2,
    seed: Optional[int] = None,
) -> WorkflowProgram:
    """A random ground propositional program.

    Propositions ``P0..P<relations-1>`` are distributed among *peers*
    (each peer sees a random subset; the observer sees roughly
    *visible_fraction* of them).  Rules are random ground insertions or
    deletions guarded by up to *max_body* positive propositions visible
    to the acting peer.  Used for randomized differential testing of
    scenario/faithfulness algorithms.
    """
    rng = random.Random(seed)
    peer_names = [f"p{i}" for i in range(peers)] + [OBSERVER]
    lines: List[str] = ["peers " + ", ".join(peer_names)]
    sees: dict = {peer: set() for peer in peer_names}
    for r in range(relations):
        lines.append(f"relation P{r}(K)")
        holders = rng.sample(range(peers), k=max(1, rng.randint(1, peers)))
        for h in holders:
            sees[f"p{h}"].add(r)
        if rng.random() < visible_fraction:
            sees[OBSERVER].add(r)
    for peer in peer_names:
        for r in sorted(sees[peer]):
            lines.append(f"view P{r}@{peer}(K)")
    made_rules = 0
    attempts = 0
    while made_rules < rules and attempts < rules * 50:
        attempts += 1
        peer_index = rng.randrange(peers)
        peer = f"p{peer_index}"
        visible = sorted(sees[peer])
        if not visible:
            continue
        target = rng.choice(visible)
        body_size = rng.randint(0, max_body)
        body_rels = rng.sample(visible, k=min(body_size, len(visible)))
        if rng.random() < deletion_fraction:
            # Normal form: the deletion needs a body witness on its key.
            if target not in body_rels:
                body_rels = body_rels + [target]
            body = ", ".join(f"P{b}@{peer}(0)" for b in body_rels)
            lines.append(f"[r{made_rules}] -Key[P{target}]@{peer}(0) :- {body}")
        else:
            body = ", ".join(f"P{b}@{peer}(0)" for b in body_rels)
            lines.append(f"[r{made_rules}] +P{target}@{peer}(0) :- {body}".rstrip())
        made_rules += 1
    return parse_program("\n".join(lines))
