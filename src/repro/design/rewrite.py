"""Explicit schema-level ``P → P^t`` rewriting (Theorem 6.7).

The paper compiles transparency enforcement into the program itself:
each relation ``R`` gains a companion ``R^t`` holding per-fact
transparency bits and step provenance, and each rule is expanded by a
case analysis over the provenance arrangements (at most exponentially
many new rules).  The general construction is sketched informally in
the paper; this module implements it *exactly* for a concrete subclass
where the case analysis is tractable and fully mechanical:

* ground, linear-head, normal-form programs over propositional
  (unary) relations — the class used by the paper's own propositional
  gadgets and by the chain/noise workload families;
* rule bodies with at most one literal on a relation invisible to the
  observed peer.

Companion relations are ``Rt(K, obj, stg, dk, S1..Sh)``: a fresh key
per lifecycle, the object key, the stage id at creation, a deletion
mark (``⊥`` live, ``1`` transparently deleted, ``2`` opaquely deleted)
and ``h`` step-provenance slots filled left to right.  The projection
``Π`` drops the ``Stage`` relation and every companion, and is the
identity for the observed peer (Definition 6.6).

For the general class, the instrumented engine of
:mod:`repro.design.enforce` implements the same semantics; differential
tests check the two agree on this subclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..workflow.domain import NULL
from ..workflow.errors import EnforcementError
from ..workflow.events import Event
from ..workflow.program import WorkflowProgram
from ..workflow.queries import Comparison, Const, KeyLiteral, Literal, Query, RelLiteral, Var
from ..workflow.rules import Deletion, Insertion, Rule, UpdateAtom
from ..workflow.runs import Run
from ..workflow.schema import Relation, Schema
from ..workflow.views import CollaborativeSchema, View
from .stage import STAGE_KEY, STAGE_RELATION


class UnsupportedRewrite(EnforcementError):
    """The program falls outside the mechanised rewriting subclass."""


#: Deletion-mark values of the companion relations.
LIVE = NULL
DELETED_TRANSPARENTLY = 1
DELETED_OPAQUELY = 2


def _companion_name(relation: str) -> str:
    return f"{relation}__t"


def is_companion(relation: str) -> bool:
    return relation.endswith("__t") or relation == STAGE_RELATION


@dataclass
class RewriteResult:
    """The rewritten program ``P^t`` plus metadata."""

    source: WorkflowProgram
    peer: str
    h: int
    program: WorkflowProgram

    def companion_relations(self) -> List[str]:
        return [
            name
            for name in self.program.schema.schema.relation_names
            if is_companion(name)
        ]


def _check_supported(program: WorkflowProgram, peer: str) -> None:
    if not program.is_normal_form():
        raise UnsupportedRewrite("program must be in normal form")
    for relation in program.schema.schema:
        if relation.arity != 1:
            raise UnsupportedRewrite(
                f"relation {relation.name} is not propositional (arity 1)"
            )
    for rule in program:
        if not rule.is_linear_head():
            raise UnsupportedRewrite(f"rule {rule.name} is not linear-head")
        if not rule.is_ground():
            raise UnsupportedRewrite(f"rule {rule.name} is not ground")
        invisible = [
            literal
            for literal in rule.body.literals
            if isinstance(literal, (RelLiteral, KeyLiteral))
            and not program.schema.peer_sees(literal.view.relation.name, peer)
        ]
        if len(invisible) > 1:
            raise UnsupportedRewrite(
                f"rule {rule.name} reads {len(invisible)} invisible facts; "
                "the mechanised rewrite supports at most one"
            )


def rewrite_transparent(
    program: WorkflowProgram, peer: str, h: int
) -> RewriteResult:
    """Compile *program* into its transparency-enforcing ``P^t``.

    >>> # result = rewrite_transparent(chain_program(2), "observer", h=3)
    >>> # result.program  # runs of this are the transparent h-bounded runs
    """
    _check_supported(program, peer)
    schema = program.schema
    # ------------------------------------------------------------------
    # Enriched schema: Stage + one companion per invisible relation.
    # ------------------------------------------------------------------
    slots = tuple(f"S{i + 1}" for i in range(h))
    stage_relation = Relation(STAGE_RELATION, ("K", "sid"))
    relations: List[Relation] = list(schema.schema) + [stage_relation]
    companions: Dict[str, Relation] = {}
    for relation in schema.schema:
        if schema.peer_sees(relation.name, peer):
            continue
        companion = Relation(
            _companion_name(relation.name), ("K", "obj", "stg", "dk") + slots
        )
        companions[relation.name] = companion
        relations.append(companion)
    views: List[View] = list(schema.all_views())
    for member in schema.peers:
        views.append(View(stage_relation, member, stage_relation.attributes))
    for relation_name, companion in companions.items():
        # The companion is visible to every peer that sees the original
        # (mirroring the paper's "tA has the same visibility as A"); the
        # observed peer does not see the original, hence no companion
        # view for it either.
        for member in schema.peers:
            if schema.peer_sees(relation_name, member):
                views.append(View(companion, member, companion.attributes))
    new_schema = CollaborativeSchema(
        Schema(relations), schema.peers, views
    )

    def view_of(relation: str, member: str) -> View:
        found = new_schema.view(relation, member)
        if found is None:
            raise UnsupportedRewrite(
                f"peer {member} has no view of {relation}, cannot rewrite"
            )
        return found

    def rehome(literal: Literal) -> Literal:
        if isinstance(literal, RelLiteral):
            return RelLiteral(
                view_of(literal.view.relation.name, literal.view.peer),
                literal.terms,
                literal.positive,
            )
        if isinstance(literal, KeyLiteral):
            return KeyLiteral(
                view_of(literal.view.relation.name, literal.view.peer),
                literal.term,
                literal.positive,
            )
        return literal

    stage_var = Var("_s")
    rules: List[Rule] = [
        Rule(
            "open_stage",
            (Insertion(view_of(STAGE_RELATION, peer), (Const(STAGE_KEY), Var("_z"))),),
            Query([KeyLiteral(view_of(STAGE_RELATION, peer), Const(STAGE_KEY), False)]),
        )
    ]

    def visible_head(rule: Rule) -> bool:
        return schema.peer_sees(rule.head[0].view.relation.name, peer)

    def invisible_body_literal(rule: Rule) -> Optional[Literal]:
        for literal in rule.body.literals:
            if isinstance(literal, (RelLiteral, KeyLiteral)) and not schema.peer_sees(
                literal.view.relation.name, peer
            ):
                return literal
        return None

    for rule in program:
        head = rule.head[0]
        head_relation = head.view.relation.name
        invisible_literal = invisible_body_literal(rule)
        base_body = [rehome(literal) for literal in rule.body.literals]
        owner = rule.peer
        if invisible_literal is None:
            # Body fully visible: the event is transparent with H = {step}.
            for variant in _emit_variants(
                rule,
                head,
                base_body,
                existing_slots=0,
                carried=(),
                has_invisible=False,
                stage_var=stage_var,
                owner=owner,
                visible=visible_head(rule),
                companions=companions,
                view_of=view_of,
                h=h,
                schema=schema,
                peer=peer,
            ):
                rules.append(variant)
        else:
            companion = companions[invisible_literal.view.relation.name]
            for m in range(0, h):
                carried = tuple(Var(f"_p{i}") for i in range(m))
                companion_terms: List[object] = [
                    Var("_kt"),
                    _key_term_of(invisible_literal),
                    stage_var,
                ]
                if isinstance(invisible_literal, RelLiteral) and invisible_literal.positive:
                    companion_terms.append(Const(LIVE))
                elif isinstance(invisible_literal, KeyLiteral) and not invisible_literal.positive:
                    companion_terms.append(Const(DELETED_TRANSPARENTLY))
                else:
                    raise UnsupportedRewrite(
                        f"rule {rule.name}: unsupported invisible literal shape"
                    )
                companion_terms.extend(carried)
                companion_terms.extend(Const(NULL) for _ in range(h - m))
                witness = RelLiteral(
                    view_of(companion.name, owner), tuple(companion_terms), True
                )
                body = base_body + [witness]
                for variant in _emit_variants(
                    rule,
                    head,
                    body,
                    existing_slots=m,
                    carried=carried,
                    has_invisible=True,
                    stage_var=stage_var,
                    owner=owner,
                    visible=visible_head(rule),
                    companions=companions,
                    view_of=view_of,
                    h=h,
                    schema=schema,
                    peer=peer,
                    suffix=f"m{m}",
                ):
                    rules.append(variant)
        # Opaque variants: non-transparent events may update invisible
        # relations freely (inside an open stage), and may re-insert an
        # already-present visible fact — a no-op, hence invisible at the
        # peer and permitted by the "may not modify a visible relation"
        # rule.
        stage_guard = RelLiteral(
            view_of(STAGE_RELATION, owner), (Const(STAGE_KEY), stage_var), True
        )
        if not visible_head(rule):
            opaque_head: PyTuple[UpdateAtom, ...]
            if isinstance(head, Insertion):
                opaque_head = (Insertion(view_of(head_relation, owner), head.terms),)
            else:
                opaque_head = (Deletion(view_of(head_relation, owner), head.term),)
            rules.append(
                Rule(f"{rule.name}#opaque", opaque_head, Query(base_body + [stage_guard]))
            )
        elif isinstance(head, Insertion):
            noop_witness = RelLiteral(
                view_of(head_relation, owner), head.terms, True
            )
            rules.append(
                Rule(
                    f"{rule.name}#noop",
                    (Insertion(view_of(head_relation, owner), head.terms),),
                    Query(base_body + [noop_witness, stage_guard]),
                )
            )
    rewritten = WorkflowProgram(new_schema, rules)
    return RewriteResult(program, peer, h, rewritten)


def _key_term_of(literal: Literal):
    if isinstance(literal, RelLiteral):
        return literal.key_term
    return literal.term


def _emit_variants(
    rule: Rule,
    head: UpdateAtom,
    body: List[Literal],
    existing_slots: int,
    carried: PyTuple[Var, ...],
    has_invisible: bool,
    stage_var: Var,
    owner: str,
    visible: bool,
    companions: Dict[str, Relation],
    view_of,
    h: int,
    schema: CollaborativeSchema,
    peer: str,
    suffix: str = "",
) -> List[Rule]:
    """The transparent variant(s) of one rule for one provenance case.

    ``H`` = carried slot ids + the fresh step id; the variant exists
    only when ``|H| = existing_slots + 1 ≤ h``.  Visible heads update
    the original relation only (and close the stage); invisible heads
    additionally maintain the companion.
    """
    if existing_slots + 1 > h:
        return []
    head_relation = head.view.relation.name
    step_var = Var("_w")
    name = f"{rule.name}#t{suffix}" if suffix else f"{rule.name}#t"
    stage_literal = RelLiteral(
        view_of(STAGE_RELATION, owner), (Const(STAGE_KEY), stage_var), True
    )
    full_body = body + [stage_literal]
    updates: List[UpdateAtom] = []
    if isinstance(head, Insertion):
        updates.append(Insertion(view_of(head_relation, owner), head.terms))
    else:
        updates.append(Deletion(view_of(head_relation, owner), head.term))
    if visible:
        closing = updates + [Deletion(view_of(STAGE_RELATION, owner), Const(STAGE_KEY))]
        variants = [Rule(name, tuple(closing), Query(full_body))]
        if not has_invisible:
            # Fully visible body: the event may also fire with no open
            # stage ("deletes the current fact Stage(0, s) if such
            # exists").  With invisible body facts a stage is required
            # for the companion join, so no such variant exists there.
            nostage_body = body + [
                KeyLiteral(view_of(STAGE_RELATION, owner), Const(STAGE_KEY), False)
            ]
            variants.append(
                Rule(f"{name}#nostage", tuple(updates), Query(nostage_body))
            )
        return variants
    companion = companions[head_relation]
    slots_values: List[object] = list(carried) + [step_var]
    slots_values.extend(Const(NULL) for _ in range(h - len(slots_values)))
    if isinstance(head, Insertion):
        # Creation: a fresh companion row (fresh lifecycle key), guarded
        # by effectiveness (the object must be absent).
        guard = KeyLiteral(view_of(head_relation, owner), head.terms[0], False)
        companion_update = Insertion(
            view_of(companion.name, owner),
            (Var("_nk"), head.terms[0], stage_var, Const(LIVE)) + tuple(slots_values),
        )
        return [
            Rule(name, (updates[0], companion_update), Query(full_body + [guard]))
        ]
    # Transparent deletion: mark the live companion row (bound in the
    # body witness via _kt) as transparently deleted and record H - H0.
    mark = Insertion(
        view_of(companion.name, owner),
        (Var("_kt"), head.term, stage_var, Const(DELETED_TRANSPARENTLY))
        + tuple(carried)
        + (step_var,)
        + tuple(Const(NULL) for _ in range(h - existing_slots - 1)),
    )
    return [Rule(name, (updates[0], mark), Query(full_body))]
