"""Errors of the multi-run workflow service."""

from __future__ import annotations

from ..workflow.errors import WorkflowError


class ServiceError(WorkflowError):
    """Base class for errors raised by the service layer."""


class UnknownRunError(ServiceError):
    """A request referenced a run id the registry does not host."""


class DuplicateRunError(ServiceError):
    """An open request used a run id that is already hosted."""


class AdmissionError(ServiceError):
    """The broker rejected an event at admission (backpressure/budget)."""


class ProtocolError(ServiceError):
    """A malformed request or response line on the wire."""
