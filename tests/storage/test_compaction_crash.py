"""Compaction never loses acknowledged events, even killed mid-swap.

A compaction has exactly one commit point — the atomic manifest
replace.  These tests reconstruct every distinct on-disk state a kill
can leave behind (before the compacted segment is complete, after it
but before the manifest swap, after the swap but before the old
segments are unlinked) and prove the full acknowledged history is
recovered from each of them.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import fast_recover
from repro.runtime.journal import begin_record, event_record, snapshot_record
from repro.storage import SegmentBackend, compact_records
from repro.storage.segment import _frame
from repro.workflow import Event, FreshValue, Var, execute
from repro.workloads.generators import churn_program


def make_event(program, index):
    return Event(program.rule("make"), {Var("x"): FreshValue(1000 + index)})


def populated_store(tmp_path, events=30):
    """A multi-segment store holding *events* acknowledged events."""
    program = churn_program()
    run = execute(program, [make_event(program, i) for i in range(events)])
    backend = SegmentBackend(tmp_path, segment_bytes=1024)
    store = backend.store("r1")
    store.append(begin_record(run.initial))
    for index, event in enumerate(run.events):
        store.append(event_record(index, event))
        if (index + 1) % 10 == 0:
            store.append(snapshot_record(index, index + 1, run.final_instance))
    store.sync()
    return program, backend, store, run


def acked_events(records):
    return [r for r in records if r["type"] == "event"]


def recovered_records(tmp_path, run_id="r1"):
    backend = SegmentBackend(tmp_path, segment_bytes=1024)
    return backend.read_records(run_id)


class TestKillDuringCompaction:
    def test_kill_before_compacted_segment_complete(self, tmp_path):
        program, backend, store, run = populated_store(tmp_path)
        before, _ = store.read()
        run_dir = store.path
        # The compacted segment was only half-written when the process
        # died: it is not in the manifest, so it must be swept and the
        # old segments must win.
        partial = run_dir / "seg-00000099.log"
        partial.write_text(_frame(json.dumps(before[0], sort_keys=True))[: 20])
        store.close()
        after, warnings = recovered_records(tmp_path)
        assert acked_events(after) == acked_events(before)
        assert not partial.exists()

    def test_kill_after_swap_before_unlink(self, tmp_path):
        program, backend, store, run = populated_store(tmp_path)
        before, _ = store.read()
        run_dir = store.path
        old_segments = [p for p in run_dir.iterdir() if p.name.startswith("seg-")]
        # Write the compacted segment and commit the manifest, then
        # "die" before unlinking the old segments.
        kept = compact_records(before)
        compacted = run_dir / "seg-00000099.log"
        compacted.write_text(
            "".join(_frame(json.dumps(r, sort_keys=True)) for r in kept)
        )
        manifest = run_dir / "MANIFEST"
        state = json.loads(manifest.read_text())
        state["segments"] = [compacted.name]
        manifest.write_text(json.dumps(state))
        store.close()
        after, warnings = recovered_records(tmp_path)
        assert acked_events(after) == acked_events(before)
        assert warnings == []
        # The stale segments are orphans now; reopening swept them.
        for old in old_segments:
            assert not old.exists()

    def test_compaction_then_kill_replays_identically(self, tmp_path):
        """fast_recover over a compacted store equals the uncompacted one."""
        program, backend, store, run = populated_store(tmp_path)
        before, _ = store.read()
        resumed_before = fast_recover(program, before)
        store.compact()
        store.close()
        after, warnings = recovered_records(tmp_path)
        assert warnings == []
        resumed_after = fast_recover(program, after)
        assert resumed_after.instance == resumed_before.instance
        assert resumed_after.events == resumed_before.events
        assert len(resumed_after.events) == 30
        # The compacted journal resumes from the latest snapshot: the
        # engine replays only the tail, never the whole history.
        assert resumed_after.engine_replayed == 30 - resumed_after.snapshot_position

    def test_every_acked_event_survives_any_single_kill_point(self, tmp_path):
        """Walk the compaction algorithm manually, checking recovery at
        each intermediate disk state."""
        program, backend, store, run = populated_store(tmp_path)
        before, _ = store.read()
        store.close()

        # State A: nothing happened yet.
        after, _ = recovered_records(tmp_path)
        assert acked_events(after) == acked_events(before)

        # State B: compacted segment fully written, manifest still old.
        kept = compact_records(before)
        run_dir = next(SegmentBackend(tmp_path, segment_bytes=1024).root.iterdir())
        compacted = run_dir / "seg-00000077.log"
        compacted.write_text(
            "".join(_frame(json.dumps(r, sort_keys=True)) for r in kept)
        )
        after, _ = recovered_records(tmp_path)
        assert acked_events(after) == acked_events(before)

        # State C: manifest swapped (the commit point).
        compacted.write_text(
            "".join(_frame(json.dumps(r, sort_keys=True)) for r in kept)
        )
        manifest = run_dir / "MANIFEST"
        state = json.loads(manifest.read_text())
        state["segments"] = [compacted.name]
        manifest.write_text(json.dumps(state))
        after, _ = recovered_records(tmp_path)
        assert acked_events(after) == acked_events(before)
