"""CI/CD deployment-pipeline family.

A ``dev`` peer pushes commits, a ``ci`` peer builds them and walks them
through ``stages`` test stages (or flags a flake), and one dedicated
deployer peer per service promotes fully-tested commits to that
service's ``Live<j>`` relation.  A late ``Fail`` triggers per-service
rollbacks — keyed deletions, so the family exercises retraction of
previously visible facts.

The ``oncall`` peer is the observer: they always see what is live on
every service plus failures; the ``visibility`` knob slides whether the
upstream pipeline (commits, builds, final test passes) is disclosed.
Because each service has its own relation and deployer, the family scales
peer-fan-out with the ``services`` knob.
"""

from __future__ import annotations

from typing import List

from ...workflow.parser import parse_program
from ...workflow.program import WorkflowProgram
from .base import WorkflowFamily, optional_views, register

OBSERVER = "oncall"


def cicd_program(
    stages: int = 3,
    services: int = 2,
    visibility: float = 0.5,
) -> WorkflowProgram:
    """Build the CI/CD pipeline program for the given knobs."""
    if stages < 1 or services < 1:
        raise ValueError("stages and services must both be >= 1")
    deployer_peers = [f"deployer{j}" for j in range(services)]
    lines: List[str] = [
        "peers dev, ci, " + ", ".join(deployer_peers) + f", {OBSERVER}",
        "relation Commit(K)",
        "relation Build(K)",
        "relation Fail(K)",
    ]
    for s in range(stages):
        lines.append(f"relation Pass{s}(K)")
    for j in range(services):
        lines.append(f"relation Live{j}(K)")
    lines.append("view Commit@dev(K)")
    lines.append("view Build@dev(K)")
    lines.append("view Fail@dev(K)")
    lines.append("view Commit@ci(K)")
    lines.append("view Build@ci(K)")
    lines.append("view Fail@ci(K)")
    for s in range(stages):
        lines.append(f"view Pass{s}@ci(K)")
    for j, peer in enumerate(deployer_peers):
        lines.append(f"view Pass{stages - 1}@{peer}(K)")
        lines.append(f"view Fail@{peer}(K)")
        lines.append(f"view Live{j}@{peer}(K)")
    # Oncall always sees what is live and what failed ...
    for j in range(services):
        lines.append(f"view Live{j}@{OBSERVER}(K)")
    lines.append(f"view Fail@{OBSERVER}(K)")
    # ... and visibility-many upstream pipeline relations.
    lines.extend(
        optional_views(
            [
                ("Commit", "K"),
                (f"Pass{stages - 1}", "K"),
                ("Build", "K"),
            ],
            OBSERVER,
            visibility,
        )
    )
    lines.append("[push] +Commit@dev(c) :-")
    lines.append(
        "[build] +Build@ci(x) :- Commit@ci(x), not Fail@ci(x), not Key[Build]@ci(x)"
    )
    lines.append(
        "[test0] +Pass0@ci(x) :- Build@ci(x), not Fail@ci(x), not Key[Pass0]@ci(x)"
    )
    for s in range(1, stages):
        lines.append(
            f"[test{s}] +Pass{s}@ci(x) :- Pass{s - 1}@ci(x), not Fail@ci(x), "
            f"not Key[Pass{s}]@ci(x)"
        )
    lines.append(
        f"[flake] +Fail@ci(x) :- Build@ci(x), not Pass{stages - 1}@ci(x), "
        "not Fail@ci(x)"
    )
    for j, peer in enumerate(deployer_peers):
        lines.append(
            f"[deploy_s{j}] +Live{j}@{peer}(x) :- Pass{stages - 1}@{peer}(x), "
            f"not Fail@{peer}(x), not Key[Live{j}]@{peer}(x)"
        )
        lines.append(
            f"[rollback_s{j}] -Key[Live{j}]@{peer}(x) :- "
            f"Live{j}@{peer}(x), Fail@{peer}(x)"
        )
    return parse_program("\n".join(lines))


CICD = register(
    WorkflowFamily(
        name="cicd",
        summary="commit build/test pipeline with per-service deploys and rollbacks",
        observer=OBSERVER,
        defaults={"stages": 3, "services": 2, "visibility": 0.5},
        builder=cicd_program,
        weights={
            "push": 0.35,
            "flake": 0.25,
            **{f"deploy_s{j}": 1.5 for j in range(64)},
        },
    )
)
