"""Minimum p-faithful runs on arbitrary initial instances (Section 5).

A run ``α`` on initial instance ``I`` is a *minimum p-faithful run* when
``α = T_p^ω(α, v̄)`` for ``v̄`` the events of ``α`` visible at ``p`` —
i.e. it is its own minimum p-faithful scenario.  Transparency and
boundedness quantify over the minimum p-faithful runs in which all
events but the last are silent at ``p``; this module searches for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..runtime.budget import Budget, checkpoint
from ..workflow.domain import FreshValueSource
from ..workflow.engine import apply_event
from ..workflow.enumerate import applicable_events
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.runs import Run
from ..core.faithful import FaithfulnessAnalysis


def run_on(
    program: WorkflowProgram, events: Sequence[Event], initial: Instance
) -> Optional[Run]:
    """The run of *events* on *initial*, or None if not applicable.

    Freshness is not enforced here; the callers manage ``new(α)``
    disjointness hypotheses explicitly, following Lemma A.3.
    """
    instance = initial
    instances: List[Instance] = []
    for event in events:
        try:
            instance = apply_event(program.schema, instance, event, None)
        except Exception:
            return None
        instances.append(instance)
    return Run(program, initial, list(events), instances)


def is_minimum_faithful_run(run: Run, peer: str) -> bool:
    """Is *run* its own minimum p-faithful scenario?"""
    analysis = FaithfulnessAnalysis(run, peer)
    visible = run.visible_indices(peer)
    return analysis.closure(visible) == frozenset(range(len(run)))


def is_mostly_silent(run: Run, peer: str) -> bool:
    """All events but the last are silent at *peer*; the last is visible."""
    if not len(run):
        return False
    if not run.visible_at(peer, len(run) - 1):
        return False
    return all(not run.visible_at(peer, i) for i in range(len(run) - 1))


@dataclass(frozen=True)
class SilentFaithfulRun:
    """A minimum p-faithful run whose only visible event is the last."""

    initial: Instance
    run: Run

    @property
    def events(self) -> PyTuple[Event, ...]:
        return self.run.events

    def __len__(self) -> int:
        return len(self.run)


def iter_silent_faithful_runs(
    program: WorkflowProgram,
    peer: str,
    initial: Instance,
    max_length: int,
    fresh_start: int = 50_000,
    skip_noop_silent: bool = True,
    budget: Optional[Budget] = None,
) -> Iterator[SilentFaithfulRun]:
    """All minimum p-faithful, mostly-silent runs on *initial*.

    Performs a DFS over applicable events: silent events extend the
    prefix, visible events terminate a candidate, and each candidate is
    kept iff it is a minimum p-faithful run.  Fresh values for head-only
    variables are minted canonically (sufficient up to isomorphism,
    Lemma A.2).  Silent events that do not change the instance are
    skipped by default: they can never belong to a minimum faithful run
    (they are neither boundary nor modification events, hence never
    required).
    """
    schema = program.schema

    def visible(event: Event, before: Instance, after: Instance) -> bool:
        if event.peer == peer:
            return True
        return schema.view_instance(before, peer) != schema.view_instance(after, peer)

    def recurse(
        prefix: List[Event], instance: Instance, fresh_index: int
    ) -> Iterator[SilentFaithfulRun]:
        checkpoint(budget, depth=len(prefix))
        if len(prefix) >= max_length:
            return
        source = FreshValueSource(start=fresh_index)
        source.observe(program.constants())
        source.observe(instance.active_domain())
        source.observe(initial.active_domain())
        for event in applicable_events(program, instance, source):
            successor = apply_event(schema, instance, event, None, check_body=False)
            if visible(event, instance, successor):
                candidate = run_on(program, prefix + [event], initial)
                if candidate is not None and is_minimum_faithful_run(candidate, peer):
                    yield SilentFaithfulRun(initial, candidate)
            else:
                if skip_noop_silent and successor == instance:
                    continue
                yield from recurse(prefix + [event], successor, fresh_index + 64)

    yield from recurse([], initial, fresh_start)


def longest_silent_faithful_run(
    program: WorkflowProgram,
    peer: str,
    initial: Instance,
    max_length: int,
    budget: Optional[Budget] = None,
) -> Optional[SilentFaithfulRun]:
    """The longest silent minimum-faithful run on *initial*, up to the bound."""
    best: Optional[SilentFaithfulRun] = None
    for candidate in iter_silent_faithful_runs(
        program, peer, initial, max_length, budget=budget
    ):
        if best is None or len(candidate) > len(best):
            best = candidate
    return best
