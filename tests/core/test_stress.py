"""Stress tests: the core stays correct and tractable on long runs."""

import time

import pytest

from repro.core.faithful import minimal_faithful_scenario
from repro.core.incremental import IncrementalExplainer
from repro.core.scenarios import is_scenario
from repro.workflow import RunGenerator
from repro.workloads import churn_program, hiring_program, noisy_chain_program


class TestLongRuns:
    def test_churn_300_events(self):
        program = churn_program()
        run = RunGenerator(program, seed=1).random_run(300)
        start = time.perf_counter()
        scenario = minimal_faithful_scenario(run, "observer")
        elapsed = time.perf_counter() - start
        assert is_scenario(run, "observer", scenario.indices)
        assert elapsed < 30.0  # PTIME in practice, with a wide margin

    def test_incremental_300_events_matches(self):
        program = hiring_program()
        run = RunGenerator(program, seed=2).random_run(300)
        explainer = IncrementalExplainer(program, "sue")
        for event in run.events:
            explainer.extend(event)
        assert (
            explainer.minimal_scenario()
            == minimal_faithful_scenario(run, "sue").indices
        )

    def test_noise_is_discarded_at_scale(self):
        program = noisy_chain_program(depth=3, noise=4)
        run = RunGenerator(program, seed=3).random_run(200)
        scenario = minimal_faithful_scenario(run, "observer")
        noise_events = [
            i
            for i in scenario.indices
            if run.events[i].rule.name.startswith(("ins_n", "del_n"))
        ]
        assert noise_events == []

    def test_explanation_sizes_stay_small_on_noise(self):
        program = noisy_chain_program(depth=2, noise=5)
        run = RunGenerator(program, seed=4).random_run(250)
        scenario = minimal_faithful_scenario(run, "observer")
        # Only the chain (3 events) can ever matter to the observer;
        # re-derivations are no-ops and never required.
        assert len(scenario.indices) <= 3
