"""Differential proof: cluster responses ≡ single-process responses.

One scripted workload is driven twice — against a plain
:class:`ServiceServer` and against a cluster of 1/2/4 shard servers
behind the router — and every response (opens, per-event submit acks,
views for every peer, explains, applicable sets, per-run stats) must be
**bit-identical**, not merely equivalent: the cluster is a transparent
proxy, so a client can never tell how many shards sit behind the
router.  This works because placement is name-based (ring), every
worker runs the same registry shard count, and view-cache versions
fast-forward identically through recovery.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Tuple

import pytest

from cluster_harness import in_process_cluster
from repro.service import ServiceClient, ServiceServer, WorkflowService
from repro.workflow import RunGenerator
from repro.workflow.serialization import event_to_dict
from repro.workloads.generators import churn_program

RUNS = 6
EVENTS = 8


async def drive(program, client: ServiceClient) -> List[Tuple[str, Dict[str, Any]]]:
    """The scripted workload; returns labelled responses in order."""
    transcript: List[Tuple[str, Dict[str, Any]]] = []

    def note(label: str, response: Dict[str, Any]) -> None:
        transcript.append((label, response))

    runs = {
        f"diff-{index}": list(
            RunGenerator(program, seed=31 * index + 7).random_run(EVENTS).events
        )
        for index in range(RUNS)
    }
    for run_id, events in runs.items():
        note(f"open:{run_id}", await client.request(op="open", run=run_id))
    # Interleave submissions round-robin so the cluster sees concurrent
    # traffic patterns, not one run at a time.
    for position in range(EVENTS):
        for run_id, events in runs.items():
            note(
                f"submit:{run_id}:{position}",
                await client.request(
                    op="submit", run=run_id, event=event_to_dict(events[position])
                ),
            )
    for run_id in runs:
        for peer in program.schema.peers:
            note(
                f"view:{run_id}:{peer}",
                await client.request(op="view", run=run_id, peer=peer),
            )
            note(
                f"explain:{run_id}:{peer}",
                await client.request(op="explain", run=run_id, peer=peer),
            )
        note(
            f"applicable:{run_id}",
            await client.request(op="applicable", run=run_id),
        )
        note(f"stats:{run_id}", await client.request(op="stats", run=run_id))
        note(f"close:{run_id}", await client.request(op="close", run=run_id))
    return transcript


def single_process_transcript(program):
    async def main():
        service = WorkflowService(program)
        server = ServiceServer(service, port=0)
        await server.start()
        client = await ServiceClient.connect(server.host, server.port)
        try:
            return await drive(program, client)
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(main())


def cluster_transcript(program, shard_count):
    async def main():
        names = [f"shard-{index}" for index in range(shard_count)]
        async with in_process_cluster(program, names) as (router_server, shards):
            host, port = router_server.address
            client = await ServiceClient.connect(host, port)
            try:
                return await drive(program, client)
            finally:
                await client.close()

    return asyncio.run(main())


@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_cluster_transcript_bit_identical(shard_count):
    program = churn_program()
    reference = single_process_transcript(program)
    clustered = cluster_transcript(program, shard_count)
    assert len(reference) == len(clustered)
    for (label, expected), (_, actual) in zip(reference, clustered):
        assert actual == expected, f"divergence at {label}"


def test_transcript_is_nontrivial():
    # Guard against the differential test silently comparing failures:
    # the reference transcript must be all-ok and cover every op family.
    program = churn_program()
    reference = single_process_transcript(program)
    assert all(response.get("ok") for _, response in reference)
    families = {label.split(":")[0] for label, _ in reference}
    assert families == {
        "open",
        "submit",
        "view",
        "explain",
        "applicable",
        "stats",
        "close",
    }
