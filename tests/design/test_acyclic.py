"""Tests for boundedness by acyclicity (Theorem 6.3)."""

import pytest

from repro.design.acyclic import analyze_acyclicity, is_p_acyclic, p_graph
from repro.transparency.bounded import SearchBudget, smallest_bound
from repro.workflow.parser import parse_program
from repro.workloads.generators import chain_program


class TestPGraph:
    def test_chain_edges(self):
        program = chain_program(2)
        graph = p_graph(program, "observer")
        # step0: S1 depends on S0 (invisible); step1: S2 on S1.
        assert graph.has_edge("S1", "S0")
        assert graph.has_edge("S2", "S1")
        assert not graph.has_edge("S0", "S1")

    def test_visible_body_relations_excluded(self, hiring):
        graph = p_graph(hiring, "sue")
        # approve reads Cleared (visible at sue): no edge for it...
        # cfook's body Cleared is visible, so cfoOK -> Cleared absent.
        assert not graph.has_edge("cfoOK", "Cleared")
        # hire reads Approved (invisible): edge Hire -> Approved.
        assert graph.has_edge("Hire", "Approved")


class TestAcyclicity:
    def test_chain_acyclic(self):
        report = analyze_acyclicity(chain_program(3), "observer")
        assert report.acyclic
        assert report.longest_path == 3
        assert report.bound is not None and report.bound >= 4

    def test_cycle_detected(self):
        program = parse_program(
            """
            peers p, q
            relation Vis(K)
            relation A(K)
            relation B(K)
            view Vis@p(K)
            view Vis@q(K)
            view A@q(K)
            view B@q(K)
            [va] +A@q(0) :- B@q(0)
            [vb] +B@q(0) :- A@q(0)
            [show] +Vis@q(0) :- A@q(0)
            """
        )
        report = analyze_acyclicity(program, "p")
        assert not report.acyclic
        assert report.cycle is not None
        assert not is_p_acyclic(program, "p")

    def test_unreachable_cycle_harmless(self):
        # A cycle among relations not reachable from any p-visible
        # relation does not break p-acyclicity.
        program = parse_program(
            """
            peers p, q
            relation Vis(K)
            relation A(K)
            relation B(K)
            view Vis@p(K)
            view Vis@q(K)
            view A@q(K)
            view B@q(K)
            [va] +A@q(0) :- B@q(0)
            [vb] +B@q(0) :- A@q(0)
            [show] +Vis@q(0) :-
            """
        )
        assert is_p_acyclic(program, "p")


class TestBoundSoundness:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_bound_dominates_actual(self, depth):
        """Theorem 6.3: the (ab+1)^g bound is an upper bound on the
        actual smallest h (checked with the Theorem 5.10 decision)."""
        program = chain_program(depth)
        report = analyze_acyclicity(program, "observer")
        assert report.acyclic
        actual = smallest_bound(
            program, "observer", depth + 2, SearchBudget(pool_extra=0)
        )
        assert actual is not None
        assert actual <= report.bound
        assert report.bound <= report.coarse_bound
