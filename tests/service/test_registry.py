"""Sharded registry: hosting, sharding, journal durability, crash recovery."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.journal import journal_path, list_journals, recover_run
from repro.service.errors import DuplicateRunError, ServiceError, UnknownRunError
from repro.service.registry import ShardedRunRegistry
from repro.workflow import Event, FreshValue, RunGenerator, Var, execute
from repro.workloads.generators import churn_program


def make_event(program, index):
    return Event(program.rule("make"), {Var("x"): FreshValue(1000 + index)})


class TestHosting:
    def test_open_get_close(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            hosted, recovered = await registry.open("r1")
            assert not recovered
            assert await registry.get("r1") is hosted
            assert registry.hosted_count() == 1
            await registry.close("r1")
            assert registry.hosted_count() == 0
            with pytest.raises(UnknownRunError):
                await registry.get("r1")

        asyncio.run(scenario())

    def test_duplicate_open_rejected(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            await registry.open("r1")
            with pytest.raises(DuplicateRunError):
                await registry.open("r1")

        asyncio.run(scenario())

    def test_sharding_is_stable_and_covers_all_runs(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program, shards=4)
            run_ids = [f"run-{i}" for i in range(32)]
            for run_id in run_ids:
                await registry.open(run_id)
            assert sorted(registry.run_ids()) == sorted(run_ids)
            assert sum(registry.shard_sizes()) == 32
            # crc32-based placement is a pure function of the run id.
            for run_id in run_ids:
                assert registry.shard_index(run_id) == registry.shard_index(run_id)
                assert 0 <= registry.shard_index(run_id) < 4
            # With 32 ids over 4 shards the spread must not collapse.
            assert max(registry.shard_sizes()) < 32

        asyncio.run(scenario())


class TestJournalDurability:
    def test_reopen_recovers_from_journal(self, tmp_path):
        """A registry restart replays hosted runs from their journals."""
        program = churn_program()
        run = RunGenerator(program, seed=5).random_run(12)

        async def first_life():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            hosted, _ = await registry.open("r")
            for event in run.events:
                hosted.apply(event)
            # No close: simulate the process dying with the journal behind.
            return hosted.instance

        async def second_life():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            hosted, recovered = await registry.open("r")
            assert recovered
            return hosted.instance, hosted.applied

        final = asyncio.run(first_life())
        instance, applied = asyncio.run(second_life())
        assert applied == len(run.events)
        assert instance == final

    def test_recovered_caches_match_scratch_views(self, tmp_path):
        program = churn_program()
        run = RunGenerator(program, seed=9).random_run(10)

        async def scenario():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            hosted, _ = await registry.open("r")
            for event in run.events:
                hosted.apply(event)
            await registry.close("r", status="suspended")

            reborn = ShardedRunRegistry(program, journal_dir=tmp_path)
            hosted, recovered = await reborn.open("r")
            assert recovered
            for peer in program.schema.peers:
                assert hosted.view_instance(peer) == program.schema.view_instance(
                    hosted.instance, peer
                )

        asyncio.run(scenario())

    def test_journal_files_follow_the_shared_layout(self, tmp_path):
        """The registry writes exactly where journal_path says it will —
        the invariant `repro recover --journal-dir` relies on."""
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            for run_id in ("plain", "with space", "nested/run:id"):
                hosted, _ = await registry.open(run_id)
                hosted.apply(make_event(program, hash(run_id) % 100))
                await registry.close(run_id)

        asyncio.run(scenario())
        found = list_journals(tmp_path)
        assert sorted(found) == ["nested/run:id", "plain", "with space"]
        for run_id, path in found.items():
            assert path == journal_path(tmp_path, run_id)
            recovered = recover_run(program, path)
            assert recovered.status == "completed"
            assert recovered.events_replayed == 1

    def test_crash_and_recover_restores_state_and_counts(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program, journal_dir=tmp_path)
            hosted, _ = await registry.open("r")
            events = [make_event(program, i) for i in range(6)]
            for event in events[:4]:
                hosted.apply(event)
            before = hosted.instance
            reborn = await registry.crash_and_recover("r")
            assert reborn is not hosted, "crash must abandon in-memory state"
            assert reborn.instance == before
            assert reborn.applied == 4
            assert reborn.recoveries == 1
            # The recovered run keeps applying.
            for event in events[4:]:
                reborn.apply(event)
            replayed = execute(program, events, check_freshness=False)
            assert reborn.instance == replayed.final_instance

        asyncio.run(scenario())

    def test_crash_without_journal_dir_is_an_error(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(program)
            await registry.open("r")
            with pytest.raises(ServiceError):
                await registry.crash_and_recover("r")

        asyncio.run(scenario())
