"""Tests for update atoms and rule well-formedness."""

import pytest

from repro.workflow.errors import RuleError
from repro.workflow.queries import Comparison, Const, Query, RelLiteral, Var
from repro.workflow.rules import Deletion, Insertion, Rule
from repro.workflow.schema import Relation, Schema
from repro.workflow.views import View

R = Relation("R", ("K", "A"))
S = Relation("S", ("K", "A"))
R_at_p = View(R, "p", ("K", "A"))
S_at_p = View(S, "p", ("K", "A"))
R_at_q = View(R, "q", ("K", "A"))

x, y, z = Var("x"), Var("y"), Var("z")


class TestUpdateAtoms:
    def test_insertion_arity_checked(self):
        with pytest.raises(RuleError):
            Insertion(R_at_p, (x,))

    def test_insertion_key_term(self):
        assert Insertion(R_at_p, (x, y)).key_term == x

    def test_deletion_key_term(self):
        assert Deletion(R_at_p, x).key_term == x

    def test_substitution(self):
        ins = Insertion(R_at_p, (x, y)).substitute({x: 1, y: 2})
        assert ins.terms == (Const(1), Const(2))
        dele = Deletion(R_at_p, x).substitute({x: 1})
        assert dele.term == Const(1)


class TestRuleFormation:
    def test_simple_rule(self):
        rule = Rule("r", (Insertion(R_at_p, (x, y)),), Query([RelLiteral(S_at_p, (x, y))]))
        assert rule.peer == "p"
        assert rule.head_only_variables() == frozenset()

    def test_head_only_variables(self):
        rule = Rule("r", (Insertion(R_at_p, (x, y)),), Query(()))
        assert rule.head_only_variables() == {x, y}

    def test_empty_head_rejected(self):
        with pytest.raises(RuleError):
            Rule("r", (), Query(()))

    def test_mixed_peer_head_rejected(self):
        with pytest.raises(RuleError):
            Rule("r", (Insertion(R_at_p, (x, y)), Insertion(R_at_q, (x, y))), Query(()))

    def test_body_of_other_peer_rejected(self):
        with pytest.raises(RuleError):
            Rule("r", (Insertion(R_at_p, (x, y)),), Query([RelLiteral(R_at_q, (x, y))]))

    def test_same_constant_keys_rejected(self):
        with pytest.raises(RuleError):
            Rule(
                "r",
                (Insertion(R_at_p, (Const(0), x)), Deletion(R_at_p, Const(0))),
                Query([RelLiteral(R_at_p, (Const(0), x))]),
            )

    def test_distinct_constant_keys_allowed(self):
        Rule(
            "r",
            (Insertion(R_at_p, (Const(0), x)), Deletion(R_at_p, Const(1))),
            Query([RelLiteral(R_at_p, (Const(1), x))]),
        )

    def test_variable_keys_require_inequality(self):
        body_without = Query([RelLiteral(R_at_p, (x, y)), RelLiteral(R_at_p, (z, y))])
        with pytest.raises(RuleError):
            Rule("r", (Deletion(R_at_p, x), Insertion(R_at_p, (z, y))), body_without)

    def test_variable_keys_with_inequality_allowed(self):
        body = Query(
            [
                RelLiteral(R_at_p, (x, y)),
                RelLiteral(R_at_p, (z, y)),
                Comparison(x, z, positive=False),
            ]
        )
        rule = Rule("r", (Deletion(R_at_p, x), Insertion(R_at_p, (z, y))), body)
        assert len(rule.deletions()) == 1
        assert len(rule.insertions()) == 1

    def test_updates_of_distinct_relations_unconstrained(self):
        Rule(
            "r",
            (Insertion(R_at_p, (x, y)), Insertion(S_at_p, (x, y))),
            Query([RelLiteral(R_at_p, (x, y))]),
        )


class TestRuleProperties:
    def test_constants(self):
        rule = Rule(
            "r",
            (Insertion(R_at_p, (Const(0), Const("v"))),),
            Query([RelLiteral(S_at_p, (x, Const("w")))]),
        )
        assert rule.constants() == {0, "v", "w"}

    def test_is_linear_head(self):
        single = Rule("r", (Insertion(R_at_p, (x, y)),), Query(()))
        assert single.is_linear_head()

    def test_is_ground(self):
        assert Rule("r", (Insertion(R_at_p, (Const(0), Const(1))),), Query(())).is_ground()
        assert not Rule("r", (Insertion(R_at_p, (x, y)),), Query(())).is_ground()

    def test_deletion_has_witness(self):
        body = Query([RelLiteral(R_at_p, (x, y))])
        rule = Rule("r", (Deletion(R_at_p, x),), body)
        assert rule.deletion_has_witness(rule.deletions()[0])
        bare = Rule("r2", (Deletion(R_at_p, Const(0)),), Query(()))
        assert not bare.deletion_has_witness(bare.deletions()[0])
