"""Events: rule instantiations.

An event is the instantiation ``να`` of a rule ``α`` by a valuation
``ν``.  Events carry their ground body literals and ground head updates;
the set ``K(R, e)`` of key values of relation ``R`` occurring in an event
(Section 4) is derived from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from .domain import is_null
from .errors import EventError
from .queries import Comparison, Const, KeyLiteral, Literal, Query, RelLiteral, Var, term_value
from .rules import Deletion, Insertion, Rule, UpdateAtom


@dataclass(frozen=True)
class Event:
    """The instantiation of *rule* by *valuation*.

    The valuation must assign every variable of the rule (body variables
    and head-only variables alike).
    """

    rule: Rule
    valuation: PyTuple[PyTuple[Var, object], ...]

    def __init__(self, rule: Rule, valuation: Mapping[Var, object]) -> None:
        missing = rule.variables() - set(valuation)
        if missing:
            raise EventError(
                f"valuation for rule {rule.name} misses variables "
                f"{sorted(v.name for v in missing)}"
            )
        items = tuple(sorted(
            ((var, value) for var, value in valuation.items() if var in rule.variables()),
            key=lambda item: item[0].name,
        ))
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "valuation", items)

    @property
    def peer(self) -> str:
        """``peer(e)``: the peer performing the event."""
        return self.rule.peer

    def valuation_dict(self) -> Dict[Var, object]:
        return dict(self.valuation)

    # ------------------------------------------------------------------
    # Ground body and head
    # ------------------------------------------------------------------

    def ground_body(self) -> PyTuple[Literal, ...]:
        """The instantiated body literals."""
        valuation = self.valuation_dict()
        return tuple(lit.substitute(valuation) for lit in self.rule.body.literals)

    def ground_head(self) -> PyTuple[UpdateAtom, ...]:
        """The instantiated update atoms."""
        valuation = self.valuation_dict()
        return tuple(atom.substitute(valuation) for atom in self.rule.head)

    def ground_insertions(self) -> PyTuple[Insertion, ...]:
        return tuple(a for a in self.ground_head() if isinstance(a, Insertion))

    def ground_deletions(self) -> PyTuple[Deletion, ...]:
        return tuple(a for a in self.ground_head() if isinstance(a, Deletion))

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def head_only_values(self) -> FrozenSet[object]:
        """Values assigned to head-only variables (must be globally fresh)."""
        valuation = self.valuation_dict()
        return frozenset(valuation[v] for v in self.rule.head_only_variables())

    def values(self) -> FrozenSet[object]:
        """All non-null values occurring in the event (``adom`` contribution)."""
        out: Set[object] = set()
        for _, value in self.valuation:
            if not is_null(value):
                out.add(value)
        for atom in self.rule.head:
            out.update(atom.constants())
        out.update(self.rule.body.constants())
        return frozenset(out)

    def new_values(self) -> FrozenSet[object]:
        """``new(e)``: values occurring in the head but not the body.

        For an instantiated rule these are exactly the values of the
        head-only variables (which the run semantics forces to be fresh).
        """
        return frozenset(v for v in self.head_only_values() if not is_null(v))

    # ------------------------------------------------------------------
    # K(R, e): keys of a relation occurring in the event
    # ------------------------------------------------------------------

    def keys_of(self, relation: str) -> FrozenSet[object]:
        """``K(R, e)``: values occurring as keys of *relation* in the event.

        A value occurs as a key of ``R`` if it instantiates the key
        position of a body literal ``R@q(k, ū)`` or ``(¬)Key_R@q(k)``, or
        the key of a head update ``+R@q(k, ū)`` / ``−Key_R@q(k)``.
        """
        keys: Set[object] = set()
        for literal in self.ground_body():
            if isinstance(literal, RelLiteral) and literal.view.relation.name == relation:
                keys.add(literal.key_term.value)
            elif isinstance(literal, KeyLiteral) and literal.view.relation.name == relation:
                keys.add(literal.term.value)
        for atom in self.ground_head():
            if atom.view.relation.name == relation:
                keys.add(atom.key_term.value)
        return frozenset(k for k in keys if not is_null(k))

    def relations_mentioned(self) -> FrozenSet[str]:
        """Names of relations whose keys occur in the event."""
        names: Set[str] = set()
        for literal in self.rule.body.literals:
            view = getattr(literal, "view", None)
            if view is not None:
                names.add(view.relation.name)
        for atom in self.rule.head:
            names.add(atom.view.relation.name)
        return frozenset(names)

    def key_occurrences(self) -> Dict[str, FrozenSet[object]]:
        """Mapping relation name -> ``K(R, e)`` for relations in the event."""
        return {name: self.keys_of(name) for name in self.relations_mentioned()}

    def __repr__(self) -> str:
        assignment = ", ".join(f"{var.name}={value!r}" for var, value in self.valuation)
        return f"{self.rule.name}@{self.peer}[{assignment}]"
