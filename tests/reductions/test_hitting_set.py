"""Tests for the Theorem 3.3 reduction and its reference solvers."""

import pytest

from repro.core.scenarios import is_scenario
from repro.reductions.hitting_set import (
    HittingSetInstance,
    brute_force_hitting_set,
    greedy_hitting_set,
    hitting_set_to_workflow,
    random_instance,
)


class TestInstance:
    def test_is_hitting_set(self):
        instance = HittingSetInstance(3, (frozenset({0, 1}), frozenset({2})), 2)
        assert instance.is_hitting_set({0, 2})
        assert not instance.is_hitting_set({0})

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            HittingSetInstance(2, (frozenset(),), 1)

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            HittingSetInstance(2, (frozenset({5}),), 1)


class TestBruteForce:
    def test_finds_minimum(self):
        instance = HittingSetInstance(
            4, (frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})), 2
        )
        solution = brute_force_hitting_set(instance)
        assert solution is not None and len(solution) == 2
        assert instance.is_hitting_set(set(solution))

    def test_respects_bound(self):
        instance = HittingSetInstance(
            3, (frozenset({0}), frozenset({1}), frozenset({2})), 2
        )
        assert brute_force_hitting_set(instance) is None

    def test_greedy_is_valid(self):
        for seed in range(5):
            instance = random_instance(5, 4, 2, 5, seed=seed)
            assert instance.is_hitting_set(set(greedy_hitting_set(instance)))


class TestReduction:
    def test_run_structure(self):
        instance = HittingSetInstance(2, (frozenset({0, 1}),), 1)
        reduction = hitting_set_to_workflow(instance)
        names = [event.rule.name for event in reduction.run.events]
        assert names[0].startswith("a") and names[-1] == "c"
        assert reduction.run.final_instance.has_key("OK", 0)

    def test_observer_sees_only_ok(self):
        instance = HittingSetInstance(2, (frozenset({0}),), 1)
        reduction = hitting_set_to_workflow(instance)
        assert reduction.run.visible_indices("p") == (len(reduction.run) - 1,)

    def test_full_run_is_scenario(self):
        instance = HittingSetInstance(2, (frozenset({0, 1}),), 1)
        reduction = hitting_set_to_workflow(instance)
        assert is_scenario(reduction.run, "p", range(len(reduction.run)))

    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_33_equivalence(self, seed):
        """Scenario of length ≤ M+k+1 exists iff a hitting set ≤ M does."""
        instance = random_instance(
            universe=4, n_sets=3, set_size=2, bound=1 + seed % 2, seed=seed
        )
        reduction = hitting_set_to_workflow(instance)
        expected = brute_force_hitting_set(instance) is not None
        assert reduction.scenario_exists() == expected

    def test_explicit_solution_yields_scenario(self):
        instance = HittingSetInstance(
            3, (frozenset({0, 1}), frozenset({1, 2})), 1
        )
        reduction = hitting_set_to_workflow(instance)
        # {1} hits both sets: keep a1, one b-rule per set, and c.
        rules = {event.rule.name: i for i, event in enumerate(reduction.run.events)}
        chosen = [rules["a1"], rules["b0_1"], rules["b1_1"], rules["c"]]
        assert is_scenario(reduction.run, "p", chosen)
        assert len(chosen) <= reduction.threshold
