"""Tests for the semiring of faithful scenarios (Theorem 4.8)."""

import pytest

from repro.core.semiring import FaithfulSemiring
from repro.core.subruns import EventSubsequence, full_subsequence
from repro.workflow import RunGenerator


def faithful_samples(semiring, run, peer, count=6):
    """A family of faithful scenarios: closures of random seeds."""
    scenarios = [semiring.minimal(), full_subsequence(run)]
    for start in range(min(count, len(run))):
        scenarios.append(semiring.faithful_closure(EventSubsequence(run, [start])))
    return scenarios


class TestClosure:
    @pytest.mark.parametrize("seed", range(4))
    def test_closed_under_add_and_multiply(self, approval, seed):
        run = RunGenerator(approval, seed=seed).random_run(10)
        semiring = FaithfulSemiring(run, "applicant")
        scenarios = faithful_samples(semiring, run, "applicant")
        assert semiring.check_closure_under_operations(scenarios) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_closed_on_hiring_runs(self, hiring, seed):
        run = RunGenerator(hiring, seed=seed).random_run(12)
        semiring = FaithfulSemiring(run, "sue")
        scenarios = faithful_samples(semiring, run, "sue")
        assert semiring.check_closure_under_operations(scenarios) == []


class TestLaws:
    def test_semiring_laws_hold(self, approval_run):
        semiring = FaithfulSemiring(approval_run, "applicant")
        elements = faithful_samples(semiring, approval_run, "applicant")
        elements.append(semiring.zero)
        assert semiring.check_semiring_laws(elements) == []

    def test_identities(self, approval_run):
        semiring = FaithfulSemiring(approval_run, "applicant")
        assert len(semiring.zero) == 0
        assert len(semiring.one) == len(approval_run)

    def test_minimal_is_additive_identity_on_faithful(self, approval_run):
        """The minimal faithful scenario is ≤ every faithful scenario,
        so adding it changes nothing (Theorem 4.7 consequence)."""
        semiring = FaithfulSemiring(approval_run, "applicant")
        minimal = semiring.minimal()
        for scenario in faithful_samples(semiring, approval_run, "applicant"):
            assert semiring.add(scenario, minimal) == scenario
            assert minimal.is_subsequence_of(scenario)

    @pytest.mark.parametrize("seed", range(4))
    def test_product_of_faithful_contains_minimal(self, hiring, seed):
        run = RunGenerator(hiring, seed=seed).random_run(12)
        semiring = FaithfulSemiring(run, "sue")
        scenarios = faithful_samples(semiring, run, "sue")
        minimal = semiring.minimal()
        for a in scenarios:
            for b in scenarios:
                assert minimal.is_subsequence_of(semiring.multiply(a, b))


class TestFaithfulClosure:
    def test_closure_is_faithful(self, approval_run):
        semiring = FaithfulSemiring(approval_run, "applicant")
        for start in range(len(approval_run)):
            closed = semiring.faithful_closure(
                EventSubsequence(approval_run, [start])
            )
            assert semiring.is_faithful(closed)

    def test_closure_extensive(self, approval_run):
        semiring = FaithfulSemiring(approval_run, "applicant")
        seed = EventSubsequence(approval_run, [0])
        assert seed.is_subsequence_of(semiring.faithful_closure(seed))
