"""p-fresh instances (Definition 5.5).

An instance is *p-fresh* when it is empty or is the result of an event
visible at ``p`` applied to some instance.  Transparency (Definition
5.6) quantifies over p-fresh instances; this module enumerates them over
a bounded constant pool by forward search: enumerate predecessor
instances, fire every applicable visible event, and collect the results.

Applicability here follows the transition relation of Section 2 without
the run-level freshness condition, so head-only variables may take
values already present in the predecessor (cf. Example 5.7, where the
instance ``{Cleared(Sue), Approved(Sue)}`` is Sue-fresh via the event
``+Cleared@hr(Sue)`` on ``{Approved(Sue)}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..workflow.engine import apply_event
from ..workflow.enumerate import applicable_events
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .instances import enumerate_instances


@dataclass(frozen=True)
class FreshWitness:
    """Evidence that an instance is p-fresh: ``event(predecessor) = instance``."""

    predecessor: Instance
    event: Event


def iter_p_fresh_instances(
    program: WorkflowProgram,
    peer: str,
    pool: Sequence[object],
    max_tuples_per_relation: int,
    max_predecessors: Optional[int] = None,
    witness_freshness: bool = True,
) -> Iterator[PyTuple[Instance, Optional[FreshWitness]]]:
    """Enumerate p-fresh instances over *pool* with witnesses.

    Yields the empty instance first (p-fresh by definition, witness
    None), then every distinct result of a visible event fired on an
    enumerated predecessor.  Head-only variables range over the pool, so
    results stay within pool values and the enumeration is sound up to
    isomorphism (Lemma A.2).

    *witness_freshness* (default True) requires the witness event's
    head-only values to be fresh with respect to the predecessor (not in
    ``adom(I') ∪ const(P)``), matching the run-level freshness
    condition.  This is the reading under which the Stage construction of
    Example 5.7 / Section 6 is transparent: a stage id "refreshed" by the
    observing peer cannot collide with stale invisible facts.  Pass False
    for the literal Definition 5.5 reading (plain applicability), under
    which Example 5.7's instance ``{Cleared(Sue), Approved(Sue)}`` is
    Sue-fresh via ``+Cleared@hr(Sue)`` on ``{Approved(Sue)}``.
    """
    schema = program.schema
    constants = program.constants()
    empty = Instance.empty(schema.schema)
    seen: Set[Instance] = {empty}
    yield empty, None
    checked = 0
    for predecessor in enumerate_instances(
        schema.schema, pool, max_tuples_per_relation
    ):
        if max_predecessors is not None and checked >= max_predecessors:
            return
        checked += 1
        if witness_freshness:
            taken = predecessor.active_domain() | set(constants)
            allowed = [value for value in pool if value not in taken]
        else:
            allowed = list(pool)
        for event in applicable_events(
            program, predecessor, head_only_values=allowed
        ):
            if any(value not in allowed for value in event.head_only_values()):
                continue  # keep results within the pool
            successor = apply_event(
                schema, predecessor, event, forbidden_fresh=None, check_body=False
            )
            if event.peer != peer:
                before = schema.view_instance(predecessor, peer)
                after = schema.view_instance(successor, peer)
                if before == after:
                    continue  # invisible at p
            if successor in seen:
                continue
            seen.add(successor)
            yield successor, FreshWitness(predecessor, event)


def p_fresh_instances(
    program: WorkflowProgram,
    peer: str,
    pool: Sequence[object],
    max_tuples_per_relation: int,
    max_predecessors: Optional[int] = None,
    witness_freshness: bool = True,
) -> List[PyTuple[Instance, Optional[FreshWitness]]]:
    """The list version of :func:`iter_p_fresh_instances`."""
    return list(
        iter_p_fresh_instances(
            program,
            peer,
            pool,
            max_tuples_per_relation,
            max_predecessors,
            witness_freshness,
        )
    )


def is_p_fresh(
    program: WorkflowProgram,
    peer: str,
    instance: Instance,
    pool: Sequence[object],
    max_tuples_per_relation: int,
    witness_freshness: bool = True,
) -> Optional[FreshWitness]:
    """A witness that *instance* is p-fresh, or None if none found.

    The empty instance is p-fresh by definition; a dedicated sentinel
    witness with the instance itself as predecessor is returned for it.
    """
    if instance.is_empty():
        return FreshWitness(instance, None)  # type: ignore[arg-type]
    for candidate, witness in iter_p_fresh_instances(
        program, peer, pool, max_tuples_per_relation, None, witness_freshness
    ):
        if candidate == instance:
            return witness
    return None
