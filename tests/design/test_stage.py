"""Tests for stages and the Stage-relation infrastructure."""

import pytest

from repro.design.stage import (
    STAGE_RELATION,
    add_stage_infrastructure,
    has_stage_relation,
    rules_visible_at,
    stages_of_run,
)
from repro.workflow import Event, RunGenerator, execute


class TestStagesOfRun:
    def test_example_42_stages(self, approval_run):
        # For the applicant only h (position 3) is visible: one stage
        # with silent prefix e f g.
        stages = stages_of_run(approval_run, "applicant")
        assert len(stages) == 1
        assert stages[0].silent == (0, 1, 2)
        assert stages[0].visible == 3

    def test_trailing_silent_events(self, approval):
        run = execute(approval, [Event(approval.rule("e"), {})])
        assert stages_of_run(run, "applicant") == []
        trailing = stages_of_run(run, "applicant", include_trailing=True)
        assert len(trailing) == 1 and trailing[0].visible is None

    def test_every_visible_event_closes_a_stage(self, hiring):
        run = RunGenerator(hiring, seed=4).random_run(12)
        stages = stages_of_run(run, "sue")
        assert [s.visible for s in stages] == list(run.visible_indices("sue"))

    def test_positions_and_len(self, approval_run):
        (stage,) = stages_of_run(approval_run, "applicant")
        assert stage.positions == (0, 1, 2, 3)
        assert len(stage) == 4


class TestRulesVisibleAt:
    def test_hiring(self, hiring):
        names = {rule.name for rule in rules_visible_at(hiring, "sue")}
        assert names == {"clear", "hire"}


class TestAddStageInfrastructure:
    def test_schema_extended(self, hiring_no_cfo):
        staged = add_stage_infrastructure(hiring_no_cfo, "sue")
        assert has_stage_relation(staged)
        for member in staged.schema.peers:
            assert staged.schema.peer_sees(STAGE_RELATION, member)

    def test_rule_variants(self, hiring_no_cfo):
        staged = add_stage_infrastructure(hiring_no_cfo, "sue")
        names = {rule.name for rule in staged}
        # clear/hire are sue-visible: two variants each; approve is
        # silent: one guarded variant; plus the stage-creation rule.
        assert "open_stage" in names
        assert {"clear#close", "clear#nostage", "hire#close", "hire#nostage"} <= names
        assert "approve#staged" in names

    def test_double_application_rejected(self, hiring_no_cfo):
        staged = add_stage_infrastructure(hiring_no_cfo, "sue")
        with pytest.raises(ValueError):
            add_stage_infrastructure(staged, "sue")

    def test_silent_work_requires_open_stage(self, hiring_no_cfo):
        from repro.workflow import Instance, applicable_events

        staged = add_stage_infrastructure(hiring_no_cfo, "sue")
        empty = Instance.empty(staged.schema.schema)
        names = {e.rule.name for e in applicable_events(staged, empty)}
        # Without a stage, approve#staged cannot fire.
        assert "approve#staged" not in names
        assert "open_stage" in names

    def test_staged_program_runs(self, hiring_no_cfo):
        staged = add_stage_infrastructure(hiring_no_cfo, "sue")
        run = RunGenerator(staged, seed=1).random_run(15)
        assert len(run) > 0
