"""Bounded state-space exploration of workflow programs.

Breadth-first exploration of the reachable global instances of a
program, with optional canonical deduplication up to value isomorphism
(Lemma A.2 makes isomorphic states interchangeable).  Useful for
reachability questions ("can ``U`` become non-empty?"), deadlock
detection, and state-space statistics on small programs — the building
block the bounded decision procedures of Section 5 rely on implicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..obs.metrics import METRICS
from ..obs.trace import span
from ..runtime.budget import Budget, checkpoint
from .domain import FreshValueSource
from .engine import apply_event, apply_event_with_delta
from .errors import BudgetExceeded
from .enumerate import applicable_events
from .eventindex import ApplicableEventIndex
from .events import Event
from .instance import Instance
from .isomorphism import canonicalize_instance
from .program import WorkflowProgram

# Fresh values minted during expansion start above this floor, offset by
# the visit index; the parallel frontier engine mints from the same
# formula so the two engines produce identical fresh values.
FRESH_BASE = 30_000

_STATES_VISITED = METRICS.counter(
    "repro_search_nodes_total",
    "Search nodes expanded, by search kind",
    labelnames=("search",),
).labels(search="statespace")
_EXPLORATIONS = METRICS.counter(
    "repro_statespace_explorations_total",
    "State-space explorations materialised, by outcome",
    labelnames=("outcome",),
)


@dataclass(frozen=True)
class ReachableState:
    """One explored state: the instance and a witness event path."""

    instance: Instance
    path: PyTuple[Event, ...]

    @property
    def depth(self) -> int:
        return len(self.path)


@dataclass
class ExplorationStats:
    """Aggregates of one exploration."""

    states_visited: int = 0
    states_deduplicated: int = 0
    transitions: int = 0
    max_depth_reached: int = 0
    deadlocks: int = 0


@dataclass
class ExplorationResult:
    """A materialised exploration, possibly budget-truncated.

    ``truncated=True`` marks a *partial* reachable set: the budget
    expired before the frontier was exhausted, and *states* holds the
    best-so-far prefix — never a silent wrong answer.
    """

    states: List[ReachableState]
    stats: ExplorationStats
    truncated: bool = False
    reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self.states)


class StateSpaceExplorer:
    """Breadth-first exploration with canonical deduplication.

    ``dedup='exact'`` merges equal instances; ``dedup='isomorphic'``
    additionally merges instances equal up to renaming of values outside
    ``const(P)`` (sound by Lemma A.2); ``dedup='none'`` explores the raw
    tree.

    >>> # explorer = StateSpaceExplorer(program)
    >>> # hit = explorer.find(lambda inst: bool(inst.keys("U")), max_depth=6)
    """

    def __init__(
        self,
        program: WorkflowProgram,
        dedup: str = "isomorphic",
        initial: Optional[Instance] = None,
        budget: Optional[Budget] = None,
        use_event_index: bool = True,
        workers: Optional[int] = None,
    ) -> None:
        if dedup not in ("none", "exact", "isomorphic"):
            raise ValueError(f"unknown dedup mode {dedup!r}")
        self.program = program
        self.dedup = dedup
        self.initial = (
            initial if initial is not None else Instance.empty(program.schema.schema)
        )
        self.budget = budget
        self.use_event_index = use_event_index
        self.workers = workers
        self.stats = ExplorationStats()

    def _signature(self, instance: Instance) -> object:
        if self.dedup == "exact":
            return instance
        constants = self.program.constants()
        return canonicalize_instance(instance, fixed=constants)

    def iterate(
        self,
        max_depth: int,
        max_states: Optional[int] = None,
    ) -> Iterator[ReachableState]:
        """Yield reachable states breadth-first (the initial state first).

        With ``workers > 1`` (or a process-wide default from
        :func:`repro.parallel.set_default_workers`) the layer-synchronous
        parallel frontier engine takes over; it yields the identical
        state stream and stats for every worker count, so ``explore``,
        ``find`` and ``reachable_count`` all parallelise through here.
        """
        from ..parallel.config import resolve_workers

        if resolve_workers(self.workers) > 1:
            from ..parallel.frontier import iterate_states

            self.stats = ExplorationStats()
            yield from iterate_states(
                self.program,
                max_depth,
                max_states,
                dedup=self.dedup,
                initial=self.initial,
                budget=self.budget,
                workers=self.workers,
                use_event_index=self.use_event_index,
                stats=self.stats,
            )
            return
        self.stats = ExplorationStats()
        seen: Set[object] = set()
        queue: deque = deque()
        root = ReachableState(self.initial, ())
        root_index = (
            ApplicableEventIndex(self.program, self.initial)
            if self.use_event_index
            else None
        )
        queue.append((root, root_index))
        if self.dedup != "none":
            seen.add(self._signature(self.initial))
        fresh_base = FRESH_BASE
        while queue:
            state, index = queue.popleft()
            checkpoint(self.budget, depth=state.depth)
            _STATES_VISITED.inc()
            self.stats.states_visited += 1
            self.stats.max_depth_reached = max(
                self.stats.max_depth_reached, state.depth
            )
            yield state
            if max_states is not None and self.stats.states_visited >= max_states:
                return
            if state.depth >= max_depth:
                continue
            source = FreshValueSource(start=fresh_base + 64 * self.stats.states_visited)
            source.observe(self.program.constants())
            source.observe(state.instance.active_domain())
            successors = 0
            candidates = (
                index.events(source)
                if index is not None
                else applicable_events(self.program, state.instance, source)
            )
            for event in candidates:
                if index is not None:
                    successor, delta = apply_event_with_delta(
                        self.program.schema, state.instance, event, None, check_body=False
                    )
                else:
                    successor = apply_event(
                        self.program.schema, state.instance, event, None, check_body=False
                    )
                self.stats.transitions += 1
                successors += 1
                if self.dedup != "none":
                    signature = self._signature(successor)
                    if signature in seen:
                        self.stats.states_deduplicated += 1
                        continue
                    seen.add(signature)
                # Each child carries a derived index: an O(|delta|)
                # patch sharing cached valuations with the parent, so
                # only rules the event touched are re-evaluated later.
                child_index = (
                    index.advanced(delta, successor) if index is not None else None
                )
                queue.append(
                    (ReachableState(successor, state.path + (event,)), child_index)
                )
            if successors == 0:
                self.stats.deadlocks += 1

    def explore(
        self,
        max_depth: int,
        max_states: Optional[int] = None,
    ) -> ExplorationResult:
        """Materialise the reachable set, degrading gracefully on budget.

        Unlike :meth:`iterate`, a tripped budget does not propagate:
        the states visited so far are returned with ``truncated=True``
        and the budget's reason — the anytime form of exploration.
        """
        states: List[ReachableState] = []
        with span(
            "statespace_explore",
            dedup=self.dedup,
            max_depth=max_depth,
            max_states=max_states,
        ) as trace:
            try:
                for state in self.iterate(max_depth, max_states):
                    states.append(state)
            except BudgetExceeded as exc:
                _EXPLORATIONS.labels(outcome="truncated").inc()
                trace.set("states", len(states))
                trace.set("truncated", True)
                return ExplorationResult(
                    states, self.stats, truncated=True, reason=str(exc)
                )
            _EXPLORATIONS.labels(outcome="completed").inc()
            trace.set("states", len(states))
            trace.set("truncated", False)
        return ExplorationResult(states, self.stats)

    def find(
        self,
        predicate: Callable[[Instance], bool],
        max_depth: int,
        max_states: Optional[int] = None,
    ) -> Optional[ReachableState]:
        """The first reachable state satisfying *predicate*, if any."""
        with span("statespace_find", max_depth=max_depth) as trace:
            for state in self.iterate(max_depth, max_states):
                if predicate(state.instance):
                    trace.set("found_depth", state.depth)
                    return state
            trace.set("found_depth", None)
        return None

    def reachable_count(self, max_depth: int, max_states: Optional[int] = None) -> int:
        """How many (dedup-distinct) states are reachable within the bound.

        *max_states* is forwarded to :meth:`iterate`, so counting honours
        the same cap as ``iterate``/``explore`` instead of silently
        exceeding it.
        """
        return sum(1 for _ in self.iterate(max_depth, max_states))

    def deadlock_states(self, max_depth: int) -> List[ReachableState]:
        """States (within the bound) from which no event is applicable."""
        out: List[ReachableState] = []
        for state in self.iterate(max_depth):
            source = FreshValueSource(start=99_000)
            source.observe(self.program.constants())
            source.observe(state.instance.active_domain())
            if next(
                iter(applicable_events(self.program, state.instance, source)), None
            ) is None:
                out.append(state)
        return out


def fact_reachable(
    program: WorkflowProgram,
    relation: str,
    max_depth: int,
    dedup: str = "isomorphic",
    budget: Optional[Budget] = None,
    max_states: Optional[int] = None,
    workers: Optional[int] = None,
) -> Optional[ReachableState]:
    """A reachable state with a non-empty *relation*, if one exists in bound.

    The bounded form of the (undecidable) question (?) of Theorem 5.4.
    *max_states* caps the visited states exactly as in
    :meth:`StateSpaceExplorer.find`; *workers* selects the parallel
    frontier engine.

    >>> # witness = fact_reachable(pcp_workflow(instance), "U", 6)
    """
    explorer = StateSpaceExplorer(program, dedup=dedup, budget=budget, workers=workers)
    return explorer.find(
        lambda instance: bool(instance.keys(relation)), max_depth, max_states
    )
