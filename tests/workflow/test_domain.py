"""Tests for the data domain: NULL and fresh value generation."""

import copy
import pickle

from repro.workflow.domain import NULL, FreshValue, FreshValueSource, is_null


class TestNull:
    def test_singleton(self):
        from repro.workflow.domain import _Null

        assert _Null() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_copy_preserves_identity(self):
        assert copy.copy(NULL) is NULL
        assert copy.deepcopy(NULL) is NULL

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestFreshValue:
    def test_equality_by_index(self):
        assert FreshValue(3) == FreshValue(3)
        assert FreshValue(3) != FreshValue(4)

    def test_hashable(self):
        assert len({FreshValue(1), FreshValue(1), FreshValue(2)}) == 2

    def test_ordering(self):
        assert FreshValue(1) < FreshValue(2)

    def test_repr(self):
        assert repr(FreshValue(17)) == "ν17"


class TestFreshValueSource:
    def test_distinct_values(self):
        source = FreshValueSource()
        values = [source.fresh() for _ in range(100)]
        assert len(set(values)) == 100

    def test_observe_prevents_collision(self):
        source = FreshValueSource()
        source.observe([FreshValue(0), FreshValue(1)])
        value = source.fresh()
        assert value not in (FreshValue(0), FreshValue(1))

    def test_start_offset(self):
        source = FreshValueSource(start=1000)
        assert source.fresh() == FreshValue(1000)

    def test_stream(self):
        source = FreshValueSource()
        stream = source.stream()
        first, second = next(stream), next(stream)
        assert first != second
