"""Tests for the textual program syntax."""

import pytest

from repro.workflow.conditions import TRUE, AttrEq, Eq, Not
from repro.workflow.domain import NULL
from repro.workflow.errors import ParseError
from repro.workflow.parser import parse_program, parse_schema
from repro.workflow.queries import Comparison, Const, KeyLiteral, RelLiteral, Var
from repro.workflow.rules import Deletion, Insertion

BASE = """
peers p, q
relation R(K, A)
relation S(K, A)
view R@p(K, A)
view R@q(K)
view S@p(K, A)
"""


class TestDeclarations:
    def test_peers(self):
        program = parse_program(BASE)
        assert program.schema.peers == ("p", "q")

    def test_relations_and_views(self):
        program = parse_program(BASE)
        assert program.schema.schema.relation("R").attributes == ("K", "A")
        assert program.schema.view("R", "q").attributes == ("K",)
        assert program.schema.view("R", "p").selection == TRUE
        assert program.schema.view("S", "q") is None

    def test_view_with_condition(self):
        program = parse_program(
            """
            peers p
            relation R(K, A, B)
            view R@p(K, A) where A = 'x' and not (B = null)
            """
        )
        selection = program.schema.view("R", "p").selection
        from repro.workflow.tuples import Tuple

        assert selection.evaluate(Tuple(("K", "A", "B"), (1, "x", 2)))
        assert not selection.evaluate(Tuple(("K", "A", "B"), (1, "x", NULL)))
        assert not selection.evaluate(Tuple(("K", "A", "B"), (1, "y", 2)))

    def test_attr_eq_condition(self):
        program = parse_program(
            """
            peers p
            relation R(K, A, B)
            view R@p(K) where A = B
            """
        )
        assert program.schema.view("R", "p").selection == AttrEq("A", "B")

    def test_or_condition(self):
        program = parse_program(
            """
            peers p
            relation R(K, A)
            view R@p(K, A) where A = 1 or A = 2
            """
        )
        from repro.workflow.tuples import Tuple

        sel = program.schema.view("R", "p").selection
        assert sel.evaluate(Tuple(("K", "A"), (0, 1)))
        assert sel.evaluate(Tuple(("K", "A"), (0, 2)))
        assert not sel.evaluate(Tuple(("K", "A"), (0, 3)))

    def test_duplicate_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_program("peers p\nrelation R(K)\nrelation R(K)")

    def test_undeclared_relation_in_view(self):
        with pytest.raises(ParseError):
            parse_program("peers p\nview R@p(K)")

    def test_undeclared_peer_in_view(self):
        with pytest.raises(ParseError):
            parse_program("relation R(K)\nview R@p(K)")

    def test_unknown_condition_attribute(self):
        with pytest.raises(ParseError):
            parse_program("peers p\nrelation R(K)\nview R@p(K) where Z = 1")


class TestRules:
    def test_named_rule(self):
        program = parse_program(BASE + "[go] +R@p(x, y) :- S@p(x, y)")
        rule = program.rule("go")
        assert rule.peer == "p"
        assert isinstance(rule.head[0], Insertion)

    def test_auto_named_rules(self):
        program = parse_program(BASE + "+R@p(x, y) :- S@p(x, y)\n+S@p(x, y) :- R@p(x, y)")
        assert [r.name for r in program] == ["r1", "r2"]

    def test_empty_body(self):
        program = parse_program(BASE + "[go] +R@p(x, y) :-")
        assert len(program.rule("go").body) == 0
        assert program.rule("go").head_only_variables() == {Var("x"), Var("y")}

    def test_deletion_head(self):
        program = parse_program(BASE + "[d] -Key[R]@p(x) :- R@p(x, y)")
        assert isinstance(program.rule("d").head[0], Deletion)

    def test_deletion_sugar(self):
        program = parse_program(BASE + "[d] -R@q(x) :- R@q(x)")
        assert isinstance(program.rule("d").head[0], Deletion)

    def test_negative_literal(self):
        program = parse_program(BASE + "[n] +R@p(x, y) :- S@p(x, y), not R@p(x, y)")
        negatives = [l for l in program.rule("n").body.literals if not l.positive]
        assert len(negatives) == 1
        assert isinstance(negatives[0], RelLiteral)

    def test_key_literals(self):
        program = parse_program(
            BASE + "[k] +R@p(x, 1) :- Key[S]@p(x), not Key[R]@p(x)"
        )
        literals = program.rule("k").body.literals
        assert isinstance(literals[0], KeyLiteral) and literals[0].positive
        assert isinstance(literals[1], KeyLiteral) and not literals[1].positive

    def test_comparisons(self):
        program = parse_program(BASE + "[c] +R@p(x, y) :- S@p(x, y), S@p(y, x), x != y")
        comparisons = program.rule("c").body.comparisons()
        assert len(comparisons) == 1 and not comparisons[0].positive

    def test_constants(self):
        program = parse_program(BASE + "[c] +R@p(0, 'hi') :-")
        insertion = program.rule("c").head[0]
        assert insertion.terms == (Const(0), Const("hi"))

    def test_null_term(self):
        program = parse_program(BASE + "[c] +R@p(x, null) :-")
        assert program.rule("c").head[0].terms[1] == Const(NULL)

    def test_multiline_body_with_trailing_comma(self):
        program = parse_program(
            BASE
            + """
            [m] +R@p(x, y) :- S@p(x, y),
                S@p(y, x)
            """
        )
        assert len(program.rule("m").body.positive_literals()) == 2

    def test_comments_ignored(self):
        program = parse_program(BASE + "# a comment\n[go] +R@p(x, y) :- S@p(x, y) # tail")
        assert program.rule("go")

    def test_undeclared_view_in_rule(self):
        with pytest.raises(ParseError):
            parse_program(BASE + "[bad] +S@q(x, y) :-")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_program(BASE + "[bad] +R@p(x, y) :- S@p(x, y) garbage(")

    def test_parse_schema_helper(self):
        schema = parse_schema(BASE)
        assert schema.peers == ("p", "q")
