"""Batched event application ≡ the sequential fold.

:func:`repro.workflow.engine.apply_events` exists purely to amortize
per-event overhead (one tracing span for the whole batch); it must be
*observationally identical* to folding :func:`apply_event_with_delta`
one event at a time — same successor instances, same deltas, and on a
mid-batch rejection the same clean prefix plus the same error.  The
same contract holds for :meth:`ApplicableEventIndex.advance_many`
versus repeated :meth:`advance`.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workflow import Event, Instance
from repro.workflow.engine import (
    apply_event_with_delta,
    apply_events,
)
from repro.workflow.enumerate import RunGenerator
from repro.workflow.errors import EventError
from repro.workflow.eventindex import ApplicableEventIndex
from repro.workloads.generators import churn_program

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def generated_events(seed, count=12):
    program = churn_program()
    generator = RunGenerator(program, seed=seed)
    return program, list(generator.random_run(count).events)


class TestApplyEvents:
    @SETTINGS
    @given(st.integers(0, 1000), st.integers(0, 15))
    def test_batch_equals_sequential_fold(self, seed, count):
        program, events = generated_events(seed, count)
        instance = Instance.empty(program.schema.schema)

        batched = apply_events(program.schema, instance, events)

        current = instance
        sequential = []
        for event in events:
            successor, delta = apply_event_with_delta(
                program.schema, current, event
            )
            sequential.append((successor, delta))
            current = successor

        assert len(batched) == len(sequential)
        for (b_inst, b_delta), (s_inst, s_delta) in zip(batched, sequential):
            assert b_inst == s_inst
            assert b_delta.changes == s_delta.changes

    def test_empty_batch_is_a_noop(self):
        program, _ = generated_events(0, 0)
        instance = Instance.empty(program.schema.schema)
        assert apply_events(program.schema, instance, []) == []

    def test_mid_batch_rejection_carries_the_clean_prefix(self):
        program, events = generated_events(3, 8)
        instance = Instance.empty(program.schema.schema)
        # Replaying the suffix from the empty instance rejects at some
        # point (its preconditions assume the skipped prefix); the batch
        # must expose exactly the clean prefix the sequential fold
        # would have committed before the same error.
        bad = events[3:] + events[:3]
        current = instance
        sequential = []
        sequential_error = None
        for event in bad:
            try:
                successor, delta = apply_event_with_delta(
                    program.schema, current, event
                )
            except EventError as exc:
                sequential_error = exc
                break
            sequential.append((successor, delta))
            current = successor
        assert sequential_error is not None, "the shuffled batch must reject"

        with pytest.raises(EventError) as caught:
            apply_events(program.schema, instance, bad)
        prefix = caught.value.batch_prefix
        assert type(caught.value) is type(sequential_error)
        assert len(prefix) == len(sequential)
        for (b_inst, b_delta), (s_inst, s_delta) in zip(prefix, sequential):
            assert b_inst == s_inst
            assert b_delta.changes == s_delta.changes


class TestAdvanceMany:
    @SETTINGS
    @given(st.integers(0, 1000), st.integers(1, 12))
    def test_advance_many_equals_repeated_advance(self, seed, count):
        program, events = generated_events(seed, count)
        instance = Instance.empty(program.schema.schema)
        steps = apply_events(program.schema, instance, events)
        # advance()/advance_many() take (delta, successor) pairs in the
        # order the registry feeds them.
        pairs = [(delta, successor) for successor, delta in steps]

        one = ApplicableEventIndex(program, instance)
        for delta, successor in pairs:
            one.advance(delta, successor)
        many = ApplicableEventIndex(program, instance)
        many.advance_many(pairs)

        assert one.instance == many.instance
        for peer in program.schema.peers:
            assert one.view_of(peer) == many.view_of(peer)
        from repro.workflow.domain import FreshValueSource

        def canonical(event):
            return (
                event.rule.name,
                tuple(sorted(repr(pair) for pair in event.valuation)),
            )

        events_one = {
            canonical(e) for e in one.events(FreshValueSource(10_000))
        }
        events_many = {
            canonical(e) for e in many.events(FreshValueSource(10_000))
        }
        assert events_one == events_many
