"""The segmented log: framing, rolling, tail recovery, atomic compaction."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.runtime.journal import begin_record, end_record, event_record, snapshot_record
from repro.storage import SegmentBackend, StorageCorruptionError, compact_records
from repro.workflow import Event, FreshValue, Var, execute
from repro.workloads.generators import churn_program


def make_event(program, index):
    return Event(program.rule("make"), {Var("x"): FreshValue(1000 + index)})


def run_records(events=5):
    program = churn_program()
    run = execute(program, [make_event(program, i) for i in range(events)])
    records = [begin_record(run.initial)]
    for index, event in enumerate(run.events):
        records.append(event_record(index, event))
    records.append(snapshot_record(events - 1, events, run.final_instance))
    records.append(end_record("completed"))
    return records


def fill(store, records):
    for record in records:
        store.append(record)


def segment_files(backend, run_id):
    run_dir = next(backend.root.iterdir())
    return sorted(p for p in run_dir.iterdir() if p.name.startswith("seg-"))


class TestFraming:
    def test_crc_prefix_per_line(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        store = backend.store("r1")
        fill(store, run_records())
        store.sync()
        for path in segment_files(backend, "r1"):
            for line in path.read_text().splitlines():
                crc_text, payload = line[:8], line[9:]
                assert line[8] == " "
                assert int(crc_text, 16) == zlib.crc32(payload.encode("utf-8"))
                assert isinstance(json.loads(payload), dict)

    def test_rolls_at_segment_bytes(self, tmp_path):
        backend = SegmentBackend(tmp_path, segment_bytes=1024)
        store = backend.store("r1")
        fill(store, run_records(events=30))
        store.sync()
        assert len(segment_files(backend, "r1")) > 1
        got, warnings = store.read()
        assert warnings == []
        assert [r["type"] for r in got][0] == "begin"
        assert sum(1 for r in got if r["type"] == "event") == 30


class TestTailRecovery:
    def test_torn_tail_truncated_with_warning_on_reopen(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        records = run_records()
        store = backend.store("r1")
        fill(store, records)
        store.close()
        [segment] = segment_files(backend, "r1")
        data = segment.read_text()
        # Tear the last record mid-line: no trailing newline.
        segment.write_text(data + 'deadbeef {"type": "end", "status')
        reopened = backend.store("r1")
        got, warnings = reopened.read()
        assert got == records
        assert any("truncated" in w for w in warnings)

    def test_corrupt_tail_line_truncated(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        records = run_records()
        store = backend.store("r1")
        fill(store, records)
        store.close()
        [segment] = segment_files(backend, "r1")
        lines = segment.read_text().splitlines(keepends=True)
        last = lines[-1]
        middle = len(last) // 2
        lines[-1] = last[:middle] + ("x" if last[middle] != "x" else "y") + last[middle + 1 :]
        segment.write_text("".join(lines))
        reopened = backend.store("r1")
        got, warnings = reopened.read()
        assert got == records[:-1]
        assert warnings

    def test_mid_segment_damage_refused(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        store = backend.store("r1")
        fill(store, run_records())
        store.close()
        [segment] = segment_files(backend, "r1")
        lines = segment.read_text().splitlines(keepends=True)
        # Damage an interior line: acknowledged history, not tail garbage.
        target = lines[2]
        middle = len(target) // 2
        lines[2] = target[:middle] + ("x" if target[middle] != "x" else "y") + target[middle + 1 :]
        segment.write_text("".join(lines))
        with pytest.raises(StorageCorruptionError):
            backend.store("r1")


class TestCompaction:
    def test_compaction_is_atomic_and_sweeps_old_segments(self, tmp_path):
        backend = SegmentBackend(tmp_path, segment_bytes=1024)
        store = backend.store("r1")
        program = churn_program()
        run = execute(program, [make_event(program, i) for i in range(30)])
        store.append(begin_record(run.initial))
        for index, event in enumerate(run.events):
            store.append(event_record(index, event))
            if (index + 1) % 10 == 0:
                store.append(snapshot_record(index, index + 1, run.final_instance))
        before, _ = store.read()
        assert len(segment_files(backend, "r1")) > 1
        stats = store.compact()
        assert stats.records_after < stats.records_before
        after, warnings = store.read()
        assert warnings == []
        assert after == compact_records(before)
        assert len(segment_files(backend, "r1")) == 1
        # The store still accepts appends after the swap.
        store.append(end_record("completed"))
        got, _ = store.read()
        assert got[-1]["type"] == "end"

    def test_orphan_segments_swept_on_open(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        store = backend.store("r1")
        fill(store, run_records())
        store.close()
        run_dir = next(backend.root.iterdir())
        # A crash between writing a compacted segment and committing the
        # manifest leaves an orphan; reopening must ignore and remove it.
        orphan = run_dir / "seg-99999999.log"
        orphan.write_text('00000000 {"type": "garbage"}\n')
        reopened = backend.store("r1")
        got, warnings = reopened.read()
        assert got == run_records() or [r["type"] for r in got][0] == "begin"
        assert not orphan.exists()
