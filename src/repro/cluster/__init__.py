"""Sharded cluster layer: ring placement, routing, replication, failover.

``repro.cluster`` scales the single-process workflow service (PR 5's
``repro.service``) horizontally without changing its semantics or its
wire protocol: a consistent-hash :class:`HashRing` places run ids onto
named shards, a :class:`ClusterRouter` proxies the JSON-lines protocol
to the owning shard worker, a :class:`ShardSupervisor` spawns and
health-checks the workers (each an ordinary ``repro serve`` process
with its own storage directory), and journal replication
(:class:`ReplicationShipper` + :func:`reconcile_with_follower`) makes
acknowledged events survive a shard process being SIGKILLed — by
restart or by follower promotion.  ``run_cluster_loadgen`` is the
harness that *proves* all of that: single-server checking semantics
through the router, seeded mid-run kills, and a post-mortem disk audit
of every acknowledged event.  See ``docs/CLUSTER.md``.
"""

from .loadgen import ClusterLoadReport, run_cluster_loadgen
from .replicate import (
    ReconcileReport,
    ReplicatingBackend,
    ReplicationShipper,
    reconcile_with_follower,
)
from .ring import HashRing, RingError
from .router import ClusterRouter, RouterServer
from .supervisor import ShardProcess, ShardSpec, ShardSupervisor, free_ports

__all__ = [
    "ClusterLoadReport",
    "ClusterRouter",
    "HashRing",
    "ReconcileReport",
    "ReplicatingBackend",
    "ReplicationShipper",
    "RingError",
    "RouterServer",
    "ShardProcess",
    "ShardSpec",
    "ShardSupervisor",
    "free_ports",
    "reconcile_with_follower",
    "run_cluster_loadgen",
]
