"""Tests for snapshot policy and fast resume from a journal."""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import (
    CheckpointPolicy,
    latest_snapshot,
    resume_state,
    verify_snapshots,
)
from repro.runtime.journal import MemorySink, journal_run
from repro.workflow import RunGenerator
from repro.workflow.errors import RecoveryError
from repro.workloads import paper_examples


@pytest.fixture
def hiring_run():
    return RunGenerator(paper_examples.hiring_program(), seed=3).random_run(7)


class TestCheckpointPolicy:
    def test_periodic_due(self):
        policy = CheckpointPolicy(every_events=3)
        assert [n for n in range(1, 10) if policy.due(n)] == [3, 6, 9]

    def test_disabled(self):
        assert not any(CheckpointPolicy(every_events=0).due(n) for n in range(1, 10))
        assert not any(CheckpointPolicy(every_events=None).due(n) for n in range(1, 10))


class TestLatestSnapshot:
    def test_none_without_snapshots(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=None)
        assert latest_snapshot(hiring_run.program, sink) is None

    def test_picks_most_recent(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        snapshot = latest_snapshot(hiring_run.program, sink)
        assert snapshot is not None
        assert snapshot.position == 6
        assert snapshot.instance == hiring_run.instances[5]


class TestResumeState:
    @pytest.mark.parametrize("snapshot_every", [None, 1, 2, 5])
    def test_resume_matches_final_instance(self, hiring_run, snapshot_every):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=snapshot_every)
        instance, count = resume_state(hiring_run.program, sink)
        assert count == len(hiring_run)
        assert instance == hiring_run.final_instance

    def test_missing_begin_raises(self, hiring_run):
        with pytest.raises(RecoveryError, match="no begin record"):
            resume_state(hiring_run.program, [{"type": "end"}])

    def test_stale_tail_event_raises(self, hiring_run):
        """A tail event that no longer applies is a recovery error."""
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=3)
        # Duplicate the final event record: replaying it twice from the
        # snapshot must fail the engine's applicability re-check.
        event_lines = [l for l in sink.lines
                       if json.loads(l)["type"] == "event"]
        sink.lines.insert(len(sink.lines) - 1, event_lines[-1])
        try:
            instance, count = resume_state(hiring_run.program, sink)
        except RecoveryError as exc:
            assert "no longer applies on resume" in str(exc)
        else:
            # Some duplicated events are idempotently applicable; then
            # the resume simply reflects one more journaled event.
            assert count == len(hiring_run) + 1


class TestVerifySnapshots:
    def test_counts_verified(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        assert verify_snapshots(hiring_run.program, sink) == 3

    def test_divergence_raises(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        for position, line in enumerate(sink.lines):
            record = json.loads(line)
            if record["type"] == "snapshot":
                record["instance"] = {}
                sink.lines[position] = json.dumps(record) + "\n"
                break
        with pytest.raises(RecoveryError):
            verify_snapshots(hiring_run.program, sink)
