"""Designing and enforcing transparent workflows (Sections 5-6).

A complaint-handling workflow where a customer should, by regulation,
be able to understand every decision about her case.  The example walks
the full methodology:

1. detect that the naive workflow is NOT transparent for the customer
   (Theorem 5.11's decision procedure finds a counterexample);
2. check the design guidelines and acyclicity bound (Theorems 6.2/6.3);
3. enforce transparency at runtime with the Theorem 6.7 monitor,
   watching it block a run that uses stale invisible data;
4. compile a propositional workflow into its explicit ``P^t`` program
   and lift/inspect runs through the projection Π.

Run with: ``python examples/transparent_design.py``
"""

from repro.api import (
    RunGenerator,
    SearchBudget,
    check_design_guidelines,
    check_transparent,
    enforce_run,
    parse_program,
    rewrite_transparent,
    smallest_bound,
)
from repro.design import analyze_acyclicity, lift_events
from repro.workflow import Event, execute
from repro.workflow.domain import FreshValue
from repro.workflow.queries import Var
from repro.workloads import chain_program, hiring_transparent_program

NAIVE = """
peers desk, audit, customer
relation Complaint(K)
relation Assessment(K)
relation Resolution(K)
view Complaint@desk(K)
view Complaint@audit(K)
view Complaint@customer(K)
view Assessment@desk(K)
view Assessment@audit(K)
view Resolution@desk(K)
view Resolution@customer(K)
[file]    +Complaint@desk(x) :-
[assess]  +Assessment@audit(x) :- Complaint@audit(x)
[resolve] +Resolution@desk(x) :- Assessment@desk(x)
"""


def main() -> None:
    naive = parse_program(NAIVE)
    budget = SearchBudget(pool_extra=2, max_tuples_per_relation=1)

    # ------------------------------------------------------------------
    # 1. The naive workflow is h-bounded but not transparent.
    # ------------------------------------------------------------------
    bound = smallest_bound(naive, "customer", 4, budget)
    print(f"Naive workflow: smallest boundedness h = {bound}")
    result = check_transparent(naive, "customer", h=bound, budget=budget)
    print(f"Transparent for the customer? {result.transparent}")
    if result.violation is not None:
        print(f"  counterexample: {result.violation.describe()}")

    # ------------------------------------------------------------------
    # 2. The Stage-based redesign follows the guidelines.
    # ------------------------------------------------------------------
    redesigned = hiring_transparent_program()
    report = check_design_guidelines(
        redesigned, "sue", ["Cleared", "Approved", "Hire"]
    )
    print(
        "\nStage-based redesign follows guidelines (C1)-(C4):",
        "yes" if report.ok else report.violations,
    )
    verdict = check_transparent(redesigned, "sue", h=2, budget=budget)
    print(f"...and the Theorem 5.11 decision confirms transparency: {verdict.transparent}")

    acyclicity = analyze_acyclicity(naive, "customer")
    print(
        f"\nAcyclicity (Theorem 6.3): p-acyclic={acyclicity.acyclic}, "
        f"longest dependency path g={acyclicity.longest_path}, "
        f"bound (ab+1)^g={acyclicity.bound}"
    )

    # ------------------------------------------------------------------
    # 3. Runtime enforcement (Theorem 6.7 semantics).
    # ------------------------------------------------------------------
    k, k2 = FreshValue(0), FreshValue(1)
    sneaky = [
        Event(naive.rule("file"), {Var("x"): k}),     # visible
        Event(naive.rule("assess"), {Var("x"): k}),    # silent
        Event(naive.rule("file"), {Var("x"): k2}),     # visible: new stage
        Event(naive.rule("resolve"), {Var("x"): k}),   # uses the stale assessment!
    ]
    trace = enforce_run(naive, "customer", 2, sneaky)
    print(f"\nEnforcing the sneaky run: accepted={trace.accepted}")
    for decision in trace.blocked():
        print(f"  blocked event [{decision.index}]: {decision.reason}")

    honest = [sneaky[0], sneaky[1], Event(naive.rule("resolve"), {Var("x"): k})]
    print(
        "Enforcing the honest run (same stage):",
        f"accepted={enforce_run(naive, 'customer', 2, honest).accepted}",
    )

    # ------------------------------------------------------------------
    # 4. The explicit P^t compilation on a propositional pipeline.
    # ------------------------------------------------------------------
    chain = chain_program(2)
    compiled = rewrite_transparent(chain, "observer", h=3)
    print(
        f"\nCompiled P^t for a depth-2 pipeline: {len(compiled.program)} rules, "
        f"companions: {compiled.companion_relations()}"
    )
    run = execute(chain, [Event(chain.rule(n), {}) for n in ("start", "step0", "step1")])
    lifted = lift_events(compiled, run.events)
    print("Lifting the pipeline run into P^t:", [e.rule.name for e in lifted])


if __name__ == "__main__":
    main()
