"""Consistent-hash placement of run ids onto cluster shards.

The ring answers exactly one question — *which shard owns this run?* —
and answers it deterministically: placement depends only on the node
names and the run id, never on process state, insertion order or the
salted builtin ``hash``.  Each node contributes ``vnodes`` virtual
points (md5 of ``"<node>#<replica>"``), a key is owned by the first
point clockwise of its own hash, and adding or removing one node moves
only the keys adjacent to that node's points (~1/N of the keyspace)
instead of reshuffling everything the way modulo hashing would.

Placement is deliberately decoupled from *addressing*: the router keeps
a separate node → ``(host, port)`` table, so a failover (a restarted
shard on a new port, or a follower promoted to serve a dead primary's
range) changes where a node's traffic goes without moving a single key
— which is what keeps cluster placement bit-stable across the kill /
recover cycles the differential suite replays.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple as PyTuple

from ..workflow.errors import WorkflowError

__all__ = ["HashRing", "RingError"]


class RingError(WorkflowError):
    """The ring was built or used inconsistently."""


def _point(data: str) -> int:
    """A stable 64-bit position on the ring (md5, not the salted hash)."""
    return int.from_bytes(hashlib.md5(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic key → node placement with virtual nodes.

    >>> ring = HashRing(["shard-0", "shard-1"])
    >>> ring.owner("load-0-3") in ("shard-0", "shard-1")
    True
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise RingError("the ring needs at least one virtual node per node")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise RingError("the ring needs at least one node")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> PyTuple[str, ...]:
        return tuple(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise RingError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        self._nodes.sort()
        for replica in range(self.vnodes):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # An exact 64-bit collision between distinct vnode labels is
            # ~impossible; ties break toward the lexicographically
            # smaller node so placement stays order-independent anyway.
            if (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] <= node
            ):
                continue
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise RingError(f"node {node!r} is not on the ring")
        if len(self._nodes) == 1:
            raise RingError("cannot remove the last node from the ring")
        self._nodes.remove(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node that owns *key* (first vnode clockwise of its hash)."""
        point = _point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of *keys* each node owns (diagnostics / balance tests)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes
