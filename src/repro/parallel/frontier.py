"""Deterministic parallel frontier exploration (the BFS tentpole).

The sequential :class:`~repro.workflow.statespace.StateSpaceExplorer`
visits states in FIFO order; because children are always one level
deeper than their parent, the queue contents at any moment form one BFS
layer.  This module exploits that: it expands whole layers on a
:class:`~repro.parallel.pool.WorkerPool` (each worker applies events
and canonicalizes successors — the two expensive steps) and then
*replays* the exact sequential control flow in the parent over the
precomputed expansions: visit counting, budget checkpoints, the
``max_states`` cutoff, deduplication against the global seen-set and
child enqueueing all happen in the parent, in sequential order, using
the workers' results as a lookup table.

The replay makes the engine deterministic by construction: the yielded
state stream, the final :class:`ExplorationStats` and every witness
path are identical to the sequential explorer's regardless of worker
count or interleaving — workers only precompute values the replay
*would* have computed, they never influence its decisions.  The
differential suite under ``tests/parallel/`` checks that equivalence
against the sequential engine directly.

Dedup keys are process-stable strings rather than instances: model
objects cache structural hashes, and a string key never smuggles a
hash computed in another process into the parent's seen-set.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..obs.metrics import METRICS
from ..obs.trace import span
from ..runtime.budget import Budget, checkpoint
from ..runtime.faults import FaultPlan
from ..workflow.domain import FreshValueSource
from ..workflow.engine import apply_event, apply_event_with_delta
from ..workflow.enumerate import applicable_events
from ..workflow.errors import BudgetExceeded
from ..workflow.eventindex import ApplicableEventIndex
from ..workflow.instance import Instance
from ..workflow.isomorphism import canonicalize_instance
from ..workflow.program import WorkflowProgram
from ..workflow.statespace import (
    FRESH_BASE,
    ExplorationResult,
    ExplorationStats,
    ReachableState,
)
from .config import resolve_workers
from .pool import BudgetSpec, TaskTruncated, WorkerPool

__all__ = [
    "iterate_states",
    "parallel_explore",
    "parallel_find",
    "signature_key",
]

_STATES = METRICS.counter(
    "repro_search_nodes_total",
    "Search nodes expanded, by search kind",
    labelnames=("search",),
).labels(search="parallel_statespace")
_FRONTIER = METRICS.histogram(
    "repro_parallel_frontier_states",
    "BFS layer sizes dispatched by the parallel frontier engine",
)
_DEDUP = METRICS.counter(
    "repro_parallel_dedup_total",
    "Successor dedup decisions in the parallel frontier merge",
    labelnames=("outcome",),
)
_EXPLORATIONS = METRICS.counter(
    "repro_parallel_explorations_total",
    "Parallel explorations materialised, by outcome",
    labelnames=("outcome",),
)


def signature_key(instance: Instance) -> str:
    """A process-stable dedup key: equal instances, equal strings.

    The rendering tags every value with its type name, so values whose
    ``repr`` collide across types (``1`` vs ``"1"``) stay distinct.
    """
    parts: List[str] = []
    for relation in instance.schema:
        rows = sorted(
            "|".join(f"{type(v).__name__}:{v!r}" for v in tup.values)
            for tup in instance.relation(relation.name)
        )
        parts.append(relation.name + "{" + ";".join(rows) + "}")
    return "&".join(parts)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _FrontierContext:
    """Per-worker immutable context: the program and the dedup mode."""

    __slots__ = ("program", "dedup", "constants")

    def __init__(self, program: WorkflowProgram, dedup: str) -> None:
        self.program = program
        self.dedup = dedup
        self.constants = program.constants()

    def __reduce__(self):
        return (_FrontierContext, (self.program, self.dedup))


def _node_signature(ctx: _FrontierContext, instance: Instance) -> Optional[str]:
    if ctx.dedup == "none":
        return None
    if ctx.dedup == "exact":
        return signature_key(instance)
    return signature_key(canonicalize_instance(instance, fixed=ctx.constants))


def _expand_batch(ctx: _FrontierContext, arg: PyTuple) -> Any:
    """Expand a batch of states; returns one successor list per state.

    Each batch entry is ``(visit_index, instance, index)`` where *index*
    is the parent's :class:`ApplicableEventIndex` (in-process execution
    only; across processes it is None and the worker enumerates from
    scratch — the two paths yield identical event sequences, which the
    event-index property suite guarantees).  The successor entries are
    ``(event, successor, key, child_index)`` in enumeration order — the
    exact order the sequential explorer would have produced.
    """
    batch, spec = arg
    budget = spec.to_budget() if spec is not None else None
    out: List[Any] = []
    for visit_index, instance, index in batch:
        try:
            source = FreshValueSource(start=FRESH_BASE + 64 * visit_index)
            source.observe(ctx.constants)
            source.observe(instance.active_domain())
            expansions: List[PyTuple] = []
            candidates = (
                index.events(source)
                if index is not None
                else applicable_events(ctx.program, instance, source)
            )
            for event in candidates:
                # Poll only the task-local wall budget: the module-level
                # checkpoint would also tick the ambient budget's step
                # counter, which the sequential engine never does here —
                # the parent replay is the sole place steps are spent.
                if budget is not None:
                    budget.checkpoint()
                if index is not None:
                    successor, delta = apply_event_with_delta(
                        ctx.program.schema, instance, event, None, check_body=False
                    )
                    child_index = index.advanced(delta, successor)
                else:
                    successor = apply_event(
                        ctx.program.schema, instance, event, None, check_body=False
                    )
                    child_index = None
                expansions.append(
                    (event, successor, _node_signature(ctx, successor), child_index)
                )
        except BudgetExceeded as exc:
            return TaskTruncated(reason=str(exc), partial=out)
        out.append(expansions)
    return out


# ----------------------------------------------------------------------
# Parent side: the deterministic replay merge
# ----------------------------------------------------------------------


class _Node:
    __slots__ = ("state", "index", "visit_index")

    def __init__(self, state: ReachableState, index, visit_index: int) -> None:
        self.state = state
        self.index = index
        self.visit_index = visit_index


def _chunked(items: Sequence, size: int) -> List[List]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def iterate_states(
    program: WorkflowProgram,
    max_depth: int,
    max_states: Optional[int] = None,
    *,
    dedup: str = "isomorphic",
    initial: Optional[Instance] = None,
    budget: Optional[Budget] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    use_event_index: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    stats: Optional[ExplorationStats] = None,
) -> Iterator[ReachableState]:
    """Yield reachable states in the exact sequential BFS visit order.

    Semantics match :meth:`StateSpaceExplorer.iterate` bit for bit —
    same states, same order, same stats accounting, and budget
    violations raise :class:`BudgetExceeded` from the same replay
    positions the sequential loop polls — while event application and
    canonicalization run on *workers* processes a layer at a time.
    """
    if dedup not in ("none", "exact", "isomorphic"):
        raise ValueError(f"unknown dedup mode {dedup!r}")
    workers = resolve_workers(workers)
    if initial is None:
        initial = Instance.empty(program.schema.schema)
    if stats is None:
        stats = ExplorationStats()
    context = _FrontierContext(program, dedup)
    seen: set = set()
    if dedup != "none":
        seen.add(_node_signature(context, initial))
    # In-process pools thread the incremental event index through the
    # layers like the sequential explorer; a process pool cannot (the
    # index's shared valuation caches do not survive pickling), so its
    # workers enumerate from scratch — more work per state, but spread
    # over the workers.
    carry_index = workers == 1 and use_event_index
    root_index = ApplicableEventIndex(program, initial) if carry_index else None
    wave: List[_Node] = [_Node(ReachableState(initial, ()), root_index, 1)]
    visited_before_wave = 0
    with WorkerPool(workers, _expand_batch, context, fault_plan=fault_plan) as pool:
        while wave:
            _FRONTIER.observe(len(wave))
            # 1. Decide which nodes the sequential loop would expand
            #    (deep-enough nodes and those past the max_states cutoff
            #    are yielded but never expanded) and dispatch them.
            to_expand = [
                node
                for node in wave
                if node.state.depth < max_depth
                and (max_states is None or node.visit_index < max_states)
            ]
            spec = BudgetSpec.capture(budget)
            if chunk_size is not None:
                size = max(1, chunk_size)
            else:
                size = max(1, -(-len(to_expand) // (workers * 4)))
            batches = _chunked(
                [(n.visit_index, n.state.instance, n.index) for n in to_expand],
                size,
            )
            results = pool.run((batch, spec) for batch in batches)
            expansions: Dict[int, Any] = {}
            truncated_reason: Optional[str] = None
            for batch, result in zip(batches, results):
                if isinstance(result, TaskTruncated):
                    # The batch's trailing states never got expanded;
                    # the replay raises when it reaches the first one.
                    entries = result.partial or []
                    truncated_reason = result.reason
                else:
                    entries = result
                for (visit_index, _instance, _index), entry in zip(batch, entries):
                    expansions[visit_index] = entry
            # 2. Replay the sequential control flow over the lookup table.
            next_wave: List[_Node] = []
            next_visit = visited_before_wave + len(wave) + 1
            for node in wave:
                state = node.state
                checkpoint(budget, depth=state.depth)
                _STATES.inc()
                stats.states_visited += 1
                stats.max_depth_reached = max(stats.max_depth_reached, state.depth)
                yield state
                if max_states is not None and stats.states_visited >= max_states:
                    return
                if state.depth >= max_depth:
                    continue
                entry = expansions.get(node.visit_index)
                if entry is None:
                    # The worker's budget tripped before expanding this
                    # node — surface it exactly like a parent-side trip.
                    raise BudgetExceeded(
                        truncated_reason or "worker budget exhausted mid-layer"
                    )
                successors = 0
                for event, successor, key, child_index in entry:
                    stats.transitions += 1
                    successors += 1
                    if dedup != "none":
                        if key in seen:
                            stats.states_deduplicated += 1
                            _DEDUP.labels(outcome="hit").inc()
                            continue
                        seen.add(key)
                        _DEDUP.labels(outcome="miss").inc()
                    next_wave.append(
                        _Node(
                            ReachableState(successor, state.path + (event,)),
                            child_index,
                            next_visit,
                        )
                    )
                    next_visit += 1
                if successors == 0:
                    stats.deadlocks += 1
            visited_before_wave += len(wave)
            wave = next_wave


def parallel_explore(
    program: WorkflowProgram,
    max_depth: int,
    max_states: Optional[int] = None,
    *,
    dedup: str = "isomorphic",
    initial: Optional[Instance] = None,
    budget: Optional[Budget] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ExplorationResult:
    """Materialise the reachable set on a worker pool (anytime-valid).

    The parallel counterpart of :meth:`StateSpaceExplorer.explore`: the
    result (states, stats, truncation flags) is identical to the
    sequential engine's for every worker count; a tripped budget returns
    the best-so-far prefix with ``truncated=True`` instead of raising.
    """
    stats = ExplorationStats()
    states: List[ReachableState] = []
    with span(
        "parallel_explore",
        dedup=dedup,
        max_depth=max_depth,
        max_states=max_states,
        workers=resolve_workers(workers),
    ) as trace:
        try:
            for state in iterate_states(
                program,
                max_depth,
                max_states,
                dedup=dedup,
                initial=initial,
                budget=budget,
                workers=workers,
                chunk_size=chunk_size,
                fault_plan=fault_plan,
                stats=stats,
            ):
                states.append(state)
        except BudgetExceeded as exc:
            _EXPLORATIONS.labels(outcome="truncated").inc()
            trace.set("states", len(states))
            trace.set("truncated", True)
            return ExplorationResult(states, stats, truncated=True, reason=str(exc))
        _EXPLORATIONS.labels(outcome="completed").inc()
        trace.set("states", len(states))
        trace.set("truncated", False)
    return ExplorationResult(states, stats)


def parallel_find(
    program: WorkflowProgram,
    predicate: Callable[[Instance], bool],
    max_depth: int,
    max_states: Optional[int] = None,
    *,
    dedup: str = "isomorphic",
    initial: Optional[Instance] = None,
    budget: Optional[Budget] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Optional[ReachableState]:
    """The first reachable state satisfying *predicate*, in BFS order.

    The predicate runs in the parent over the deterministic visit
    stream, so it needs not be picklable and the witness returned is the
    same state (and path) the sequential ``find`` returns.
    """
    with span(
        "parallel_find", max_depth=max_depth, workers=resolve_workers(workers)
    ) as trace:
        for state in iterate_states(
            program,
            max_depth,
            max_states,
            dedup=dedup,
            initial=initial,
            budget=budget,
            workers=workers,
            chunk_size=chunk_size,
            fault_plan=fault_plan,
        ):
            if predicate(state.instance):
                trace.set("found_depth", state.depth)
                return state
        trace.set("found_depth", None)
    return None
