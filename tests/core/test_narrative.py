"""Tests for the prose narratives."""

import pytest

from repro.core.explain import explain_run
from repro.core.narrative import narrate_explanation, narrate_run, object_story
from repro.workflow import Event, RunGenerator, execute


class TestNarrateExplanation:
    def test_example_42_narrative(self, approval_run):
        text = narrate_run(approval_run, "applicant")
        assert "applicant's point of view" in text
        assert "another peer's action" in text
        # g (step 2) enables the approval; e and f are discarded.
        assert "step 2" in text
        assert "had no bearing" in text

    def test_own_actions_attributed(self, approval_run):
        text = narrate_run(approval_run, "assistant")
        assert "assistant's own action (h)" in text

    def test_empty_run(self, approval):
        run = execute(approval, [])
        text = narrate_run(run, "applicant")
        assert "observed nothing" in text

    def test_no_discard_case(self, approval):
        run = execute(approval, [Event(approval.rule("g"), {}),
                                 Event(approval.rule("h"), {})])
        text = narrate_run(run, "applicant")
        assert "Every event of the run mattered" in text

    def test_unconditional_observation(self, approval):
        run = execute(approval, [Event(approval.rule("e"), {})])
        text = narrate_run(run, "ceo")
        assert "needing nothing before it" in text

    def test_matches_explanation_object(self, hiring):
        run = RunGenerator(hiring, seed=6).random_run(12)
        explanation = explain_run(run, "sue")
        assert narrate_explanation(explanation) == narrate_run(run, "sue")


class TestObjectStory:
    def test_lifecycle_story(self, approval_run):
        text = object_story(approval_run, "ok", 0, peer="applicant")
        assert "life 1: created at step 0 (e by cto)" in text
        assert "deleted at step 1 (f by cto)" in text
        assert "life 2: created at step 2 (g by ceo)" in text
        assert "still alive" in text

    def test_never_existed(self, approval_run):
        assert "never existed" in object_story(approval_run, "ok", 99)

    def test_visibility_summary(self, approval_run):
        text = object_story(approval_run, "approval", 0, peer="applicant")
        assert "directly observed" in text

    def test_attribute_modifications_reported(self):
        from repro.workflow.domain import FreshValue
        from repro.workflow.queries import Var
        from repro.workloads.generators import profile_program

        program = profile_program()
        k = FreshValue(50)
        run = execute(
            program,
            [
                Event(program.rule("create"), {Var("x"): k}),
                Event(program.rule("set_email"), {Var("x"): k}),
                Event(program.rule("set_phone"), {Var("x"): k}),
            ],
        )
        text = object_story(run, "P", k, peer="observer")
        assert "attribute 'email' set at step 1" in text
        assert "attribute 'phone' set at step 2" in text
