"""E14: the multi-run service — throughput and tail latency under load.

(The issue tracking this experiment numbered it E12; E12 was already
the PCP gadget, so the service experiment is E14.)

Drives the full TCP stack (loadgen client → JSON-lines protocol →
broker mailboxes → sharded registry → journals off) at 1, 8 and 64
concurrent runs, cached views vs from-scratch recomputation per read.
Expected shape: events/sec grows with run concurrency (per-run FIFO is
the only serialization point), and the cached configuration dominates
the uncached one once view reads are interleaved — reads cost
O(|delta|) maintenance amortized instead of O(|I|) projection each.
"""

from __future__ import annotations

import asyncio

import pytest

from conftest import wall_time
from repro.analysis import print_table
from repro.service import ServiceServer, WorkflowService, run_loadgen
from repro.workloads import churn_program

EVENTS_PER_RUN = 12
CONCURRENCY = (1, 8, 64)


def drive(
    cache_views: bool,
    runs: int,
    view_every: int = 3,
    clients: int = 1,
    batch_size: int = 1,
    events_per_run: int = EVENTS_PER_RUN,
):
    """One loadgen session against a fresh in-process server."""

    async def main():
        service = WorkflowService(
            churn_program(), cache_views=cache_views, batch_size=batch_size
        )
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await run_loadgen(
                service.program,
                server.host,
                server.port,
                runs=runs,
                events_per_run=events_per_run,
                seed=runs,
                verify=False,
                view_every=view_every,
                clients=clients,
                batch_size=batch_size,
            )
        finally:
            await server.stop()

    return asyncio.run(main())


@pytest.mark.parametrize("runs", CONCURRENCY)
def test_cached_service_under_load(benchmark, runs):
    report = benchmark.pedantic(
        lambda: drive(True, runs), rounds=1, iterations=1, warmup_rounds=1
    )
    assert report.clean
    assert report.applied == runs * EVENTS_PER_RUN


@pytest.mark.parametrize("runs", CONCURRENCY)
def test_uncached_service_under_load(benchmark, runs):
    report = benchmark.pedantic(
        lambda: drive(False, runs), rounds=1, iterations=1, warmup_rounds=1
    )
    assert report.clean
    assert report.applied == runs * EVENTS_PER_RUN


def test_e14_table(benchmark):
    rows = []
    for runs in CONCURRENCY:
        for cached in (True, False):
            report = drive(cached, runs)
            assert report.clean
            rows.append(
                [
                    runs,
                    "cached" if cached else "scratch",
                    report.applied,
                    f"{report.events_per_second:.0f}",
                    f"{report.p50_ms:.2f}",
                    f"{report.p99_ms:.2f}",
                ]
            )
    print_table(
        "E14: service throughput/latency (views cached vs from scratch)",
        ["runs", "views", "events", "events/s", "p50 ms", "p99 ms"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e14_batch_table(benchmark):
    """Batched submission + drain: events/s at batch sizes 1, 8, 64.

    ``batch_size`` sets both the client chunking (``submit_batch``)
    and the broker's drain batching, so the column isolates how much
    per-event wire + wakeup overhead batching amortizes away.  The
    multi-client rows partition the runs over 4 connections instead of
    one connection per run.
    """
    rows = []
    for clients in (1, 4):
        for batch in (1, 8, 64):
            report = drive(
                True,
                runs=8,
                view_every=0,
                clients=clients,
                batch_size=batch,
                events_per_run=64,
            )
            assert report.clean
            assert report.applied == 8 * 64
            per_client = (
                " ".join(
                    f"{stats.events_per_second:.0f}"
                    for stats in report.client_stats
                )
                or "-"
            )
            rows.append(
                [
                    clients,
                    batch,
                    report.applied,
                    f"{report.events_per_second:.0f}",
                    f"{report.p50_ms:.2f}",
                    per_client,
                ]
            )
    print_table(
        "E14c: batched submission/drain (clients x batch size)",
        ["clients", "batch", "events", "events/s", "p50 ms", "per-client ev/s"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e14_maintenance_table(benchmark):
    """The cache's asymptotic payoff, isolated from the wire.

    Per-event view refresh is O(|delta|) with the cache and O(|I|)
    from scratch, so the scratch column grows with instance size while
    the cached column stays flat.
    """
    from repro.service.viewcache import CachedPeerView
    from repro.workflow import Event, FreshValue, Instance, Var
    from repro.workflow.engine import apply_event_with_delta

    program = churn_program()
    schema = program.schema
    make = program.rule("make")
    probe = 50  # events measured at each size

    rows = []
    instance = Instance.empty(schema.schema)
    cache = CachedPeerView(schema, "maker", instance)
    next_fresh = 0
    for size in (100, 400, 1600):
        while instance.size() < size:
            event = Event(make, {Var("x"): FreshValue(next_fresh)})
            next_fresh += 1
            instance, delta = apply_event_with_delta(schema, instance, event)
            cache.apply_delta(delta)

        steps = []
        for _ in range(probe):
            event = Event(make, {Var("x"): FreshValue(next_fresh)})
            next_fresh += 1
            successor, delta = apply_event_with_delta(schema, instance, event)
            steps.append((successor, delta))
            instance = successor

        def maintain():
            for _, delta in steps:
                cache.apply_delta(delta)

        def scratch():
            for successor, _ in steps:
                schema.view_instance(successor, "maker")

        cached_us = wall_time(maintain) / probe * 1e6
        scratch_us = wall_time(scratch) / probe * 1e6
        assert cache.instance() == schema.view_instance(instance, "maker")
        rows.append(
            [
                instance.size(),
                f"{cached_us:.1f}",
                f"{scratch_us:.1f}",
                f"{scratch_us / cached_us:.1f}x",
            ]
        )
    print_table(
        "E14b: per-event view refresh (cache O(|delta|) vs scratch O(|I|))",
        ["instance size", "cached us/event", "scratch us/event", "speedup"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
