"""Tests for the program linter."""

import pytest

from repro.workflow.lint import LintFinding, lint_dynamic, lint_program, lint_static
from repro.workflow.parser import parse_program


class TestStaticLint:
    def test_clean_program_has_no_warnings(self, hiring):
        findings = lint_static(hiring)
        assert not [f for f in findings if f.severity == "warning"]
        # Hire is a terminal output relation: an informational finding.
        assert [f.subject for f in findings] == ["Hire"]

    def test_never_written_relation(self):
        program = parse_program(
            """
            peers p
            relation R(K)
            relation Ghost(K)
            view R@p(K)
            view Ghost@p(K)
            [r] +R@p(x) :- Ghost@p(g)
            """
        )
        findings = lint_static(program)
        assert any(
            f.category == "never-written" and f.subject == "Ghost" for f in findings
        )

    def test_never_read_relation(self):
        program = parse_program(
            """
            peers p
            relation R(K)
            relation Sink(K)
            view R@p(K)
            view Sink@p(K)
            [r] +R@p(x) :-
            [s] +Sink@p(x) :- R@p(y)
            """
        )
        findings = lint_static(program)
        assert any(
            f.category == "never-read" and f.subject == "Sink" for f in findings
        )

    def test_selection_counts_as_read(self):
        program = parse_program(
            """
            peers p, q
            relation R(K, flag)
            view R@p(K, flag)
            view R@q(K) where flag = 1
            [r] +R@p(x, 1) :-
            """
        )
        findings = lint_static(program)
        # R is read via q's selection: only findings about other things.
        assert not any(f.subject == "R" and f.category == "never-read" for f in findings)

    def test_idle_peer(self):
        program = parse_program(
            """
            peers p, ghost
            relation R(K)
            view R@p(K)
            [r] +R@p(x) :- R@p(y)
            """
        )
        findings = lint_static(program)
        assert any(f.category == "idle-peer" and f.subject == "ghost" for f in findings)


class TestDynamicLint:
    def test_dead_rule_detected(self):
        program = parse_program(
            """
            peers p
            relation R(K)
            relation Never(K)
            view R@p(K)
            view Never@p(K)
            [live] +R@p(x) :-
            [dead] +R@p(x) :- Never@p(n)
            [write_never] +Never@p(x) :- Never@p(y)
            """
        )
        findings = lint_dynamic(program, max_depth=3, max_states=100)
        dead = {f.subject for f in findings if f.category == "possibly-dead-rule"}
        assert "dead" in dead and "write_never" in dead
        assert "live" not in dead

    def test_live_rules_not_flagged(self, approval):
        findings = lint_dynamic(approval, max_depth=4, max_states=200)
        assert not findings

    def test_bound_mentioned_in_message(self):
        program = parse_program(
            """
            peers p
            relation R(K)
            relation Never(K)
            view R@p(K)
            view Never@p(K)
            [dead] +R@p(x) :- Never@p(n)
            """
        )
        findings = lint_dynamic(program, max_depth=2)
        assert findings and "depth" in findings[0].message


class TestCombined:
    def test_lint_program_merges(self):
        program = parse_program(
            """
            peers p, ghost
            relation R(K)
            relation Never(K)
            view R@p(K)
            view Never@p(K)
            [dead] +R@p(x) :- Never@p(n)
            """
        )
        findings = lint_program(program, max_depth=2)
        categories = {f.category for f in findings}
        assert {"never-written", "idle-peer", "possibly-dead-rule"} <= categories

    def test_finding_str(self):
        finding = LintFinding("warning", "never-written", "R", "boom")
        assert str(finding) == "[warning] never-written(R): boom"
