"""The realistic workflow families: validity, knobs, and plausible runs."""

from __future__ import annotations

import pytest

from repro.workflow import parse_program, program_to_text
from repro.workflow.lint import lint_program
from repro.workloads import (
    FAMILIES,
    family_names,
    get_family,
    make_family_program,
)
from repro.workloads.families.base import optional_views, parse_family_spec

EXPECTED = ("cicd", "ecommerce", "healthcare", "procurement")

#: A relation each family's pipeline should eventually populate, and the
#: progress relation whose keys feed it.  Used to check that weighted
#: seeded runs actually *advance* instead of only creating roots.
TERMINALS = {
    "ecommerce": "Delivered",
    "healthcare": "Notice",
    "cicd": "Live0",
    "procurement": "Fulfilled",
}


class TestCatalog:
    def test_expected_families_registered(self):
        assert family_names() == EXPECTED

    def test_get_family_helpful_error(self):
        with pytest.raises(KeyError, match="known families: cicd"):
            get_family("banking")

    def test_metadata_complete(self):
        for name in family_names():
            family = get_family(name)
            assert family.name == name
            assert family.summary
            assert family.defaults
            assert family.weights

    @pytest.mark.parametrize("name", EXPECTED)
    def test_observer_is_a_peer_with_views(self, name):
        family = get_family(name)
        program = family.program()
        assert family.observer in program.schema.peers
        assert program.schema.views_of_peer(family.observer)


class TestPrograms:
    @pytest.mark.parametrize("name", EXPECTED)
    def test_default_program_round_trips_and_lints(self, name):
        program = get_family(name).program()
        text = program_to_text(program)
        reparsed = parse_program(text)
        assert program_to_text(reparsed) == text
        errors = [f for f in lint_program(program) if f.severity == "error"]
        assert not errors, errors

    @pytest.mark.parametrize("name", EXPECTED)
    def test_every_family_has_a_deletion_rule(self, name):
        # Each family models at least one retraction (cancel, rollback,
        # withdraw...), so deletions are exercised downstream.
        from repro.workflow.rules import Deletion

        program = get_family(name).program()
        assert any(
            any(isinstance(atom, Deletion) for atom in rule.head)
            for rule in program.rules
        )

    def test_knob_scaling_changes_rule_count(self):
        small = get_family("cicd").program(stages=2, services=1)
        large = get_family("cicd").program(stages=5, services=3)
        assert len(large.rules) > len(small.rules)
        assert len(large.schema.schema.relations) > len(
            small.schema.schema.relations
        )

    def test_visibility_knob_slides_observer_views(self):
        family = get_family("healthcare")
        opaque = family.program(visibility=0.0)
        clear = family.program(visibility=1.0)
        assert len(clear.schema.views_of_peer(family.observer)) > len(
            opaque.schema.views_of_peer(family.observer)
        )

    def test_unknown_knob_rejected(self):
        with pytest.raises(KeyError, match="valid knobs"):
            get_family("ecommerce").program(warp=9)


class TestRuns:
    @pytest.mark.parametrize("name", EXPECTED)
    def test_seeded_runs_are_deterministic(self, name):
        family = get_family(name)
        first = family.events(seed=11, steps=15)
        second = family.events(seed=11, steps=15)
        assert [repr(e) for e in first] == [repr(e) for e in second]
        other = family.events(seed=12, steps=15)
        assert [repr(e) for e in first] != [repr(e) for e in other]

    @pytest.mark.parametrize("name", EXPECTED)
    def test_weighted_runs_reach_the_pipeline_terminal(self, name):
        family = get_family(name)
        terminal = TERMINALS[name]
        reached = False
        for seed in range(6):
            run = family.run(seed=seed, steps=40)
            final = run.final_instance
            if final.relation(terminal):
                reached = True
                break
        assert reached, (
            f"no seed in 0..5 drove {name} to populate {terminal!r}"
        )

    def test_run_rejects_program_plus_overrides(self):
        family = get_family("ecommerce")
        program = family.program()
        with pytest.raises(TypeError):
            family.run(seed=0, steps=5, program=program, items=2)


class TestSpecs:
    def test_parse_family_spec(self):
        assert parse_family_spec("ecommerce") == ("ecommerce", {})
        name, knobs = parse_family_spec(
            "procurement:vendors=5, visibility=0.25,note=hi"
        )
        assert name == "procurement"
        assert knobs == {"vendors": 5, "visibility": 0.25, "note": "hi"}

    def test_parse_family_spec_rejects_bad_knob(self):
        with pytest.raises(ValueError, match="expected knob=value"):
            parse_family_spec("ecommerce:items")

    def test_make_family_program_applies_knobs(self):
        program, family = make_family_program("ecommerce:items=1")
        assert family is FAMILIES["ecommerce"]
        assert sum(
            1 for rule in program.rules if rule.name.startswith("place_sku")
        ) == 1


class TestOptionalViews:
    def test_visibility_slices_prefix(self):
        relations = [("A", "K"), ("B", "K"), ("C", "K"), ("D", "K")]
        assert optional_views(relations, "p", 0.0) == []
        assert optional_views(relations, "p", 0.5) == [
            "view A@p(K)",
            "view B@p(K)",
        ]
        assert len(optional_views(relations, "p", 1.0)) == 4

    def test_visibility_bounds_checked(self):
        with pytest.raises(ValueError, match="visibility"):
            optional_views([("A", "K")], "p", 1.5)
