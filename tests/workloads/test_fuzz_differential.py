"""Differential fuzzing: every backend pair agrees on every program.

A deterministic corpus of fuzzer-generated programs plus the four
realistic families is pushed through every engine pair — naive vs
planned vs compiled query backends, incremental dataflow vs from-scratch
recomputation, journal recovery vs the live run, and the sharded
cluster service vs a single shard.  Any divergence fails with a
copy-pasteable reproduce one-liner
(``python -m repro.workloads.fuzz --seed N --steps S``) that replays and
shrinks the offending program.

``FUZZ_SCALE`` sizes the corpus: ``smoke`` (the default, tier-1 speed),
``ci`` (the 200-seed acceptance sweep the workload-fuzz CI job runs),
or ``nightly`` (a larger scheduled sweep).  The seeds are fixed per
scale — this is a regression corpus, not a random walk.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads import (
    differential_check,
    family_names,
    fuzz_program,
    get_family,
)
from repro.workloads.fuzz import PAIRS

_SCALES = {"smoke": 25, "ci": 200, "nightly": 500}
_SCALE = os.environ.get("FUZZ_SCALE", "smoke")
SEEDS = list(range(_SCALES.get(_SCALE, _SCALES["smoke"])))

#: The cluster pair spins up two in-process sharded services per check;
#: run it on a slice of the corpus so the full sweep stays fast while
#: every seed still covers backends, dataflow and recovery.
CLUSTER_EVERY = 5
FAST_PAIRS = ("backends", "dataflow", "recovery")


def _assert_ok(report):
    assert report.ok, f"{report.summary()}\nreproduce: {report.reproduce()}"


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_programs_agree_across_engines(seed):
    pairs = PAIRS if seed % CLUSTER_EVERY == 0 else FAST_PAIRS
    program = fuzz_program(seed)
    _assert_ok(differential_check(program, seed=seed, steps=12, pairs=pairs))


@pytest.mark.parametrize("name", family_names())
@pytest.mark.parametrize("seed", SEEDS[:: max(1, len(SEEDS) // 5)])
def test_families_agree_across_engines(name, seed):
    family = get_family(name)
    program = family.program()
    pairs = PAIRS if seed % CLUSTER_EVERY == 0 else FAST_PAIRS
    _assert_ok(
        differential_check(
            program, seed=seed, steps=14, pairs=pairs, label=name
        )
    )


@given(seed=st.integers(min_value=10_000, max_value=1_000_000),
       steps=st.integers(min_value=4, max_value=16))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_sweep_backends_and_dataflow(seed, steps):
    """Hypothesis drives seeds outside the fixed corpus; on failure its
    shrinker minimizes (seed, steps) and the assert carries the
    fuzzer's own reproduce one-liner for the program-level shrink."""
    program = fuzz_program(seed)
    _assert_ok(
        differential_check(
            program, seed=seed, steps=steps, pairs=("backends", "dataflow")
        )
    )


def test_reproduce_one_liner_actually_reproduces():
    """The CLI entry named in failure messages runs the same check."""
    from repro.workloads.fuzz import main

    assert main(["--seed", "3", "--steps", "10"]) == 0
    assert main(["--family", "ecommerce", "--seed", "1", "--steps", "8"]) == 0
