"""Tests for relation and database schemas."""

import pytest

from repro.workflow.errors import SchemaError
from repro.workflow.schema import KEY_ATTRIBUTE, Relation, Schema, proposition


class TestRelation:
    def test_key_is_first_attribute(self):
        r = Relation("R", ("K", "A", "B"))
        assert r.key_attribute == "K"
        assert r.arity == 3
        assert r.nonkey_attributes == ("A", "B")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("K", "A", "A"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", ("K",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ())

    def test_position(self):
        r = Relation("R", ("K", "A", "B"))
        assert r.position("B") == 2
        with pytest.raises(SchemaError):
            r.position("Z")

    def test_has_attribute(self):
        r = Relation("R", ("K", "A"))
        assert r.has_attribute("A")
        assert not r.has_attribute("B")

    def test_equality_and_hash(self):
        assert Relation("R", ("K", "A")) == Relation("R", ("K", "A"))
        assert hash(Relation("R", ("K",))) == hash(Relation("R", ("K",)))
        assert Relation("R", ("K", "A")) != Relation("R", ("K", "B"))

    def test_repr(self):
        assert repr(Relation("R", ("K", "A"))) == "R(K, A)"


class TestProposition:
    def test_unary_with_key(self):
        p = proposition("OK")
        assert p.attributes == (KEY_ATTRIBUTE,)
        assert p.arity == 1


class TestSchema:
    def test_lookup(self):
        schema = Schema([Relation("R", ("K", "A")), proposition("OK")])
        assert schema.relation("R").arity == 2
        assert "OK" in schema
        assert "Z" not in schema
        assert len(schema) == 2

    def test_unknown_relation(self):
        schema = Schema([])
        with pytest.raises(SchemaError):
            schema.relation("R")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([proposition("A"), proposition("A")])

    def test_max_arity(self):
        schema = Schema([Relation("R", ("K", "A", "B")), proposition("OK")])
        assert schema.max_arity() == 3
        assert Schema([]).max_arity() == 0

    def test_extend(self):
        schema = Schema([proposition("A")])
        extended = schema.extend([proposition("B")])
        assert "B" in extended and "A" in extended
        assert "B" not in schema

    def test_iteration_order(self):
        schema = Schema([proposition("B"), proposition("A")])
        assert [r.name for r in schema] == ["B", "A"]
