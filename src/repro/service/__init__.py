"""The multi-run workflow service (serving layer over the formal substrate).

The paper's model is inherently multi-peer: peers interact only through
views ``R@p`` of a shared instance (Section 2).  This subpackage hosts
*many* such shared instances — one per run — behind an asyncio service,
making the hot path (event → view refresh → explanation) proportional
to the event's delta rather than to the instance:

* :mod:`repro.service.registry` — sharded run-id → hosted-run map with
  per-shard locks; every hosted run is journal-durable and recoverable
  (PR 1's :mod:`repro.runtime.journal`);
* :mod:`repro.service.broker` — per-run FIFO mailboxes with bounded
  queues, backpressure and budget-aware admission, plus the
  supervisor's retry/quarantine/crash-recovery semantics inline in the
  serving path;
* :mod:`repro.service.viewcache` — materialized peer views maintained
  incrementally from each transition's
  :class:`~repro.dataflow.delta.Delta`, subscribed to the run's
  :class:`~repro.dataflow.graph.DeltaGraph`;
* :mod:`repro.service.protocol` / :mod:`repro.service.server` — the
  JSON-lines TCP protocol (open / submit / view / explain / stats) and
  its asyncio front end;
* :mod:`repro.service.loadgen` — the load-generation and verification
  client (``repro loadgen``).
"""

from __future__ import annotations

from .broker import EventBroker, SubmitOutcome
from .errors import (
    AdmissionError,
    DuplicateRunError,
    ProtocolError,
    ServiceError,
    UnknownRunError,
)
from .loadgen import ClientStats, LoadReport, RunOutcome, ServiceClient, run_loadgen
from .registry import HostedRun, ShardedRunRegistry
from .server import ServiceServer, WorkflowService
from .viewcache import CachedPeerView, ViewCacheSet

__all__ = [
    "AdmissionError",
    "CachedPeerView",
    "DuplicateRunError",
    "EventBroker",
    "HostedRun",
    "ClientStats",
    "LoadReport",
    "ProtocolError",
    "RunOutcome",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardedRunRegistry",
    "SubmitOutcome",
    "UnknownRunError",
    "ViewCacheSet",
    "WorkflowService",
    "run_loadgen",
]
