"""Tests for the explicit P → P^t rewriting and the projection Π."""

import pytest

from repro.design.enforce import enforce_run
from repro.design.projection import (
    is_liftable,
    lift_events,
    project_run,
    projection_is_identity_for,
    source_rule_name,
)
from repro.design.rewrite import UnsupportedRewrite, rewrite_transparent
from repro.workflow import Event, RunGenerator, execute
from repro.workloads.generators import chain_program, noisy_chain_program


def events_of(program, *names):
    return [Event(program.rule(name), {}) for name in names]


@pytest.fixture(scope="module")
def chain2_rewrite():
    return rewrite_transparent(chain_program(2), "observer", h=3)


class TestRewriteStructure:
    def test_companions_created(self, chain2_rewrite):
        companions = set(chain2_rewrite.companion_relations())
        # S0, S1 are invisible to the observer; S2 is visible.
        assert "S0__t" in companions and "S1__t" in companions
        assert "S2__t" not in companions

    def test_stage_rule_present(self, chain2_rewrite):
        assert chain2_rewrite.program.rule("open_stage")

    def test_transparent_and_opaque_variants(self, chain2_rewrite):
        names = {rule.name for rule in chain2_rewrite.program}
        assert "start#t" in names and "start#opaque" in names
        assert "step0#tm0" in names and "step0#tm1" in names

    def test_unsupported_programs_rejected(self, hiring):
        with pytest.raises(UnsupportedRewrite):
            rewrite_transparent(hiring, "sue", h=3)  # not ground


class TestLifting:
    def test_transparent_run_lifts(self, chain2_rewrite):
        program = chain2_rewrite.source
        run = execute(program, events_of(program, "start", "step0", "step1"))
        lifted = lift_events(chain2_rewrite, run.events)
        assert lifted is not None
        names = [event.rule.name for event in lifted]
        assert names[0] == "open_stage"
        assert all(not name.endswith("#opaque") for name in names[1:])

    def test_overflowing_run_does_not_lift_transparently(self):
        program = chain_program(3)
        result = rewrite_transparent(program, "observer", h=3)
        run = execute(program, events_of(program, "start", "step0", "step1", "step2"))
        assert not is_liftable(result, run)

    def test_lift_matches_enforcer(self):
        """Differential: Π(Runs(P^t)) membership == enforcer acceptance."""
        program = chain_program(2)
        for h in (2, 3, 4):
            result = rewrite_transparent(program, "observer", h=h)
            for seed in range(5):
                run = RunGenerator(program, seed=seed).random_run(6)
                lifted = is_liftable(result, run)
                accepted = enforce_run(program, "observer", h, run.events).accepted
                assert lifted == accepted, (h, seed, [e.rule.name for e in run.events])

    def test_lift_matches_enforcer_on_approval(self, approval):
        result = rewrite_transparent(approval, "applicant", h=2)
        for seed in range(6):
            run = RunGenerator(approval, seed=seed).random_run(8)
            lifted = is_liftable(result, run)
            accepted = enforce_run(approval, "applicant", 2, run.events).accepted
            assert lifted == accepted, (seed, [e.rule.name for e in run.events])


class TestProjection:
    def test_roundtrip(self, chain2_rewrite):
        program = chain2_rewrite.source
        run = execute(program, events_of(program, "start", "step0", "step1"))
        lifted = lift_events(chain2_rewrite, run.events)
        lifted_run = execute(chain2_rewrite.program, lifted, check_freshness=False)
        projected = project_run(chain2_rewrite, lifted_run)
        assert [e.rule.name for e in projected.events] == ["start", "step0", "step1"]
        assert projected.final_instance == run.final_instance

    def test_projection_identity_for_peer(self, chain2_rewrite):
        run = RunGenerator(chain2_rewrite.program, seed=2).random_run(8)
        assert projection_is_identity_for(chain2_rewrite, run, "observer")

    def test_source_rule_name(self):
        assert source_rule_name("open_stage") is None
        assert source_rule_name("start#t") == "start"
        assert source_rule_name("step0#tm1") == "step0"
        assert source_rule_name("plain") == "plain"
