"""Z-set incremental dataflow: the delta algebra behind derived state.

The DBSP-style core the ROADMAP names: weighted tuple multisets
(:class:`~repro.dataflow.zset.ZSet`), the unified transition delta
(:class:`~repro.dataflow.delta.Delta`), composable incremental
operators (:mod:`~repro.dataflow.operators`), planner-ordered query
maintenance (:class:`~repro.dataflow.query.QueryDataflow`) and the
per-run :class:`~repro.dataflow.graph.DeltaGraph` that consumes one
delta stream and keeps every derived artifact — materialized peer
views, visibility, provenance triples, maintained query results —
fresh at O(|delta|) per event.  See ``docs/DATAFLOW.md`` for the
operator catalog and the migration table from the pre-dataflow
entry points.
"""

from .delta import Delta, delta_visible_to, refresh_view_instance
from .graph import DeltaEffect, DeltaGraph
from .operators import (
    AntiJoin,
    DeltaJoin,
    Distinct,
    Integrator,
    LiftedFilter,
    LiftedMap,
    Union,
)
from .query import QueryDataflow
from .zset import ZSet

__all__ = [
    "AntiJoin",
    "Delta",
    "DeltaEffect",
    "DeltaGraph",
    "DeltaJoin",
    "Distinct",
    "Integrator",
    "LiftedFilter",
    "LiftedMap",
    "QueryDataflow",
    "Union",
    "ZSet",
    "delta_visible_to",
    "refresh_view_instance",
]
