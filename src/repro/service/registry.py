"""Sharded registry of hosted runs.

The registry is the service's ownership map: every hosted run — one
live instance of the collaborative workflow model, with its journal,
its materialized peer views and its lazily-wired explainers — lives in
exactly one of N shards, selected by a stable hash of the run id.
Shards serialize their structural mutations (open/close/lookup) behind
per-shard :class:`asyncio.Lock`\\ s so thousands of runs can be hosted
without a global bottleneck; the *per-run* event order is enforced one
level up by the broker's per-run mailboxes.

Durability reuses the PR-1 journal machinery wholesale: when the
registry is given a journal directory, every hosted run appends to its
canonical journal file (:func:`repro.runtime.journal.journal_path`),
and opening a run id whose journal already exists *recovers* it by
replaying the journal through the engine — the same code path
``repro recover`` uses — before serving traffic again.
"""

from __future__ import annotations

import asyncio
import weakref
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple as PyTuple

from ..core.incremental import IncrementalExplainer
from ..obs.metrics import METRICS
from ..obs.provenance import ProvenanceLog
from ..obs.trace import current_span_id
from ..runtime.journal import (
    JournalWriter,
    journal_path,
    read_journal,
    recover_run,
)
from ..workflow.engine import ViewDelta, apply_event_with_delta
from ..workflow.eventindex import ApplicableEventIndex
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .errors import DuplicateRunError, ServiceError, UnknownRunError
from .viewcache import ViewCacheSet

__all__ = ["HostedRun", "ShardedRunRegistry"]

_VIEW_READS = METRICS.counter(
    "repro_registry_view_reads_total",
    "Peer-view reads served, by source (cached / recomputed)",
    labelnames=("source",),
)
_VIEW_READS_CACHED = _VIEW_READS.labels(source="cached")
_VIEW_READS_RECOMPUTED = _VIEW_READS.labels(source="recomputed")
_RECOVERIES = METRICS.counter(
    "repro_registry_recoveries_total",
    "Runs recovered by replaying their journal",
)

#: Live registries, tracked weakly so the hosted-runs gauge can be
#: collected at scrape time without keeping closed services alive.
_live_registries: "weakref.WeakSet[ShardedRunRegistry]" = weakref.WeakSet()


def _collect_registry_gauges(metrics) -> None:
    gauge = metrics.gauge(
        "repro_registry_hosted_runs",
        "Runs currently hosted, summed over live registries",
    )
    gauge.set(sum(registry.hosted_count() for registry in _live_registries))


METRICS.register_collector(_collect_registry_gauges)


class HostedRun:
    """One live run hosted by the service.

    Holds the current global instance, the applied event log (events
    determine runs, so this is enough to rebuild anything), the run's
    journal writer, the delta-maintained view caches, and one
    :class:`~repro.core.incremental.IncrementalExplainer` per peer that
    has asked for explanations — extended in lockstep with the run so
    explanation queries never replay.
    """

    def __init__(
        self,
        run_id: str,
        program: WorkflowProgram,
        initial: Instance,
        instance: Optional[Instance] = None,
        events: Optional[List[Event]] = None,
        journal: Optional[JournalWriter] = None,
        journal_file: Optional[Path] = None,
        cache_views: bool = True,
    ) -> None:
        self.run_id = run_id
        self.program = program
        self.initial = initial
        self.instance = instance if instance is not None else initial
        self.events: List[Event] = list(events or [])
        self.journal = journal
        self.journal_file = journal_file
        self.caches: Optional[ViewCacheSet] = (
            ViewCacheSet(program.schema, self.instance) if cache_views else None
        )
        self._explainers: Dict[str, IncrementalExplainer] = {}
        self._event_index: Optional[ApplicableEventIndex] = None
        self.submitted = len(self.events)
        self.quarantined = 0
        self.recoveries = 0
        #: Per-event provenance, recorded at application time.  A
        #: recovered run starts with an empty log — provenance queries
        #: and explain citations cover the events applied since hosting
        #: began (the journal holds the durable history).
        self.provenance = ProvenanceLog(run_id)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    @property
    def applied(self) -> int:
        return len(self.events)

    def apply(self, event: Event) -> PyTuple[int, ViewDelta]:
        """Apply one event; journal it; refresh caches and explainers.

        Returns ``(seq, delta)`` where *seq* is the event's position in
        the run.  Raises the engine's :class:`EventError`/
        :class:`ChaseFailure` unchanged when the event does not apply —
        classification (retry/quarantine) is the broker's job.
        """
        result, delta = apply_event_with_delta(
            self.program.schema, self.instance, event, forbidden_fresh=None
        )
        seq = len(self.events)
        if self.journal is not None:
            self.journal.record_event(seq, event, result)
        self.instance = result
        self.events.append(event)
        if self.caches is not None:
            changed_peers = self.caches.apply_delta(delta)
        else:
            # No caches to consult: fall back to the peers that have a
            # view of some touched relation (a superset of the peers
            # whose view content actually changed).
            changed_peers = tuple(
                sorted(
                    {
                        view.peer
                        for relation in delta.changes
                        for view in self.program.schema.views_of_relation(relation)
                    }
                )
            )
        visible_to = set(changed_peers)
        visible_to.add(event.peer)
        self.provenance.record(
            seq,
            event.rule.name,
            event.peer,
            delta,
            visible_to,
            span_id=current_span_id(),
        )
        if self._event_index is not None:
            self._event_index.advance(delta, result)
        for explainer in self._explainers.values():
            explainer.extend(event)
        return seq, delta

    def record_quarantine(self, event: Event, error: str, attempts: int) -> None:
        self.quarantined += 1
        if self.journal is not None:
            self.journal.quarantine(len(self.events), event, error, attempts)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def view_instance(self, peer: str) -> Instance:
        """``I@p`` of the current instance — O(|delta|)-fresh when cached."""
        if self.caches is not None:
            _VIEW_READS_CACHED.inc()
            return self.caches.peer(peer).instance()
        _VIEW_READS_RECOMPUTED.inc()
        return self.program.schema.view_instance(self.instance, peer)

    def view_version(self, peer: str) -> int:
        if self.caches is not None:
            return self.caches.peer(peer).version
        return len(self.events)

    def event_index(self) -> ApplicableEventIndex:
        """The run's applicable-event index, created (and kept) lazily.

        The first call pays one full per-peer view computation; every
        applied event thereafter advances the index in O(|delta|), so
        repeated ``applicable`` queries re-evaluate only the rules the
        traffic actually touches.
        """
        if self._event_index is None:
            self._event_index = ApplicableEventIndex(self.program, self.instance)
        return self._event_index

    def applicable(self, peer: Optional[str] = None) -> List[Event]:
        """The events currently applicable (optionally for one peer)."""
        events = self.event_index().events()
        if peer is None:
            return list(events)
        return [event for event in events if event.peer == peer]

    def explainer(self, peer: str) -> IncrementalExplainer:
        """The peer's incremental explainer, created (and caught up) lazily.

        The first explanation query for a (run, peer) pays one replay of
        the event log; every later query is served from the maintained
        closure state without replay.
        """
        explainer = self._explainers.get(peer)
        if explainer is None:
            explainer = IncrementalExplainer(self.program, peer, initial=self.initial)
            for event in self.events:
                explainer.extend(event)
            self._explainers[peer] = explainer
        return explainer

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "run_id": self.run_id,
            "applied": self.applied,
            "submitted": self.submitted,
            "quarantined": self.quarantined,
            "recoveries": self.recoveries,
            "instance_tuples": self.instance.size(),
            "explainers": sorted(self._explainers),
            "view_versions": dict(self.caches.versions()) if self.caches else {},
        }
        return out


@dataclass
class _Shard:
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    runs: Dict[str, HostedRun] = field(default_factory=dict)


class ShardedRunRegistry:
    """Run-id → :class:`HostedRun` across N lock-guarded shards."""

    def __init__(
        self,
        program: WorkflowProgram,
        shards: int = 8,
        journal_dir: Optional[Path] = None,
        snapshot_every: Optional[int] = 10,
        cache_views: bool = True,
    ) -> None:
        if shards < 1:
            raise ServiceError("registry needs at least one shard")
        self.program = program
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.snapshot_every = snapshot_every
        self.cache_views = cache_views
        self._shards: List[_Shard] = [_Shard() for _ in range(shards)]
        self.recoveries = 0
        _live_registries.add(self)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, run_id: str) -> int:
        """Stable shard assignment (crc32, not the salted builtin hash)."""
        return zlib.crc32(run_id.encode("utf-8")) % len(self._shards)

    def _shard(self, run_id: str) -> _Shard:
        return self._shards[self.shard_index(run_id)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def open(
        self,
        run_id: str,
        initial: Optional[Instance] = None,
        recover: bool = True,
    ) -> PyTuple[HostedRun, bool]:
        """Host *run_id*, recovering it from its journal if one exists.

        Returns ``(hosted, recovered)``.  Opening an id that is already
        hosted raises :class:`DuplicateRunError`; opening an id whose
        journal exists replays it (``recover=True``) or refuses
        (``recover=False``) — it never silently truncates durable state.
        """
        shard = self._shard(run_id)
        async with shard.lock:
            if run_id in shard.runs:
                raise DuplicateRunError(f"run {run_id!r} is already hosted")
            hosted = self._materialize(run_id, initial)
            shard.runs[run_id] = hosted
            recovered = hosted.recoveries > 0
            if not recover and recovered:
                del shard.runs[run_id]
                raise ServiceError(
                    f"run {run_id!r} has a journal at {hosted.journal_file}; "
                    "open with recovery or choose a new id"
                )
            if recovered:
                self.recoveries += 1
                _RECOVERIES.inc()
            return hosted, recovered

    def _materialize(self, run_id: str, initial: Optional[Instance]) -> HostedRun:
        start = (
            initial
            if initial is not None
            else Instance.empty(self.program.schema.schema)
        )
        if self.journal_dir is None:
            return HostedRun(run_id, self.program, start, cache_views=self.cache_views)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        path = journal_path(self.journal_dir, run_id)
        if path.exists():
            recovered = recover_run(self.program, read_journal(path))
            writer = JournalWriter(path, snapshot_every=self.snapshot_every)
            hosted = HostedRun(
                run_id,
                self.program,
                recovered.run.initial,
                instance=recovered.final_instance,
                events=list(recovered.run.events),
                journal=writer,
                journal_file=path,
                cache_views=self.cache_views,
            )
            hosted.recoveries = 1
            hosted.quarantined = len(recovered.quarantined)
            return hosted
        writer = JournalWriter(path, snapshot_every=self.snapshot_every)
        writer.begin(start, meta={"run_id": run_id})
        return HostedRun(
            run_id,
            self.program,
            start,
            journal=writer,
            journal_file=path,
            cache_views=self.cache_views,
        )

    async def get(self, run_id: str) -> HostedRun:
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.get(run_id)
        if hosted is None:
            raise UnknownRunError(f"run {run_id!r} is not hosted")
        return hosted

    async def close(self, run_id: str, status: str = "completed") -> HostedRun:
        """Stop hosting *run_id*, sealing its journal with *status*."""
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.pop(run_id, None)
        if hosted is None:
            raise UnknownRunError(f"run {run_id!r} is not hosted")
        if hosted.journal is not None:
            hosted.journal.end(status)
            hosted.journal.close()
        return hosted

    async def crash_and_recover(self, run_id: str) -> HostedRun:
        """Simulate a process death of one run and recover it from disk.

        The in-memory :class:`HostedRun` — instance, caches, explainers
        — is abandoned; the journal (appended *before* each event was
        acknowledged) survives, and the run is re-materialized by
        replaying it.  Without a journal directory the state is
        genuinely lost and :class:`ServiceError` is raised.
        """
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.pop(run_id, None)
            if hosted is None:
                raise UnknownRunError(f"run {run_id!r} is not hosted")
            prior_recoveries = hosted.recoveries
            if hosted.journal is not None:
                hosted.journal.end("crashed")
                hosted.journal.close()
            if self.journal_dir is None:
                raise ServiceError(
                    f"run {run_id!r} crashed without a journal; state is lost"
                )
            recovered = self._materialize(run_id, None)
            recovered.recoveries = prior_recoveries + 1
            shard.runs[run_id] = recovered
            self.recoveries += 1
            _RECOVERIES.inc()
            return recovered

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def run_ids(self) -> List[str]:
        return sorted(
            run_id for shard in self._shards for run_id in shard.runs
        )

    def hosted_count(self) -> int:
        return sum(len(shard.runs) for shard in self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard.runs) for shard in self._shards]

    def stats(self) -> Dict[str, object]:
        return {
            "shards": self.shard_count,
            "hosted_runs": self.hosted_count(),
            "shard_sizes": self.shard_sizes(),
            "recoveries": self.recoveries,
            "journal_dir": str(self.journal_dir) if self.journal_dir else None,
            "cache_views": self.cache_views,
        }
