"""Tests for workflow program construction and properties."""

import pytest

from repro.workflow.domain import NULL
from repro.workflow.errors import RuleError, SchemaError
from repro.workflow.parser import parse_program


class TestConstruction:
    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(RuleError):
            parse_program(
                """
                peers p
                relation R(K)
                view R@p(K)
                [a] +R@p(x) :-
                [a] +R@p(x) :-
                """
            )

    def test_rule_lookup(self, hiring):
        assert hiring.rule("clear").peer == "hr"
        with pytest.raises(RuleError):
            hiring.rule("nope")

    def test_rules_of_peer(self, hiring):
        assert {r.name for r in hiring.rules_of_peer("hr")} == {"clear", "hire"}
        assert hiring.rules_of_peer("sue") == ()

    def test_foreign_view_rejected(self):
        # Build a program whose rule references a view not in the schema.
        from repro.workflow.program import WorkflowProgram
        from repro.workflow.queries import Query, Var
        from repro.workflow.rules import Insertion, Rule
        from repro.workflow.schema import Relation, Schema
        from repro.workflow.views import CollaborativeSchema, View

        R = Relation("R", ("K",))
        schema = CollaborativeSchema(Schema([R]), ["p"], [View(R, "p", ("K",))])
        foreign_view = View(R, "p", ("K",))  # equal, fine
        WorkflowProgram(schema, [Rule("r", (Insertion(foreign_view, (Var("x"),)),), Query(()))])

        other = Relation("R", ("K",))
        different = View(other, "q", ("K",))
        with pytest.raises((SchemaError, RuleError)):
            WorkflowProgram(
                schema, [Rule("r", (Insertion(different, (Var("x"),)),), Query(()))]
            )


class TestProperties:
    def test_constants_include_null(self, approval):
        constants = approval.constants()
        assert NULL in constants
        assert 0 in constants

    def test_max_head_and_body_size(self, hiring_transparent):
        assert hiring_transparent.max_head_size() == 2
        assert hiring_transparent.max_body_size() == 2

    def test_is_linear_head(self, hiring, hiring_transparent):
        assert hiring.is_linear_head()
        assert not hiring_transparent.is_linear_head()

    def test_is_normal_form(self, hiring):
        assert hiring.is_normal_form()

    def test_not_normal_form_with_negative_literal(self):
        program = parse_program(
            """
            peers p
            relation R(K, A)
            view R@p(K, A)
            [n] +R@p(x, 1) :- R@p(x, y), not R@p(x, 0)
            """
        )
        assert not program.is_normal_form()

    def test_with_rules_and_extend(self, hiring):
        trimmed = hiring.with_rules([hiring.rule("clear")])
        assert len(trimmed) == 1
        extended = trimmed.extend([hiring.rule("hire")])
        assert len(extended) == 2
        assert len(hiring) == 4
