"""Tour of the realistic workflow families and Shapley explanations.

Four parameterized program families ship with the reproduction —
e-commerce fulfillment, healthcare approvals, CI/CD pipelines, and
multi-party procurement.  Each is sized by knobs (peers, items, stages,
visibility density) and emits both a valid FCQ¬ program and seeded,
plausible event streams.  We:

1. walk the family catalog and size one family with knobs,
2. generate a seeded run and explain it to the family's observer,
3. rank the run's events by Shapley value toward a visible fact —
   which events actually *mattered* for what the observer sees,
4. cross-check one family through the differential fuzz harness
   (naive vs planned vs compiled backends, dataflow, recovery).

Run with: ``python examples/families_tour.py``
"""

from repro.api import (
    differential_check,
    explain_run,
    family_names,
    get_family,
    make_family_program,
    shapley_rank,
)


def main() -> None:
    print("Workflow family catalog:")
    for name in family_names():
        family = get_family(name)
        knobs = ", ".join(f"{k}={v}" for k, v in family.knobs().items())
        print(f"  {name:12s} observer={family.observer:9s} knobs: {knobs}")

    # Size the e-commerce family down and generate a plausible run.
    spec = "ecommerce:items=2,warehouses=1,couriers=1"
    program, family = make_family_program(spec)
    run = family.run(seed=7, steps=12, items=2, warehouses=1, couriers=1)
    print(f"\n{spec}: {len(program.rules)} rules, "
          f"{len(run.events)} events, observer {family.observer!r}")

    # The classic explanation: the minimal faithful scenario.
    explanation = explain_run(run, family.observer)
    print(f"\nExplaining the run to {family.observer!r}:")
    print(explanation.to_text())

    # Shapley ranking: fair attribution of each event's contribution
    # to the observer's final view (exact for small runs).
    report = shapley_rank(run, family.observer)
    print(f"\nShapley ranking toward {report.target} ({report.method}):")
    for entry in report.top(3):
        event = report.attributions[entry]
        print(f"  event {event.position}: {event.rule}@{event.peer} "
              f"-> {event.value:+.3f}")
    print(f"  efficiency: total {report.total():.3f} "
          f"= v(N) {report.grand:.3f} - v(empty) {report.baseline:.3f}")

    # Every family doubles as differential-fuzz input: the same seeded
    # run must be bit-identical across all engine backends.
    outcome = differential_check(
        program, seed=7, steps=10, pairs=("backends", "dataflow", "recovery"),
        label=spec,
    )
    print(f"\nDifferential check over {spec}: "
          f"{'OK' if outcome.ok else outcome.summary()}")
    assert outcome.ok, outcome.summary()


if __name__ == "__main__":
    main()
