"""Command-line interface.

``python -m repro <command> ...`` drives the library from the shell:

* ``check``      — static audit of a program for a peer (losslessness,
  normal form, guidelines, acyclicity, optional exact decisions);
* ``run``        — generate a random run, print it, optionally save a
  replayable JSON log;
* ``explain``    — the minimal faithful scenario explaining a run (from
  a saved log or a fresh random run) to a peer;
* ``synthesize`` — the peer's view program (Theorem 5.13);
* ``enforce``    — replay a run log through the transparency monitor;
* ``recover``    — resume a run journal from its latest checkpoint
  (``--full`` re-validates every step from the beginning);
* ``compact``    — compact stored run records (drop superseded snapshots);
* ``serve``      — host runs behind the JSON-lines TCP service;
* ``serve-cluster`` — host runs on a sharded cluster (consistent-hash
  router, shard worker processes, journal replication with failover);
* ``loadgen``    — drive and verify a live service under load
  (``--cluster`` adds shard kills and a durability audit).

Programs are read from files in the textual syntax of
:mod:`repro.workflow.parser`; the service commands alternatively accept
``--workload <name>`` to use a built-in generator from
:mod:`repro.workloads` (``churn``, ``profile``, ``hiring``,
``chain:<depth>``, ``fuzz:<seed>``, or a realistic family spec such as
``ecommerce``, ``healthcare:stages=4``, ``cicd``,
``procurement:vendors=5,visibility=1.0``).

Every command accepts the global ``--wall-budget`` / ``--max-steps``
options, which install an ambient :class:`repro.runtime.budget.Budget`
around the whole command: the worst-case exponential procedures
(scenario search, boundedness checking, synthesis, exploration) then
terminate with exit code 3 and a one-line diagnostic instead of running
open-ended.  Any other :class:`~repro.workflow.errors.WorkflowError`
exits with code 2 and a one-line diagnostic.

The global ``--workers N`` option routes the expensive searches
(exploration, boundedness checking, scenario search) through the
parallel engine of :mod:`repro.parallel` with ``N`` worker processes;
results are identical to the sequential default.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

# The CLI consumes the same stable facade downstream code does — the
# explain/run/synthesize paths below exercise repro.api end to end.
from .api import (
    Budget,
    Run,
    RunGenerator,
    SearchBudget,
    WorkflowProgram,
    audit_program,
    enforce_run,
    explain_run,
    parse_program,
    program_to_text,
    run_from_json,
    run_provenance,
    run_to_json,
    synthesize_view_program,
    use_budget,
)
from .workflow.errors import BudgetExceeded, WorkflowError


def _load_program(path: str) -> WorkflowProgram:
    return parse_program(Path(path).read_text())


def _load_service_program(args: argparse.Namespace) -> WorkflowProgram:
    """A program file or a named ``--workload`` generator (exactly one)."""
    if bool(args.program) == bool(args.workload):
        raise WorkflowError(
            "provide a program file or --workload <name>, but not both"
        )
    if args.program:
        return _load_program(args.program)
    from . import workloads

    name = args.workload
    named = {
        "churn": workloads.churn_program,
        "profile": workloads.profile_program,
        "hiring": workloads.hiring_program,
    }
    if name in named:
        return named[name]()
    if name.startswith("chain:"):
        try:
            return workloads.chain_program(int(name.split(":", 1)[1]))
        except ValueError:
            raise WorkflowError(f"bad chain depth in workload {name!r}") from None
    if name.startswith("fuzz:"):
        try:
            return workloads.fuzz_program(int(name.split(":", 1)[1]))
        except ValueError:
            raise WorkflowError(f"bad fuzz seed in workload {name!r}") from None
    family = workloads.parse_family_spec(name)[0]
    if family in workloads.FAMILIES:
        try:
            return workloads.make_family_program(name)[0]
        except (KeyError, ValueError) as exc:
            raise WorkflowError(f"bad family workload {name!r}: {exc}") from None
    raise WorkflowError(
        f"unknown workload {name!r} "
        f"(expected {', '.join(sorted(named))}, chain:<depth>, fuzz:<seed>, "
        f"or a family spec: {', '.join(workloads.family_names())})"
    )


def _budget(args: argparse.Namespace) -> SearchBudget:
    return SearchBudget(
        pool_extra=args.pool_extra,
        max_tuples_per_relation=args.max_tuples,
    )


def _obtain_run(program: WorkflowProgram, args: argparse.Namespace) -> Run:
    if getattr(args, "run", None):
        return run_from_json(program, Path(args.run).read_text())
    generator = RunGenerator(program, seed=args.seed)
    return generator.random_run(args.steps)


def _cmd_check(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    transparent = args.transparent.split(",") if args.transparent else None
    report = audit_program(
        program,
        args.peer,
        transparent_relations=transparent,
        decide_h=args.decide_h,
        budget=_budget(args),
    )
    print(report.to_text())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .workflow.lint import lint_program

    program = _load_program(args.program)
    findings = lint_program(
        program, max_depth=args.depth, max_states=args.max_states
    )
    for finding in findings:
        print(finding)
    if not findings:
        print("no findings")
    warnings = [f for f in findings if f.severity == "warning"]
    return 1 if warnings else 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    run = _obtain_run(program, args)
    print(run)
    if args.peer:
        print()
        print(run.view(args.peer))
    if args.save:
        Path(args.save).write_text(run_to_json(run, indent=2))
        print(f"\nrun log saved to {args.save}")
    if args.journal:
        from .runtime.journal import journal_run

        journal_run(run, args.journal, snapshot_every=args.snapshot_every)
        print(f"run journal written to {args.journal}")
    return 0


def _recover_source(args: argparse.Namespace):
    """``(records_or_path, warnings)`` from --journal/--journal-dir/--storage."""
    from .runtime.journal import journal_path

    chosen = [
        bool(args.journal),
        bool(args.journal_dir),
        bool(getattr(args, "storage", None)),
    ]
    if sum(chosen) != 1:
        raise WorkflowError(
            "recover needs exactly one of --journal FILE, "
            "--journal-dir DIR or --storage SPEC"
        )
    if args.journal:
        if args.run_id:
            raise WorkflowError("--run-id goes with --journal-dir or --storage")
        return args.journal, []
    if not args.run_id:
        raise WorkflowError("--journal-dir/--storage need --run-id ID")
    if args.journal_dir:
        # The same <dir>/<quoted run id>.journal convention `repro serve
        # --journal-dir` uses, so the two commands always agree on layout.
        return journal_path(args.journal_dir, args.run_id), []
    from .storage import open_backend

    backend = open_backend(args.storage)
    try:
        if not backend.exists(args.run_id):
            raise WorkflowError(
                f"no records for run {args.run_id!r} in {args.storage}"
            )
        records, warnings = backend.read_records(args.run_id)
    finally:
        backend.close()
    return records, warnings


def _cmd_recover(args: argparse.Namespace) -> int:
    from .runtime.checkpoint import fast_recover
    from .runtime.journal import recover_run

    source, source_warnings = _recover_source(args)
    program = _load_program(args.program)
    full = args.full or bool(args.save) or bool(args.peer)
    if full:
        # The audit path: every event re-executed from the beginning and
        # every snapshot verified against the replayed instance.
        recovered = recover_run(program, source)
        status = recovered.status or "missing end record (crash?)"
        print(f"journal status:      {status}")
        print(f"events replayed:     {recovered.events_replayed}")
        print(f"snapshots verified:  {recovered.snapshots_verified}")
        if recovered.quarantined:
            print(f"quarantined events:  {len(recovered.quarantined)}")
        for warning in [*source_warnings, *recovered.warnings]:
            print(f"warning: {warning}", file=sys.stderr)
        print(f"\nrecovered run:\n{recovered.run}")
        if args.peer:
            print()
            print(recovered.run.view(args.peer))
        if args.save:
            Path(args.save).write_text(run_to_json(recovered.run, indent=2))
            print(f"\nrecovered run log saved to {args.save}")
        return 0 if recovered.complete else 1
    # The default fast path: resume from the latest checkpoint, engine
    # work O(events since it) regardless of run length.
    resumed = fast_recover(program, source)
    status = resumed.status or "missing end record (crash?)"
    print(f"journal status:      {status}")
    print(f"events decoded:      {resumed.events_total}")
    print(
        f"events replayed:     {resumed.engine_replayed} "
        f"(since checkpoint at {resumed.snapshot_position})"
    )
    if resumed.quarantined:
        print(f"quarantined events:  {len(resumed.quarantined)}")
    for warning in [*source_warnings, *resumed.warnings]:
        print(f"warning: {warning}", file=sys.stderr)
    print(f"\nresumed instance ({resumed.instance.size()} tuples):")
    print(resumed.instance)
    return 0 if resumed.complete else 1


def _cmd_compact(args: argparse.Namespace) -> int:
    from .storage import open_backend

    if bool(args.storage) == bool(args.journal_dir):
        raise WorkflowError("compact needs --storage SPEC or --journal-dir DIR")
    spec = args.storage or f"file:{args.journal_dir}"
    backend = open_backend(spec)
    try:
        run_ids = [args.run_id] if args.run_id else backend.run_ids()
        if not run_ids:
            print("no runs to compact")
            return 0
        for run_id in run_ids:
            if not backend.exists(run_id):
                raise WorkflowError(f"no records for run {run_id!r} in {spec}")
            store = backend.store(run_id)
            try:
                stats = store.compact()
            finally:
                store.close()
            print(
                f"{run_id}: {stats.records_before} -> {stats.records_after} "
                f"records ({stats.records_reclaimed} reclaimed), "
                f"{stats.bytes_before} -> {stats.bytes_after} bytes"
            )
    finally:
        backend.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    run = _obtain_run(program, args)
    explanation = explain_run(run, args.peer)
    print(explanation.to_text())
    if args.show_scenario:
        print("\nThe minimal faithful scenario, replayed:")
        print(explanation.scenario_subrun())
    if args.provenance:
        log = run_provenance(run)
        print("\nProvenance of the scenario events:")
        for citation in log.citations(explanation.scenario.indices):
            touched = ", ".join(
                f"{t['action']} {t['relation']}({t['key']})"
                for t in citation["touched"]
            ) or "no tuple changes"
            visible = ", ".join(citation["visible_to"])
            print(
                f"  [{citation['seq']}] {citation['rule']}@{citation['peer']}: "
                f"{touched}; visible to {visible}"
            )
    if args.rank:
        from .obs.shapley import shapley_rank

        relation = key = None
        if args.target:
            relation, _, key_text = args.target.partition(":")
            if key_text:
                key = int(key_text) if key_text.lstrip("-").isdigit() else key_text
        try:
            report = shapley_rank(
                run,
                args.peer,
                relation=relation or None,
                key=key,
                method=args.rank_method,
                samples=args.rank_samples,
                seed=args.rank_seed,
            )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise WorkflowError(f"cannot rank: {message}") from None
        log = run_provenance(run)
        citations = {
            record["seq"]: record
            for record in log.citations(
                [entry.position for entry in report.attributions]
            )
        }
        suffix = (
            f", {report.samples} samples, seed {report.seed}"
            if report.method == "sampled"
            else ""
        )
        print(
            f"\nShapley ranking toward {report.target} "
            f"({report.method}{suffix}): "
            f"total {report.total():.4f} = {report.grand:.4f} "
            f"- {report.baseline:.4f}"
        )
        for entry in report.ranking():
            citation = citations.get(entry.position)
            touched = ""
            if citation is not None:
                touched = "; " + (", ".join(
                    f"{t['action']} {t['relation']}({t['key']})"
                    for t in citation["touched"]
                ) or "no tuple changes")
            print(
                f"  [{entry.position}] {entry.value:+.4f} "
                f"{entry.rule}@{entry.peer}{touched}"
            )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    synthesis = synthesize_view_program(
        program, args.peer, h=args.bound, budget=_budget(args)
    )
    print(program_to_text(synthesis.program), end="")
    if args.witnesses:
        for record in synthesis.records:
            names = ", ".join(e.rule.name for e in record.witness.events)
            print(f"# {record.rule.name} witnessed by [{names}]")
    return 0


def _cmd_enforce(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    run = _obtain_run(program, args)
    trace = enforce_run(program, args.peer, args.bound, run.events)
    for decision in trace.decisions:
        status = "ok     " if decision.allowed else "BLOCKED"
        kind = "visible" if decision.visible else "silent "
        print(
            f"[{decision.index:>3}] {status} {kind} stage={decision.stage} "
            f"{run.events[decision.index].rule.name}"
            + (f"  ({decision.reason})" if decision.reason else "")
        )
    print(f"\nrun accepted: {trace.accepted}")
    return 0 if trace.accepted else 1


def _fault_plan(args: argparse.Namespace):
    from .runtime.faults import FaultPlan

    if not (args.fault_transient or args.fault_poison or args.fault_crash):
        return None
    return FaultPlan(
        seed=args.fault_seed,
        transient_rate=args.fault_transient,
        poison_rate=args.fault_poison,
        crash_rate=args.fault_crash,
    )


def _disk_fault_plan(args: argparse.Namespace):
    from .runtime.faults import DiskFaultPlan

    plan = DiskFaultPlan(
        seed=args.fault_seed,
        short_write_rate=args.fault_disk_short,
        corrupt_rate=args.fault_disk_corrupt,
        enospc_rate=args.fault_disk_enospc,
        fsync_failure_rate=args.fault_disk_fsync,
    )
    return plan if plan.any_rate else None


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceServer, WorkflowService

    program = _load_service_program(args)
    journal_dir = Path(args.journal_dir) if args.journal_dir else None
    service = WorkflowService(
        program,
        shards=args.shards,
        journal_dir=journal_dir,
        queue_capacity=args.queue_capacity,
        cache_views=not args.no_cache_views,
        snapshot_every=args.snapshot_every,
        fault_plan=_fault_plan(args),
        storage=args.storage,
        durability=args.durability,
        max_resident=args.max_resident,
        compact_every=args.compact_every,
        disk_fault_plan=_disk_fault_plan(args),
        replicate_to=args.replicate_to,
        batch_size=args.batch_size,
    )
    server_kwargs = {}
    if args.max_line_bytes:
        server_kwargs["max_line_bytes"] = args.max_line_bytes
    server = ServiceServer(service, host=args.host, port=args.port, **server_kwargs)

    async def _serve() -> None:
        await server.start()
        # Flushed immediately so scripts (the CI smoke job) can parse
        # the bound port before traffic starts.
        print(f"serving on {server.host}:{server.port}", flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 1
    print("service shut down cleanly", flush=True)
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import ClusterRouter, RouterServer, ShardSupervisor

    program = _load_service_program(args)
    program_text = program_to_text(program)

    async def _serve() -> None:
        supervisor = ShardSupervisor(
            program_text,
            Path(args.cluster_dir),
            shard_count=args.shards,
            host=args.host,
            durability=args.durability,
            snapshot_every=args.snapshot_every,
            replicate=not args.no_replicate,
            failover=args.failover,
        )
        await supervisor.start()
        router = ClusterRouter(supervisor.node_addresses(), supervisor=supervisor)
        supervisor.attach_router(router)
        server = RouterServer(router, host=args.host, port=args.port)
        await server.start()
        host, port = server.address
        # Flushed immediately so scripts (the CI cluster-smoke job) can
        # parse the router port before traffic starts.
        print(
            f"cluster serving on {host}:{port} "
            f"({len(supervisor.shards)} shards, "
            f"replicate={supervisor.replicate}, failover={supervisor.failover})",
            flush=True,
        )
        try:
            await server.serve_until_shutdown()
        finally:
            await supervisor.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 1
    print("cluster shut down cleanly", flush=True)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .service import run_loadgen

    program = _load_service_program(args)
    if args.cluster:
        from .cluster import run_cluster_loadgen

        report = asyncio.run(
            run_cluster_loadgen(
                program,
                args.host,
                args.port,
                runs=args.runs,
                events_per_run=args.events,
                seed=args.seed,
                verify=not args.no_verify,
                view_every=args.view_every,
                max_concurrency=args.max_concurrency,
                kill_shards=args.kill_shards,
                kill_after_applied=args.kill_after,
                audit=not args.no_audit,
                shutdown=args.shutdown,
                clients=args.clients,
                batch_size=args.batch_size,
            )
        )
    else:
        report = asyncio.run(
            run_loadgen(
                program,
                args.host,
                args.port,
                runs=args.runs,
                events_per_run=args.events,
                seed=args.seed,
                verify=not args.no_verify,
                view_every=args.view_every,
                max_concurrency=args.max_concurrency,
                shutdown=args.shutdown,
                clients=args.clients,
                batch_size=args.batch_size,
            )
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for key, value in report.to_dict().items():
            print(f"{key:>24}: {value}")
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Explanations and transparency in collaborative workflows",
    )
    parser.add_argument("--wall-budget", type=float, default=None, metavar="SECONDS",
                        help="wall-clock budget for the whole command "
                             "(exponential searches exit 3 when it trips)")
    parser.add_argument("--max-steps", type=int, default=None, metavar="N",
                        help="step budget for the whole command (event "
                             "applications and search nodes)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for the parallel search "
                             "engine (exploration, boundedness, scenario "
                             "search); results are identical to workers=1")
    parser.add_argument("--profile-queries", action="store_true",
                        help="after the command, print the per-rule query "
                             "hot-path table (plans, candidates, time) "
                             "collected by the query planner")
    parser.add_argument("--metrics", action="store_true",
                        help="after the command, dump the process metrics "
                             "registry as Prometheus text to stderr")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="trace the command's spans to FILE as JSON "
                             "lines ('-' for stderr)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, peer_required: bool = True) -> None:
        p.add_argument("program", help="workflow program file (textual syntax)")
        p.add_argument("--peer", required=peer_required, help="observing peer")
        p.add_argument("--pool-extra", type=int, default=1,
                       help="extra pool constants for bounded searches")
        p.add_argument("--max-tuples", type=int, default=1,
                       help="instance-size cap for bounded searches")

    def run_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--run", help="replay a saved run log (JSON)")
        p.add_argument("--steps", type=int, default=10, help="random run length")
        p.add_argument("--seed", type=int, default=0, help="random seed")

    p_check = sub.add_parser("check", help="static audit of a program")
    common(p_check)
    p_check.add_argument("--transparent", default=None,
                         help="comma-separated p-transparent relations (enables C3/C4)")
    p_check.add_argument("--decide-h", type=int, default=None,
                         help="also run the exact boundedness/transparency decisions")
    p_check.set_defaults(handler=_cmd_check)

    p_lint = sub.add_parser("lint", help="hygiene findings for a program")
    p_lint.add_argument("program", help="workflow program file (textual syntax)")
    p_lint.add_argument("--depth", type=int, default=4,
                        help="state-space exploration depth for dead-rule search")
    p_lint.add_argument("--max-states", type=int, default=400,
                        help="state-space exploration cap")
    p_lint.set_defaults(handler=_cmd_lint)

    p_run = sub.add_parser("run", help="generate and print a random run")
    common(p_run, peer_required=False)
    run_source(p_run)
    p_run.add_argument("--save", help="write a replayable JSON run log here")
    p_run.add_argument("--journal", help="write an append-only run journal here")
    p_run.add_argument("--snapshot-every", type=int, default=10,
                       help="journal snapshot period (events)")
    p_run.set_defaults(handler=_cmd_run)

    p_recover = sub.add_parser(
        "recover", help="replay a run journal, re-validating every step"
    )
    common(p_recover, peer_required=False)
    p_recover.add_argument("--journal",
                           help="the journal file to recover from")
    p_recover.add_argument("--journal-dir",
                           help="a service journal directory (with --run-id)")
    p_recover.add_argument("--run-id",
                           help="the hosted run id to recover "
                                "(with --journal-dir or --storage)")
    p_recover.add_argument("--storage", default=None,
                           help="a storage backend spec to recover from "
                                "(file:DIR, segment:DIR, sqlite:PATH)")
    p_recover.add_argument("--full", action="store_true",
                           help="replay every event from the beginning and "
                                "verify each snapshot, instead of resuming "
                                "from the latest checkpoint (implied by "
                                "--save/--peer, which need the full run)")
    p_recover.add_argument("--save", help="write the recovered run log (JSON) here")
    p_recover.set_defaults(handler=_cmd_recover)

    p_compact = sub.add_parser(
        "compact", help="compact stored run records (drop superseded snapshots)"
    )
    p_compact.add_argument("--storage", default=None,
                           help="a storage backend spec "
                                "(file:DIR, segment:DIR, sqlite:PATH)")
    p_compact.add_argument("--journal-dir", default=None,
                           help="a service journal directory "
                                "(shorthand for --storage file:DIR)")
    p_compact.add_argument("--run-id", default=None,
                           help="compact one run (default: every run)")
    p_compact.set_defaults(handler=_cmd_compact)

    p_explain = sub.add_parser("explain", help="explain a run to a peer")
    common(p_explain)
    run_source(p_explain)
    p_explain.add_argument("--show-scenario", action="store_true",
                           help="also print the replayed scenario subrun")
    p_explain.add_argument("--provenance", action="store_true",
                           help="cite each scenario event's provenance "
                                "(touched tuples, observing peers)")
    p_explain.add_argument("--rank", action="store_true",
                           help="rank the run's events by Shapley value "
                                "toward the peer's view (or --target)")
    p_explain.add_argument("--target", metavar="REL[:KEY]", default=None,
                           help="rank toward one visible fact instead of "
                                "the whole view")
    p_explain.add_argument("--rank-method", default="auto",
                           choices=("auto", "exact", "sampled"),
                           help="exact enumeration vs seeded permutation "
                                "sampling (default: auto)")
    p_explain.add_argument("--rank-samples", type=int, default=128,
                           help="permutations when sampling (default 128)")
    p_explain.add_argument("--rank-seed", type=int, default=0,
                           help="sampling seed (default 0)")
    p_explain.set_defaults(handler=_cmd_explain)

    p_synth = sub.add_parser("synthesize", help="synthesize the peer's view program")
    common(p_synth)
    p_synth.add_argument("--bound", type=int, required=True, help="the bound h")
    p_synth.add_argument("--witnesses", action="store_true",
                         help="print the witness runs of each ω-rule")
    p_synth.set_defaults(handler=_cmd_synthesize)

    p_enforce = sub.add_parser("enforce", help="replay a run through the monitor")
    common(p_enforce)
    run_source(p_enforce)
    p_enforce.add_argument("--bound", type=int, required=True, help="the bound h")
    p_enforce.set_defaults(handler=_cmd_enforce)

    def service_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", nargs="?", default=None,
                       help="workflow program file (textual syntax)")
        p.add_argument("--workload", default=None,
                       help="built-in workload instead of a program file "
                            "(churn, profile, hiring, chain:<depth>, "
                            "fuzz:<seed>, or a family spec like ecommerce, "
                            "healthcare:stages=4, cicd, procurement)")
        p.add_argument("--host", default="127.0.0.1", help="service host")
        p.add_argument("--port", type=int, default=7477, help="service port")

    p_serve = sub.add_parser(
        "serve", help="host workflow runs behind the JSON-lines TCP service"
    )
    service_common(p_serve)
    p_serve.add_argument("--shards", type=int, default=8,
                         help="run-registry shard count")
    p_serve.add_argument("--journal-dir", default=None,
                         help="directory for per-run journals (durability "
                              "+ crash recovery); layout matches "
                              "'repro recover --journal-dir'")
    p_serve.add_argument("--queue-capacity", type=int, default=64,
                         help="per-run mailbox bound (backpressure threshold)")
    p_serve.add_argument("--batch-size", type=int, default=1,
                         help="events the broker's drain worker applies per "
                              "wakeup (amortizes per-event overhead; "
                              "per-event acks and journals are unchanged)")
    p_serve.add_argument("--snapshot-every", type=int, default=10,
                         help="journal snapshot period (events)")
    p_serve.add_argument("--no-cache-views", action="store_true",
                         help="recompute peer views from scratch per read "
                              "instead of maintaining them incrementally")
    p_serve.add_argument("--fault-seed", type=int, default=0,
                         help="fault-injection seed")
    p_serve.add_argument("--fault-transient", type=float, default=0.0,
                         help="per-event transient-fault rate")
    p_serve.add_argument("--fault-poison", type=float, default=0.0,
                         help="per-event poison-fault rate")
    p_serve.add_argument("--fault-crash", type=float, default=0.0,
                         help="per-event crash rate (recovered from journals)")
    p_serve.add_argument("--storage", default=None,
                         help="storage backend spec: memory (default), "
                              "file:DIR, segment:DIR or sqlite:PATH")
    p_serve.add_argument("--durability", default=None,
                         help="durability policy for disk backends: "
                              "none, flush (default), interval[:N], fsync")
    p_serve.add_argument("--max-resident", type=int, default=None,
                         help="LRU-evict idle hosted runs beyond this many "
                              "(rehydrated transparently from storage)")
    p_serve.add_argument("--compact-every", type=int, default=4,
                         help="compact a run's records every N snapshots "
                              "(0 disables)")
    p_serve.add_argument("--fault-disk-short", type=float, default=0.0,
                         help="per-append short-write (torn record) rate")
    p_serve.add_argument("--fault-disk-corrupt", type=float, default=0.0,
                         help="per-append corrupted-trailing-record rate")
    p_serve.add_argument("--fault-disk-enospc", type=float, default=0.0,
                         help="per-append ENOSPC (nothing written) rate")
    p_serve.add_argument("--fault-disk-fsync", type=float, default=0.0,
                         help="per-fsync failure rate (unsynced tail lost)")
    p_serve.add_argument("--replicate-to", default=None, metavar="HOST:PORT",
                         help="ship every appended record to the follower "
                              "shard at HOST:PORT (cluster replication; "
                              "requires --storage)")
    p_serve.add_argument("--max-line-bytes", type=int, default=None,
                         help="per-request line cap; longer lines get a "
                              "structured protocol error (default 1 MiB)")
    p_serve.set_defaults(handler=_cmd_serve)

    p_cluster = sub.add_parser(
        "serve-cluster",
        help="host runs on a sharded cluster: router + shard workers "
             "+ journal replication with failover",
    )
    service_common(p_cluster)
    p_cluster.add_argument("--cluster-dir", required=True,
                           help="directory for the cluster's program file, "
                                "per-shard storage and worker logs")
    p_cluster.add_argument("--shards", type=int, default=2,
                           help="shard worker processes to spawn")
    p_cluster.add_argument("--durability", default="flush",
                           help="durability policy of each shard's segment "
                                "store: none, flush, interval[:N], fsync")
    p_cluster.add_argument("--snapshot-every", type=int, default=10,
                           help="journal snapshot period (events)")
    p_cluster.add_argument("--no-replicate", action="store_true",
                           help="disable journal replication between shards")
    p_cluster.add_argument("--failover", choices=("restart", "promote"),
                           default="restart",
                           help="what to do when a shard worker dies: "
                                "restart it over its storage (default) or "
                                "promote its follower")
    p_cluster.set_defaults(handler=_cmd_serve_cluster)

    p_load = sub.add_parser(
        "loadgen", help="drive and verify a live workflow service"
    )
    service_common(p_load)
    p_load.add_argument("--runs", type=int, default=8,
                        help="concurrent runs to drive")
    p_load.add_argument("--events", type=int, default=20,
                        help="events per run")
    p_load.add_argument("--seed", type=int, default=0, help="workload seed")
    p_load.add_argument("--view-every", type=int, default=0,
                        help="interleave a view read every N events")
    p_load.add_argument("--max-concurrency", type=int, default=None,
                        help="cap on simultaneously active runs")
    p_load.add_argument("--clients", type=int, default=1,
                        help="open exactly N connections and partition the "
                             "runs across them (reports per-client "
                             "throughput); default is one connection per run")
    p_load.add_argument("--batch-size", type=int, default=1,
                        help="submit events in chunks of N through the "
                             "submit_batch op instead of one submit per "
                             "event")
    p_load.add_argument("--no-verify", action="store_true",
                        help="skip the client-side replay consistency check")
    p_load.add_argument("--shutdown", action="store_true",
                        help="send a shutdown request when done")
    p_load.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    p_load.add_argument("--cluster", action="store_true",
                        help="drive a serve-cluster router: idempotent "
                             "submits, optional shard kills, and a "
                             "post-mortem storage audit of every "
                             "acknowledged event")
    p_load.add_argument("--kill-shards", type=int, default=0,
                        help="with --cluster: SIGKILL this many seeded "
                             "shard workers mid-run (failover must keep "
                             "the report clean)")
    p_load.add_argument("--kill-after", type=int, default=None,
                        help="with --cluster: cluster-wide applied-event "
                             "count that triggers the first kill "
                             "(default: a quarter of the workload)")
    p_load.add_argument("--no-audit", action="store_true",
                        help="with --cluster: skip the post-mortem "
                             "read-back of every shard store")
    p_load.set_defaults(handler=_cmd_loadgen)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Exit codes: 0 success, 1 command-specific negative verdict, 2 any
    :class:`WorkflowError` (one-line diagnostic, no traceback), 3 the
    command's execution budget ran out.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None:
        from .parallel import set_default_workers

        try:
            set_default_workers(args.workers)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    budget = None
    if args.wall_budget is not None or args.max_steps is not None:
        try:
            budget = Budget(wall_seconds=args.wall_budget, max_steps=args.max_steps)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    trace_sink = None
    if getattr(args, "trace", None):
        from .obs.trace import JsonLinesSink, configure_tracing

        trace_sink = JsonLinesSink(
            sys.stderr if args.trace == "-" else args.trace
        )
        configure_tracing(trace_sink)
    try:
        with use_budget(budget):
            return args.handler(args)
    except BudgetExceeded as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return 3
    except (WorkflowError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_sink is not None:
            from .obs.trace import configure_tracing

            configure_tracing(None)
            trace_sink.close()
        if getattr(args, "profile_queries", False):
            from .workflow.planner import render_profile

            table = render_profile()
            print(table if table else "no queries were evaluated", file=sys.stderr)
        if getattr(args, "metrics", False):
            from .obs.metrics import METRICS

            print(METRICS.render_prometheus(), end="", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
