"""Update atoms and workflow rules.

A rule at peer ``p`` has the form ``Update :- Cond`` where ``Cond`` is an
FCQ¬ query over ``D@p`` and ``Update`` is a sequence of update atoms at
``p``: insertions ``+R@p(x̄)`` and deletions ``−Key_R@p(x)``.  Two
updates in the same rule may not affect the same tuple: if they touch the
same relation with key terms ``x, x'``, either the keys are distinct
constants or the body carries the inequality ``x ≠ x'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from .domain import NULL, is_null
from .errors import RuleError
from .queries import Comparison, Const, Query, RelLiteral, Term, Var, is_var, term_value
from .views import View


class UpdateAtom:
    """Base class for head update atoms."""

    view: View

    @property
    def key_term(self) -> Term:
        raise NotImplementedError

    def variables(self) -> FrozenSet[Var]:
        raise NotImplementedError

    def constants(self) -> FrozenSet[object]:
        raise NotImplementedError

    def substitute(self, valuation: Dict[Var, object]) -> "UpdateAtom":
        raise NotImplementedError


@dataclass(frozen=True)
class Insertion(UpdateAtom):
    """An insertion atom ``+R@p(x̄)`` with terms over ``att(R@p)``."""

    view: View
    terms: PyTuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.terms) != len(self.view.attributes):
            raise RuleError(
                f"insertion into {self.view.name} has {len(self.terms)} terms; "
                f"expected {len(self.view.attributes)}"
            )
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def key_term(self) -> Term:
        return self.terms[self.view.attributes.index(self.view.relation.key_attribute)]

    def variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if is_var(t))

    def constants(self) -> FrozenSet[object]:
        return frozenset(
            t.value for t in self.terms if isinstance(t, Const) and not is_null(t.value)
        )

    def substitute(self, valuation: Dict[Var, object]) -> "Insertion":
        return Insertion(
            self.view, tuple(Const(term_value(t, valuation)) for t in self.terms)
        )

    def __repr__(self) -> str:
        return f"+{self.view.name}({', '.join(map(repr, self.terms))})"


@dataclass(frozen=True)
class Deletion(UpdateAtom):
    """A deletion atom ``−Key_R@p(x)``."""

    view: View
    term: Term

    @property
    def key_term(self) -> Term:
        return self.term

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.term}) if is_var(self.term) else frozenset()

    def constants(self) -> FrozenSet[object]:
        if isinstance(self.term, Const) and not is_null(self.term.value):
            return frozenset({self.term.value})
        return frozenset()

    def substitute(self, valuation: Dict[Var, object]) -> "Deletion":
        return Deletion(self.view, Const(term_value(self.term, valuation)))

    def __repr__(self) -> str:
        return f"-Key[{self.view.name}]({self.term!r})"


@dataclass(frozen=True)
class Rule:
    """A workflow rule ``Update :- Cond`` at a peer.

    The rule's peer is determined by its head atoms, which must all
    belong to the same peer; the body must likewise query only that
    peer's views.
    """

    name: str
    head: PyTuple[UpdateAtom, ...]
    body: Query

    def __post_init__(self) -> None:
        head = tuple(self.head)
        if not head:
            raise RuleError(f"rule {self.name}: head must contain at least one update")
        object.__setattr__(self, "head", head)
        peers = {atom.view.peer for atom in head}
        if len(peers) != 1:
            raise RuleError(f"rule {self.name}: head atoms span several peers {sorted(peers)}")
        peer = next(iter(peers))
        for literal in self.body.literals:
            view = getattr(literal, "view", None)
            if view is not None and view.peer != peer:
                raise RuleError(
                    f"rule {self.name}: body literal {literal!r} queries a view of "
                    f"peer {view.peer!r}, but the rule belongs to {peer!r}"
                )
        self._check_disjoint_updates()

    @property
    def peer(self) -> str:
        """The peer owning the rule."""
        return self.head[0].view.peer

    def _check_disjoint_updates(self) -> None:
        """Enforce that no two head updates can affect the same tuple.

        Keys must be distinct constants, or separated by a body
        inequality ``x ≠ x'``.  A key that is a *head-only* variable is
        exempt: the run semantics instantiates it with a globally fresh
        value, which is distinct from every other key by construction.
        """
        by_relation: Dict[str, List[UpdateAtom]] = {}
        for atom in self.head:
            by_relation.setdefault(atom.view.relation.name, []).append(atom)
        inequalities = {
            frozenset((cmp.left, cmp.right))
            for cmp in self.body.comparisons()
            if not cmp.positive
        }
        body_vars = self.body.variables()

        def is_fresh_key(term: Term) -> bool:
            return isinstance(term, Var) and term not in body_vars

        for atoms in by_relation.values():
            for i, first in enumerate(atoms):
                for second in atoms[i + 1 :]:
                    x, y = first.key_term, second.key_term
                    if is_fresh_key(x) or is_fresh_key(y):
                        if x == y:
                            raise RuleError(
                                f"rule {self.name}: two updates of "
                                f"{first.view.relation.name} share the fresh key {x!r}"
                            )
                        continue
                    if isinstance(x, Const) and isinstance(y, Const):
                        if x.value == y.value:
                            raise RuleError(
                                f"rule {self.name}: two updates of "
                                f"{first.view.relation.name} share key {x.value!r}"
                            )
                        continue
                    if frozenset((x, y)) not in inequalities:
                        raise RuleError(
                            f"rule {self.name}: updates of {first.view.relation.name} "
                            f"with keys {x!r}, {y!r} require the body inequality "
                            f"{x!r} != {y!r}"
                        )

    # ------------------------------------------------------------------
    # Variables and constants
    # ------------------------------------------------------------------

    def head_variables(self) -> FrozenSet[Var]:
        out: Set[Var] = set()
        for atom in self.head:
            out.update(atom.variables())
        return frozenset(out)

    def body_variables(self) -> FrozenSet[Var]:
        return self.body.variables()

    def variables(self) -> FrozenSet[Var]:
        return self.head_variables() | self.body_variables()

    def head_only_variables(self) -> FrozenSet[Var]:
        """Variables occurring in the head but not in the body.

        These must be instantiated with globally fresh values.
        """
        return self.head_variables() - self.body_variables()

    def constants(self) -> FrozenSet[object]:
        out: Set[object] = set(self.body.constants())
        for atom in self.head:
            out.update(atom.constants())
        return frozenset(out)

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def insertions(self) -> PyTuple[Insertion, ...]:
        return tuple(a for a in self.head if isinstance(a, Insertion))

    def deletions(self) -> PyTuple[Deletion, ...]:
        return tuple(a for a in self.head if isinstance(a, Deletion))

    def is_linear_head(self) -> bool:
        """True iff the head contains a single update (Section 6)."""
        return len(self.head) == 1

    def is_ground(self) -> bool:
        """True iff the rule contains no variables."""
        return not self.variables()

    def deletion_has_witness(self, deletion: Deletion) -> bool:
        """True iff the body contains a literal ``R@q(x, u)`` for the deletion.

        This is condition (i) of the normal form: deletions must be
        witnessed by a positive body literal on the same key term.
        """
        for literal in self.body.positive_literals():
            if (
                isinstance(literal, RelLiteral)
                and literal.view.relation.name == deletion.view.relation.name
                and literal.view.peer == deletion.view.peer
                and literal.key_term == deletion.term
            ):
                return True
        return False

    def __repr__(self) -> str:
        head = ", ".join(repr(a) for a in self.head)
        body = repr(self.body) if self.body.literals else ""
        return f"[{self.name}] {head} :- {body}"
