"""Tests for snapshot policy and fast resume from a journal."""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import (
    CheckpointPolicy,
    fast_recover,
    latest_snapshot,
    resume_state,
    verify_snapshots,
)
from repro.runtime.journal import MemorySink, journal_run
from repro.workflow import RunGenerator
from repro.workflow.errors import RecoveryError
from repro.workloads import paper_examples


@pytest.fixture
def hiring_run():
    return RunGenerator(paper_examples.hiring_program(), seed=3).random_run(7)


class TestCheckpointPolicy:
    def test_periodic_due(self):
        policy = CheckpointPolicy(every_events=3)
        assert [n for n in range(1, 10) if policy.due(n)] == [3, 6, 9]

    def test_disabled(self):
        assert not any(CheckpointPolicy(every_events=0).due(n) for n in range(1, 10))
        assert not any(CheckpointPolicy(every_events=None).due(n) for n in range(1, 10))


class TestLatestSnapshot:
    def test_none_without_snapshots(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=None)
        assert latest_snapshot(hiring_run.program, sink) is None

    def test_picks_most_recent(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        snapshot = latest_snapshot(hiring_run.program, sink)
        assert snapshot is not None
        assert snapshot.position == 6
        assert snapshot.instance == hiring_run.instances[5]


class TestResumeState:
    @pytest.mark.parametrize("snapshot_every", [None, 1, 2, 5])
    def test_resume_matches_final_instance(self, hiring_run, snapshot_every):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=snapshot_every)
        instance, count = resume_state(hiring_run.program, sink)
        assert count == len(hiring_run)
        assert instance == hiring_run.final_instance

    def test_missing_begin_raises(self, hiring_run):
        with pytest.raises(RecoveryError, match="no begin record"):
            resume_state(hiring_run.program, [{"type": "end"}])

    def test_stale_tail_event_raises(self, hiring_run):
        """A tail event that no longer applies is a recovery error."""
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=3)
        # Duplicate the final event record: replaying it twice from the
        # snapshot must fail the engine's applicability re-check.
        event_lines = [l for l in sink.lines
                       if json.loads(l)["type"] == "event"]
        sink.lines.insert(len(sink.lines) - 1, event_lines[-1])
        try:
            instance, count = resume_state(hiring_run.program, sink)
        except RecoveryError as exc:
            assert "no longer applies on resume" in str(exc)
        else:
            # Some duplicated events are idempotently applicable; then
            # the resume simply reflects one more journaled event.
            assert count == len(hiring_run) + 1


class TestFastRecover:
    """The latest-snapshot fast path: engine work is O(tail), not O(run)."""

    def test_replays_only_the_tail(self):
        """Regression pin: 25 events, snapshots every 10 — recovery
        trusts the snapshot at event 20 and replays exactly 5 events."""
        program = paper_examples.hiring_program()
        run = RunGenerator(program, seed=7).random_run(25)
        sink = MemorySink()
        journal_run(run, sink, snapshot_every=10)
        resumed = fast_recover(program, sink)
        assert resumed.snapshot_position == 20
        assert resumed.engine_replayed == 5
        assert resumed.events_total == 25
        assert resumed.complete
        assert resumed.status == "completed"
        assert resumed.instance == run.final_instance
        # The full history is still decoded for explanations/provenance.
        assert len(resumed.events) == 25
        assert resumed.initial == run.initial

    def test_without_snapshots_replays_everything(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=None)
        resumed = fast_recover(hiring_run.program, sink)
        assert resumed.snapshot_position == 0
        assert resumed.engine_replayed == len(hiring_run)
        assert resumed.instance == hiring_run.final_instance

    def test_matches_full_recovery(self, hiring_run):
        from repro.runtime.journal import recover_run

        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=3)
        resumed = fast_recover(hiring_run.program, sink)
        recovered = recover_run(hiring_run.program, sink)
        assert resumed.instance == recovered.final_instance
        assert resumed.events_total == recovered.events_replayed

    def test_missing_begin_raises(self, hiring_run):
        with pytest.raises(RecoveryError, match="no begin record"):
            fast_recover(hiring_run.program, [{"type": "end"}])

    def test_torn_tail_surfaces_as_warning(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        sink.write('{"type": "event", "index": 99, "ev')
        resumed = fast_recover(hiring_run.program, sink)
        assert resumed.events_total == len(hiring_run)
        assert len(resumed.warnings) == 1
        assert "torn trailing line" in resumed.warnings[0]

    def test_incomplete_journal_resumes_prefix(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        sink.lines = [l for l in sink.lines  # drop the end record
                      if json.loads(l)["type"] != "end"]
        resumed = fast_recover(hiring_run.program, sink)
        assert not resumed.complete
        assert resumed.status is None
        assert resumed.instance == hiring_run.final_instance


class TestVerifySnapshots:
    def test_counts_verified(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        assert verify_snapshots(hiring_run.program, sink) == 3

    def test_divergence_raises(self, hiring_run):
        sink = MemorySink()
        journal_run(hiring_run, sink, snapshot_every=2)
        for position, line in enumerate(sink.lines):
            record = json.loads(line)
            if record["type"] == "snapshot":
                record["instance"] = {}
                sink.lines[position] = json.dumps(record) + "\n"
                break
        with pytest.raises(RecoveryError):
            verify_snapshots(hiring_run.program, sink)
