"""Zero-dependency structured tracing: nestable spans with pluggable sinks.

A *span* is one timed unit of work — an event application, a scenario
search, a synthesis pass — carrying a name, a monotonic start/duration,
a process-unique ``span_id``, the ``parent_id`` of the enclosing span
(spans nest through a :mod:`contextvars` stack, so nesting is correct
across ``asyncio`` tasks), and free-form attributes::

    with span("apply_event", run_id=run_id, peer=event.peer) as s:
        ...
        s.set("delta_keys", len(delta.changes))

Tracing is **off by default** and costs almost nothing while off:
:func:`span` returns a shared no-op context manager without allocating
a span, so the instrumented hot paths (one :func:`span` call per event
application) stay within the <5% overhead bar that benchmark E16
enforces.  Turn it on by installing a sink::

    from repro.obs import RingBufferSink, configure_tracing

    sink = RingBufferSink(capacity=10_000)
    configure_tracing(sink)          # process-wide, returns previous sink
    ...
    for finished in sink.spans():    # SpanRecord objects, oldest first
        print(finished.name, finished.duration_us)

or scoped, for tests and one-shot captures::

    with capture_spans() as sink:
        run = RunGenerator(program, seed=0).random_run(5)
    assert any(s.name == "apply_event" for s in sink.spans())

Sinks receive **finished** spans (:class:`SpanRecord`), one call per
span, innermost first.  Three implementations ship: the implicit no-op
default (:class:`NullSink`), an in-memory bounded :class:`RingBufferSink`
and a :class:`JsonLinesSink` writing one JSON object per line.

This module sits below every other ``repro`` module — it imports
nothing from the package — so any layer (engine, search, service,
runtime) can be instrumented without import cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, Tuple

__all__ = [
    "JsonLinesSink",
    "NullSink",
    "RingBufferSink",
    "SpanRecord",
    "TraceSink",
    "capture_spans",
    "configure_tracing",
    "current_span_id",
    "span",
    "tracing_enabled",
]


@dataclass
class SpanRecord:
    """One finished span, as delivered to sinks.

    ``started_at`` is a :func:`time.monotonic` timestamp (comparable
    within the process, not wall-clock); ``duration_us`` is the span's
    length in microseconds measured with :func:`time.perf_counter_ns`.
    ``status`` is ``"ok"`` or ``"error"`` (an exception escaped the
    span), with the exception's type name in ``error``.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    started_at: float
    duration_us: float
    status: str = "ok"
    error: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": round(self.started_at, 6),
            "duration_us": round(self.duration_us, 3),
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attributes:
            out["attributes"] = {k: _jsonable(v) for k, v in self.attributes.items()}
        return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class TraceSink:
    """The sink interface: one :meth:`emit` call per finished span."""

    def emit(self, record: SpanRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(TraceSink):
    """Discards every span.  Installing it is equivalent to tracing off:
    :func:`configure_tracing` special-cases it back to the disabled fast
    path, so spans are never even allocated."""

    def emit(self, record: SpanRecord) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent *capacity* finished spans in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be at least 1")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, record: SpanRecord) -> None:
        self._buffer.append(record)
        self.emitted += 1

    def spans(self) -> List[SpanRecord]:
        """The buffered spans, oldest first."""
        return list(self._buffer)

    def named(self, name: str) -> List[SpanRecord]:
        return [record for record in self._buffer if record.name == name]

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonLinesSink(TraceSink):
    """Writes one JSON object per finished span to a file or stream."""

    def __init__(self, target, flush_every: int = 64) -> None:
        """*target* is a path (opened for append) or an open text stream."""
        if hasattr(target, "write"):
            self._stream: TextIO = target
            self._owns = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owns = True
        self.flush_every = flush_every
        self.emitted = 0

    def emit(self, record: SpanRecord) -> None:
        self._stream.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self.emitted += 1
        if self.flush_every and self.emitted % self.flush_every == 0:
            self._stream.flush()

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()


# ----------------------------------------------------------------------
# The tracer: a process-wide sink plus a contextvar nesting stack
# ----------------------------------------------------------------------

_SINK: Optional[TraceSink] = None

_ids = itertools.count(1)

#: The innermost active span's id (None at top level).  A contextvar so
#: nesting is tracked correctly across asyncio task switches.
_CURRENT: "contextvars.ContextVar[Optional[int]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def configure_tracing(sink: Optional[TraceSink]) -> Optional[TraceSink]:
    """Install *sink* process-wide and return the previously installed one.

    ``None`` or a :class:`NullSink` disables tracing entirely (the
    zero-allocation fast path benchmark E16 measures).
    """
    global _SINK
    previous = _SINK
    _SINK = None if sink is None or isinstance(sink, NullSink) else sink
    return previous


def tracing_enabled() -> bool:
    """True iff a real (non-null) sink is installed."""
    return _SINK is not None


def current_span_id() -> Optional[int]:
    """The innermost active span's id, or None outside any span."""
    return _CURRENT.get()


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span: context manager measuring one unit of work."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "_started_at",
        "_start_ns",
        "_token",
    )

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = next(_ids)
        self.parent_id: Optional[int] = None
        self.attributes = attributes

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span while it is running."""
        self.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self.parent_id = _CURRENT.get()
        self._token = _CURRENT.set(self.span_id)
        self._started_at = time.monotonic()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_us = (time.perf_counter_ns() - self._start_ns) / 1e3
        _CURRENT.reset(self._token)
        sink = _SINK
        if sink is None:  # sink removed mid-span: drop silently
            return None
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            started_at=self._started_at,
            duration_us=duration_us,
            status="error" if exc_type is not None else "ok",
            error=exc_type.__name__ if exc_type is not None else None,
            attributes=self.attributes,
        )
        try:
            sink.emit(record)
        except Exception:  # a broken sink must never break the traced code
            pass
        return None


def span(name: str, **attributes: Any):
    """Open a span named *name* with the given attributes.

    Returns a context manager; while tracing is disabled it is a shared
    no-op object and no span is allocated.  The live span supports
    ``.set(key, value)`` for attributes only known mid-work.
    """
    if _SINK is None:
        return _NOOP
    return _ActiveSpan(name, attributes)


@contextlib.contextmanager
def capture_spans(capacity: int = 4096) -> Iterator[RingBufferSink]:
    """Scoped tracing into a fresh ring buffer (restores the prior sink).

    >>> # with capture_spans() as sink:
    >>> #     apply_event(schema, instance, event)
    >>> # sink.named("apply_event")
    """
    sink = RingBufferSink(capacity)
    previous = configure_tracing(sink)
    try:
        yield sink
    finally:
        configure_tracing(previous)
