"""Batched drain E2E: per-event semantics survive amortization bit-for-bit.

The broker's ``batch_size`` and the ``submit_batch`` op only exist to
amortize per-event overhead; they must be *observationally invisible*.
These tests drive the same event sequence through a batch-1 service
(one ``submit`` per event) and a batched service (``submit_batch``
chunks drained as one amortized application) and require identical

* per-event acks — ``status``, ``seq``, ``attempts`` and the acting
  peer's post-event view ``version``;
* journal files — byte-for-byte (records and snapshot cadence are
  deterministic);
* provenance logs — every citation identical (modulo the tracing
  ``span_id``, which is explicitly not part of the contract);
* view-cache versions — every peer's final ``version`` and instance.
"""

from __future__ import annotations

import asyncio
import json

from repro.service import ServiceServer, WorkflowService
from repro.service.loadgen import ServiceClient
from repro.workflow.enumerate import RunGenerator
from repro.workflow.serialization import event_to_dict
from repro.workloads.generators import churn_program

EVENTS = 20


def generated_events(program, seed=11, count=EVENTS):
    return list(RunGenerator(program, seed=seed).random_run(count).events)


def scrub_span_ids(records):
    return [
        {key: value for key, value in record.items() if key != "span_id"}
        for record in records
    ]


async def drive(service, events, run_id, batch_size):
    """Submit *events*; returns (acks, provenance, views) snapshots."""
    server = ServiceServer(service, port=0)
    await server.start()
    client = await ServiceClient.connect(server.host, server.port)
    try:
        await client.expect_ok(op="open", run=run_id)
        acks = []
        if batch_size == 1:
            for event in events:
                response = await client.expect_ok(
                    op="submit", run=run_id, event=event_to_dict(event)
                )
                acks.append(response)
        else:
            for start in range(0, len(events), batch_size):
                chunk = events[start : start + batch_size]
                response = await client.expect_ok(
                    op="submit_batch",
                    run=run_id,
                    events=[{"event": event_to_dict(e)} for e in chunk],
                )
                acks.extend(response["results"])
        provenance = await client.expect_ok(op="provenance", run=run_id)
        views = {}
        for peer in service.program.schema.peers:
            views[peer] = await client.expect_ok(
                op="view", run=run_id, peer=peer
            )
        await client.expect_ok(op="close", run=run_id)
        return acks, provenance["records"], views
    finally:
        await client.close()
        await server.stop()


def journal_bytes(journal_dir):
    return {
        path.name: path.read_bytes()
        for path in sorted(journal_dir.rglob("*"))
        if path.is_file()
    }


class TestBatchedDrainBitIdentity:
    def test_batched_equals_sequential(self, tmp_path):
        program = churn_program()
        events = generated_events(program)

        async def main():
            sequential = await drive(
                WorkflowService(
                    program, journal_dir=tmp_path / "seq", batch_size=1
                ),
                events,
                "run-a",
                batch_size=1,
            )
            batched = await drive(
                WorkflowService(
                    program, journal_dir=tmp_path / "batch", batch_size=8
                ),
                events,
                "run-a",
                batch_size=8,
            )
            return sequential, batched

        (seq_acks, seq_prov, seq_views), (bat_acks, bat_prov, bat_views) = (
            asyncio.run(main())
        )

        # Per-event acks: status, seq, attempts, version — identical.
        assert len(seq_acks) == len(bat_acks) == len(events)
        for ack_a, ack_b in zip(seq_acks, bat_acks):
            for field in ("status", "seq", "attempts", "version", "recovered"):
                assert ack_a.get(field) == ack_b.get(field), field

        # Provenance: identical citations, span ids excepted.
        assert scrub_span_ids(seq_prov) == scrub_span_ids(bat_prov)

        # Views: every peer's final version and instance.
        for peer in program.schema.peers:
            assert seq_views[peer]["version"] == bat_views[peer]["version"]
            assert seq_views[peer]["instance"] == bat_views[peer]["instance"]

        # Journals: byte-for-byte identical files.
        seq_files = journal_bytes(tmp_path / "seq")
        bat_files = journal_bytes(tmp_path / "batch")
        assert seq_files.keys() == bat_files.keys()
        assert list(seq_files.keys()), "the journal must actually exist"
        for name in seq_files:
            assert seq_files[name] == bat_files[name], name

    def test_submit_batch_against_an_unbatched_broker(self):
        """The op works (per-item settle path) even at batch_size=1."""
        program = churn_program()
        events = generated_events(program, seed=21, count=10)

        async def main():
            one = await drive(
                WorkflowService(program, batch_size=1),
                events,
                "run-b",
                batch_size=1,
            )
            op_batched = await drive(
                WorkflowService(program, batch_size=1),
                events,
                "run-b",
                batch_size=5,
            )
            return one, op_batched

        (seq_acks, seq_prov, seq_views), (bat_acks, bat_prov, bat_views) = (
            asyncio.run(main())
        )
        assert [a.get("seq") for a in seq_acks] == [
            a.get("seq") for a in bat_acks
        ]
        assert [a.get("status") for a in seq_acks] == [
            a.get("status") for a in bat_acks
        ]
        assert scrub_span_ids(seq_prov) == scrub_span_ids(bat_prov)
        for peer in program.schema.peers:
            assert seq_views[peer]["version"] == bat_views[peer]["version"]

    def test_idempotent_seq_keys_in_a_batch(self):
        """Replaying a whole batch with seq keys dedupes every entry."""
        program = churn_program()
        events = generated_events(program, seed=31, count=6)

        async def main():
            service = WorkflowService(program, batch_size=8)
            server = ServiceServer(service, port=0)
            await server.start()
            client = await ServiceClient.connect(server.host, server.port)
            try:
                await client.expect_ok(op="open", run="run-c")
                entries = [
                    {"event": event_to_dict(e), "seq": i}
                    for i, e in enumerate(events)
                ]
                first = await client.expect_ok(
                    op="submit_batch", run="run-c", events=entries
                )
                replay = await client.expect_ok(
                    op="submit_batch", run="run-c", events=entries
                )
                return first, replay
            finally:
                await client.close()
                await server.stop()

        first, replay = asyncio.run(main())
        assert [r["seq"] for r in first["results"]] == list(range(len(events)))
        assert all(r["status"] == "applied" for r in first["results"])
        assert all(r.get("deduped") for r in replay["results"])
        assert [r["seq"] for r in replay["results"]] == [
            r["seq"] for r in first["results"]
        ]
        assert replay["applied"] == len(events)

    def test_batch_rejects_malformed_requests(self):
        program = churn_program()

        async def main():
            service = WorkflowService(program, batch_size=4)
            server = ServiceServer(service, port=0)
            await server.start()
            client = await ServiceClient.connect(server.host, server.port)
            try:
                await client.expect_ok(op="open", run="run-d")
                empty = await client.request(
                    op="submit_batch", run="run-d", events=[]
                )
                bad_entry = await client.request(
                    op="submit_batch", run="run-d", events=[{"seq": 0}]
                )
                bad_seq = await client.request(
                    op="submit_batch",
                    run="run-d",
                    events=[
                        {
                            "event": event_to_dict(
                                generated_events(program, seed=1, count=1)[0]
                            ),
                            "seq": -1,
                        }
                    ],
                )
                return empty, bad_entry, bad_seq
            finally:
                await client.close()
                await server.stop()

        empty, bad_entry, bad_seq = asyncio.run(main())
        for response in (empty, bad_entry, bad_seq):
            assert not response.get("ok")
            assert response.get("error") == "protocol"
