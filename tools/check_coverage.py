#!/usr/bin/env python
"""Coverage ratchet: gate CI on a coverage.xml report (stdlib only).

Per-package floors plus a total ratchet, all read from
``coverage_ratchet.json`` at the repo root:

* ``parallel_floor`` — the ``repro.parallel`` package must stay at or
  above this line coverage (the differential-test layer's promise is
  only as good as its reach into the engine).
* ``workflow_floor`` — the ``repro.workflow`` package (the engine, the
  planner and the query compiler) must stay at or above this line
  coverage; the compiled backend is only trustworthy to the extent the
  equivalence suites actually reach its codegen paths.
* ``dataflow_floor`` — the ``repro.dataflow`` package (the Z-set
  algebra, the incremental operators, the delta graph) must stay at or
  above this line coverage; every derived artifact in the service rides
  on these operators being exercised.
* ``workloads_floor`` — the ``repro.workloads`` package (the program
  generators, the realistic families, the fuzzer and its differential
  harness) must stay at or above this line coverage; a fuzzer whose own
  rule shapes go unexercised silently stops finding divergences.
* ``total`` / ``allowed_total_drop`` — total line coverage may not fall
  more than ``allowed_total_drop`` percentage points below the recorded
  ``total``.  The recorded value only moves when someone runs
  ``--update`` and commits the result, so coverage ratchets up and
  cannot silently erode.

Usage::

    python tools/check_coverage.py coverage.xml            # gate (CI)
    python tools/check_coverage.py coverage.xml --update   # re-baseline

The parser consumes the Cobertura XML that ``pytest --cov`` emits via
``--cov-report=xml`` and needs nothing outside the standard library, so
the gate itself has no install step to fail.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

RATCHET_PATH = Path(__file__).resolve().parent.parent / "coverage_ratchet.json"

#: Gated packages: ratchet key prefix -> filename matcher.  The
#: ``workloads`` pattern allows one directory level for the family
#: subpackage (``workloads/families/*.py``).
PACKAGES = {
    "parallel": re.compile(r"(^|/)(src/)?(repro/)?parallel/[^/]+\.py$"),
    "workflow": re.compile(r"(^|/)(src/)?(repro/)?workflow/[^/]+\.py$"),
    "dataflow": re.compile(r"(^|/)(src/)?(repro/)?dataflow/[^/]+\.py$"),
    "workloads": re.compile(
        r"(^|/)(src/)?(repro/)?workloads/([^/]+/)?[^/]+\.py$"
    ),
}


def measure(xml_path: Path) -> dict:
    """Total and per-package line coverage (percent)."""
    root = ET.parse(str(xml_path)).getroot()
    total_valid = total_covered = 0
    valid = {name: 0 for name in PACKAGES}
    covered = {name: 0 for name in PACKAGES}
    for cls in root.iter("class"):
        filename = (cls.get("filename") or "").replace("\\", "/")
        members = [
            name
            for name, pattern in PACKAGES.items()
            if pattern.search(filename)
        ]
        for line in cls.iter("line"):
            total_valid += 1
            hit = int(line.get("hits", "0")) > 0
            total_covered += hit
            for name in members:
                valid[name] += 1
                covered[name] += hit
    if total_valid == 0:
        raise SystemExit(f"error: no line data found in {xml_path}")

    def pct(hits: int, lines: int) -> float:
        return 100.0 * hits / lines if lines else 0.0

    measured = {"total": round(pct(total_covered, total_valid), 2)}
    for name in PACKAGES:
        measured[name] = round(pct(covered[name], valid[name]), 2)
        measured[f"{name}_lines"] = valid[name]
    return measured


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="coverage.xml to check")
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured totals back into the ratchet file",
    )
    args = parser.parse_args(argv)

    ratchet = json.loads(RATCHET_PATH.read_text())
    measured = measure(args.report)
    parts = [f"total {measured['total']:.2f}%"]
    parts.extend(
        f"repro.{name} {measured[name]:.2f}% over "
        f"{measured[f'{name}_lines']} lines"
        for name in PACKAGES
    )
    print("coverage: " + " | ".join(parts))

    if args.update:
        ratchet["total"] = measured["total"]
        RATCHET_PATH.write_text(json.dumps(ratchet, indent=2) + "\n")
        print(f"ratchet updated: total floor now {measured['total']:.2f}%")
        return 0

    failures = []
    for name in PACKAGES:
        floor = ratchet.get(f"{name}_floor")
        if floor is None:
            continue
        if measured[f"{name}_lines"] == 0:
            failures.append(
                f"no repro.{name} lines in the report (wrong --cov target?)"
            )
        elif measured[name] < floor:
            failures.append(
                f"repro.{name} coverage {measured[name]:.2f}% is below the "
                f"{floor:.2f}% floor"
            )
    floor = ratchet["total"] - ratchet["allowed_total_drop"]
    if measured["total"] < floor:
        failures.append(
            f"total coverage {measured['total']:.2f}% dropped more than "
            f"{ratchet['allowed_total_drop']:.2f}pt below the recorded "
            f"{ratchet['total']:.2f}% (floor {floor:.2f}%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("coverage ratchet: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
