"""Exception hierarchy for the collaborative workflow substrate.

Every error raised by :mod:`repro` derives from :class:`WorkflowError`, so
client code can catch the whole family with a single ``except`` clause.
The sub-classes mirror the places where the formal model of Abiteboul,
Bourhis and Vianu (PODS 2018) imposes side conditions: schema formation,
key constraints / chase failure, rule well-formedness, update
applicability and run formation.
"""

from __future__ import annotations


class WorkflowError(Exception):
    """Base class for all errors raised by the workflow substrate."""


class SchemaError(WorkflowError):
    """A relation, view or collaborative schema is malformed."""


class LosslessnessError(SchemaError):
    """A collaborative schema violates the losslessness condition."""


class ChaseFailure(WorkflowError):
    """The key chase terminated on an invalid instance.

    Raised when two tuples share a key but hold distinct non-null values
    for the same attribute, which the chase of Section 2 cannot repair.
    """


class InvalidInstanceError(WorkflowError):
    """An instance violates the key constraints (null or duplicate key)."""


class RuleError(WorkflowError):
    """A rule violates the syntactic well-formedness conditions."""


class QueryError(WorkflowError):
    """An FCQ^neg query is malformed (e.g. violates the safety condition)."""


class EventError(WorkflowError):
    """An event (rule instantiation) is invalid for the current instance."""


class UpdateNotApplicable(EventError):
    """An insertion or deletion in an event head cannot be applied."""


class FreshnessViolation(EventError):
    """A head-only variable was instantiated with a non-fresh value."""


class RunError(WorkflowError):
    """A sequence of events does not form a run."""


class ParseError(WorkflowError):
    """The textual program syntax could not be parsed."""


class SynthesisError(WorkflowError):
    """View-program synthesis failed (e.g. precondition violated)."""


class EnforcementError(WorkflowError):
    """Transparency enforcement rejected an event or program."""


class BudgetExceeded(WorkflowError):
    """A cooperative execution budget (wall clock, steps, depth) ran out.

    Raised from the checkpoints polled inside the worst-case exponential
    searches (state-space exploration, scenario search, boundedness
    checking, view-program synthesis) so callers can bound them; the
    anytime entry points of :mod:`repro.runtime.supervisor` catch it and
    return an explicitly ``truncated`` best-so-far answer instead.
    """


class JournalError(WorkflowError):
    """A run journal is malformed or was written to after closing."""


class RecoveryError(JournalError):
    """Replaying a journal failed (invalid event or snapshot mismatch)."""
