"""LRU eviction of idle hosted runs and transparent rehydration."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.faults import DiskFault
from repro.service.errors import ServiceError
from repro.service.registry import ShardedRunRegistry
from repro.storage import MemoryBackend, SegmentBackend
from repro.workflow import Event, FreshValue, Var
from repro.workloads.generators import churn_program


def make_event(program, index):
    return Event(program.rule("make"), {Var("x"): FreshValue(1000 + index)})


def run_async(coro):
    return asyncio.run(coro)


class TestEviction:
    def test_max_resident_enforced_lru(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=SegmentBackend(tmp_path), max_resident=2
            )
            for run_id in ("a", "b", "c"):
                await registry.open(run_id)
            assert registry.resident_count() == 2
            assert registry.evicted_count() == 1
            assert registry.hosted_count() == 3
            # "a" was the least recently used; it is the one evicted.
            assert "a" not in registry._shard("a").runs
            assert sorted(registry.run_ids()) == ["a", "b", "c"]
            stats = registry.stats()
            assert stats["resident_runs"] == 2
            assert stats["evicted_runs"] == 1
            assert stats["evictions"] == 1

        run_async(scenario())

    def test_rehydration_restores_state_and_counters(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program,
                storage=SegmentBackend(tmp_path),
                max_resident=1,
                snapshot_every=2,
            )
            await registry.open("a")
            hosted = await registry.get("a")
            for i in range(5):
                hosted.apply(make_event(program, i))
                hosted.submitted += 1
            await registry.open("b")  # evicts "a"
            assert registry.evicted_count() == 1
            back = await registry.get("a")  # rehydrates, evicts "b"
            assert back.applied == 5
            assert back.submitted == 5
            # Rehydration is transparent: it is NOT a crash recovery.
            assert back.recoveries == 0
            assert back.instance.size() == 5
            # Sequence numbering continues where it left off.
            seq, _ = back.apply(make_event(program, 99))
            assert seq == 5
            assert registry.stats()["rehydrations"] == 1

        run_async(scenario())

    def test_memory_backend_supports_eviction(self):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=MemoryBackend(), max_resident=1
            )
            await registry.open("a")
            hosted = await registry.get("a")
            hosted.apply(make_event(program, 0))
            await registry.open("b")
            back = await registry.get("a")
            assert back.applied == 1
            assert back.recoveries == 0

        run_async(scenario())

    def test_view_versions_never_go_backwards(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=SegmentBackend(tmp_path), max_resident=1
            )
            await registry.open("a")
            hosted = await registry.get("a")
            for i in range(4):
                hosted.apply(make_event(program, i))
            versions_before = {
                peer: hosted.view_version(peer) for peer in program.schema.peers
            }
            await registry.open("b")  # evicts "a"
            back = await registry.get("a")
            for peer, version in versions_before.items():
                assert back.view_version(peer) >= version

        run_async(scenario())

    def test_close_of_evicted_run_seals_it(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=SegmentBackend(tmp_path), max_resident=1
            )
            await registry.open("a")
            hosted = await registry.get("a")
            hosted.apply(make_event(program, 0))
            await registry.open("b")  # evicts "a"
            closed = await registry.close("a")
            assert closed.applied == 1
            assert registry.hosted_count() == 1
            records, _ = registry.storage.read_records("a")
            assert records[-1]["type"] == "end"
            assert records[-1]["status"] == "completed"

        run_async(scenario())

    def test_crash_of_evicted_run_recovers_from_disk(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=SegmentBackend(tmp_path), max_resident=1
            )
            await registry.open("a")
            hosted = await registry.get("a")
            for i in range(3):
                hosted.apply(make_event(program, i))
            await registry.open("b")  # evicts "a"
            reborn = await registry.crash_and_recover("a")
            assert reborn.applied == 3
            assert reborn.recoveries >= 1

        run_async(scenario())

    def test_eviction_aborts_when_persistence_fails(self, tmp_path):
        """A run whose state cannot be persisted must stay resident —
        evicting it would lose acknowledged events."""
        program = churn_program()

        class AlwaysFailFsync:
            injected = {}

            def on_append(self):
                return None

            def on_fsync(self):
                return True

        async def scenario():
            backend = SegmentBackend(tmp_path, fault_injector=AlwaysFailFsync())
            registry = ShardedRunRegistry(program, storage=backend, max_resident=1)
            await registry.open("a")
            hosted = await registry.get("a")
            hosted.apply(make_event(program, 0))
            await registry.open("b")
            # The eviction of "a" could not reach a durability barrier:
            # it must still be resident (possibly alongside "b").
            assert "a" in registry._shard("a").runs
            assert registry.resident_count() >= 1
            live = await registry.get("a")
            assert live.applied == 1

        run_async(scenario())

    def test_active_run_is_protected_from_eviction(self, tmp_path):
        program = churn_program()

        async def scenario():
            registry = ShardedRunRegistry(
                program, storage=SegmentBackend(tmp_path), max_resident=1
            )
            await registry.open("only")
            hosted = await registry.get("only")
            for i in range(10):
                hosted = await registry.get("only")
                hosted.apply(make_event(program, i))
            assert registry.resident_count() == 1
            assert registry.stats()["evictions"] == 0

        run_async(scenario())
