"""Runtime enforcement of transparency and h-boundedness (Theorem 6.7).

The paper rewrites a TF program ``P`` into ``P^t``, whose runs are the
transparent, h-bounded runs of ``P`` enriched with bookkeeping relations
``R^t`` (per-fact transparency bits ``tA``/``dK`` and per-attribute step
provenance ``A^s_1..A^s_h``), related to ``P`` by a projection that is
the identity for the observed peer.  This module implements the
*semantics* of that construction directly, as an instrumented engine:

* each p-stage gets an id; each event within a stage a step id;
* a fact of an invisible relation *holds transparently* when its tuple
  was transparently created in the current stage and every attribute
  value was produced by transparent events of the stage; a negative key
  fact holds transparently when the key was transparently created and
  deleted within the stage (facts of p-visible relations are always
  transparent);
* an event is *transparent* when every body fact holds transparently
  and its step provenance ``H`` (the union of the provenances of its
  body facts plus the current step) has at most ``h`` step ids;
* only transparent events may modify what the peer sees — a
  non-transparent event with visible side effects is rejected (blocked,
  or merely flagged in ``observe`` mode), exactly the runs ``P^t``
  filters out.

The explicit schema-level rewriting for ground programs lives in
:mod:`repro.design.rewrite`; differential tests check the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple as PyTuple

from ..workflow.domain import is_null
from ..workflow.engine import apply_event
from ..workflow.errors import EnforcementError
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.queries import Comparison, KeyLiteral, RelLiteral
from ..workflow.runs import Run


@dataclass(frozen=True)
class EnforcementDecision:
    """The enforcer's verdict on one event."""

    index: int
    allowed: bool
    transparent: bool
    visible: bool
    stage: int
    step: Optional[int]
    provenance: FrozenSet[int]
    reason: str = ""


@dataclass(frozen=True)
class EnforcementTrace:
    """All decisions for a replayed event sequence."""

    decisions: PyTuple[EnforcementDecision, ...]

    @property
    def accepted(self) -> bool:
        return all(decision.allowed for decision in self.decisions)

    def blocked(self) -> PyTuple[EnforcementDecision, ...]:
        return tuple(d for d in self.decisions if not d.allowed)


class _FactState:
    """Stage-local transparency bookkeeping for one (relation, key)."""

    __slots__ = ("created_provenance", "attribute_provenance")

    def __init__(self, created_provenance: FrozenSet[int]) -> None:
        self.created_provenance = created_provenance
        self.attribute_provenance: Dict[str, FrozenSet[int]] = {}

    def full_provenance(self) -> FrozenSet[int]:
        out: Set[int] = set(self.created_provenance)
        for provenance in self.attribute_provenance.values():
            out.update(provenance)
        return frozenset(out)


class TransparencyEnforcer:
    """Instrumented engine enforcing transparency + h-boundedness.

    Three reactions to a violating event (Remark 6.9):

    * ``mode='block'`` raises :class:`EnforcementError`; the event is
      not applied (the ``P^t`` semantics — the run cannot proceed);
    * ``mode='observe'`` applies the event anyway and records the
      violation (the "alert" alternative);
    * ``mode='rollback'`` rejects the event *and* rolls the instance
      back to the state at the beginning of the current stage,
      discarding the stage's silent events (the "recovery" alternative).

    >>> # enforcer = TransparencyEnforcer(program, "sue", h=2)
    >>> # enforcer.extend(event)
    """

    def __init__(
        self,
        program: WorkflowProgram,
        peer: str,
        h: int,
        mode: str = "block",
        initial: Optional[Instance] = None,
    ) -> None:
        if mode not in ("block", "observe", "rollback"):
            raise ValueError(f"unknown enforcement mode {mode!r}")
        self.program = program
        self.peer = peer
        self.h = h
        self.mode = mode
        self.schema = program.schema
        start = initial if initial is not None else Instance.empty(self.schema.schema)
        self._instances: List[Instance] = [start]
        self._events: List[Event] = []
        self.decisions: List[EnforcementDecision] = []
        self._stage = 0
        self._next_step = 0
        # Stage-local state: transparent facts and transparent deletions.
        self._facts: Dict[PyTuple[str, object], _FactState] = {}
        self._deleted: Dict[PyTuple[str, object], FrozenSet[int]] = {}
        # For rollback mode: how many events had been applied when the
        # current stage opened.
        self._stage_start = 0
        self._rollbacks = 0

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def current_instance(self) -> Instance:
        return self._instances[-1]

    @property
    def stage(self) -> int:
        return self._stage

    def run(self) -> Run:
        return Run(
            self.program, self._instances[0], self._events, self._instances[1:]
        )

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Fact transparency
    # ------------------------------------------------------------------

    def _visible_relation(self, relation: str) -> bool:
        return self.schema.peer_sees(relation, self.peer)

    def _positive_fact_provenance(
        self, relation: str, key: object, attributes: Sequence[str]
    ) -> Optional[FrozenSet[int]]:
        """Provenance if the fact holds transparently, else None."""
        if self._visible_relation(relation):
            return frozenset()
        state = self._facts.get((relation, key))
        if state is None:
            return None  # created before the stage, or opaquely
        provenance: Set[int] = set(state.created_provenance)
        instance = self.current_instance
        tup = instance.tuple_with_key(relation, key)
        if tup is None:  # pragma: no cover - body matched, so it exists
            return None
        for attribute in attributes:
            if attribute == self.schema.schema.relation(relation).key_attribute:
                continue
            if is_null(tup[attribute]):
                continue
            attr_provenance = state.attribute_provenance.get(attribute)
            if attr_provenance is None:
                return None  # value produced opaquely / outside the stage
            provenance.update(attr_provenance)
        return frozenset(provenance)

    def _negative_fact_provenance(
        self, relation: str, key: object
    ) -> Optional[FrozenSet[int]]:
        if self._visible_relation(relation):
            return frozenset()
        provenance = self._deleted.get((relation, key))
        return provenance  # None unless transparently created+deleted

    def _event_body_provenance(self, event: Event) -> PyTuple[bool, FrozenSet[int], str]:
        """(transparent?, provenance H without current step, reason)."""
        provenance: Set[int] = set()
        for literal in event.ground_body():
            if isinstance(literal, Comparison):
                continue
            relation = literal.view.relation.name
            if isinstance(literal, RelLiteral) and literal.positive:
                key = literal.key_term.value
                fact = self._positive_fact_provenance(
                    relation, key, literal.view.attributes
                )
                if fact is None:
                    return False, frozenset(), (
                        f"body fact {literal!r} does not hold transparently"
                    )
                provenance.update(fact)
            elif isinstance(literal, KeyLiteral) and not literal.positive:
                key = literal.term.value
                fact = self._negative_fact_provenance(relation, key)
                if fact is None:
                    return False, frozenset(), (
                        f"negative fact {literal!r} does not hold transparently"
                    )
                provenance.update(fact)
            else:
                # Normal form excludes other shapes; treat them strictly.
                return False, frozenset(), f"literal {literal!r} outside normal form"
        return True, frozenset(provenance), ""

    # ------------------------------------------------------------------
    # Extension
    # ------------------------------------------------------------------

    def extend(self, event: Event) -> EnforcementDecision:
        """Process one event: classify, enforce, apply, track."""
        before = self.current_instance
        successor = apply_event(self.schema, before, event, forbidden_fresh=None)
        visible = event.peer == self.peer or self.schema.view_instance(
            before, self.peer
        ) != self.schema.view_instance(successor, self.peer)
        body_transparent, body_provenance, reason = self._event_body_provenance(event)
        step = self._next_step
        provenance = frozenset(body_provenance | {step})
        transparent = body_transparent and len(provenance) <= self.h
        if body_transparent and len(provenance) > self.h:
            reason = (
                f"step provenance needs {len(provenance)} ids but h={self.h}"
            )
        allowed = transparent or not visible
        decision = EnforcementDecision(
            index=len(self._events),
            allowed=allowed,
            transparent=transparent,
            visible=visible,
            stage=self._stage,
            step=step,
            provenance=provenance,
            reason="" if allowed else f"non-transparent visible event: {reason}",
        )
        if not allowed and self.mode == "block":
            raise EnforcementError(decision.reason)
        if not allowed and self.mode == "rollback":
            self._rollback_stage()
            self.decisions.append(decision)
            return decision
        self._next_step += 1
        self._events.append(event)
        self._instances.append(successor)
        self.decisions.append(decision)
        self._track(event, before, successor, decision)
        if decision.visible:
            self._stage_start = len(self._events)
        return decision

    def _rollback_stage(self) -> None:
        """Remark 6.9 recovery: revert to the start of the current stage.

        The offending event and every silent event of the stage are
        discarded; the instance returns to the last stage boundary.
        """
        del self._events[self._stage_start :]
        del self._instances[self._stage_start + 1 :]
        self._facts.clear()
        self._deleted.clear()
        self._rollbacks += 1

    @property
    def rollbacks(self) -> int:
        """Number of stage rollbacks performed (rollback mode only)."""
        return self._rollbacks

    def replay(self, events: Sequence[Event]) -> EnforcementTrace:
        """Feed *events* (in observe mode, never raises) and return the trace."""
        for event in events:
            self.extend(event)
        return EnforcementTrace(tuple(self.decisions))

    # ------------------------------------------------------------------
    # Tracking updates
    # ------------------------------------------------------------------

    def _track(
        self,
        event: Event,
        before: Instance,
        after: Instance,
        decision: EnforcementDecision,
    ) -> None:
        if decision.visible:
            # Stage boundary: stale stage-local knowledge is discarded.
            self._stage += 1
            self._facts.clear()
            self._deleted.clear()
            mark_transparent = decision.transparent
        else:
            mark_transparent = decision.transparent
        provenance = decision.provenance
        for deletion in event.ground_deletions():
            relation = deletion.view.relation.name
            key = deletion.term.value
            state = self._facts.pop((relation, key), None)
            if mark_transparent and state is not None:
                self._deleted[(relation, key)] = frozenset(
                    provenance | state.full_provenance()
                )
        for insertion in event.ground_insertions():
            relation = insertion.view.relation.name
            key = insertion.key_term.value
            if self._visible_relation(relation):
                continue  # visible facts are transparent by definition
            existed = before.has_key(relation, key)
            old = before.tuple_with_key(relation, key)
            new = after.tuple_with_key(relation, key)
            if not existed:
                if mark_transparent:
                    state = _FactState(provenance)
                    for attribute in new.attributes:
                        if not is_null(new[attribute]):
                            state.attribute_provenance[attribute] = provenance
                    self._facts[(relation, key)] = state
                else:
                    self._facts.pop((relation, key), None)
            else:
                state = self._facts.get((relation, key))
                for attribute in new.attributes:
                    changed = is_null(old[attribute]) and not is_null(new[attribute])
                    if not changed:
                        continue
                    if mark_transparent and state is not None:
                        state.attribute_provenance[attribute] = provenance
                    elif state is not None:
                        state.attribute_provenance.pop(attribute, None)
                        # An opaque touch poisons the whole fact.
                        self._facts.pop((relation, key), None)
                        break


def enforce_run(
    program: WorkflowProgram,
    peer: str,
    h: int,
    events: Sequence[Event],
    mode: str = "observe",
    initial: Optional[Instance] = None,
) -> EnforcementTrace:
    """Replay *events* through a :class:`TransparencyEnforcer`.

    >>> # trace = enforce_run(program, "sue", 2, run.events)
    >>> # trace.accepted
    """
    enforcer = TransparencyEnforcer(program, peer, h, mode=mode, initial=initial)
    return enforcer.replay(events)
