"""Deterministic, seed-driven fault injection for resilience testing.

A :class:`FaultInjector` is consulted by the supervisor before every
event-application attempt and, depending on its :class:`FaultPlan`,
raises one of three fault shapes:

* :class:`TransientFault` — a fault that clears after a bounded number
  of attempts (a flaky backend); bounded retry with backoff should
  absorb it;
* :class:`InjectedChaseFailure` — a *persistent* chase failure pinned to
  an event; retrying never helps, so the supervisor must quarantine the
  event instead of aborting the run;
* :class:`CrashFault` — a simulated process death: the test harness
  abandons every in-memory structure and recovers from the journal.

The schedule is a pure function of the plan's seed and the event index
(each index draws from its own :class:`random.Random`), so a fault
schedule is reproducible regardless of retry counts, recovery order, or
how many times an index is revisited — the property the crash-recovery
equivalence tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..workflow.errors import ChaseFailure, WorkflowError
from ..workflow.events import Event

__all__ = [
    "CrashFault",
    "DiskFault",
    "DiskFaultInjector",
    "DiskFaultPlan",
    "FaultInjector",
    "FaultPlan",
    "InjectedChaseFailure",
    "InjectedFault",
    "TransientFault",
]


class InjectedFault(WorkflowError):
    """Base class for faults raised by a :class:`FaultInjector`."""


class TransientFault(InjectedFault):
    """An injected fault that clears after a bounded number of attempts."""


class InjectedChaseFailure(ChaseFailure):
    """An injected *persistent* chase failure (subclasses the real one)."""


class CrashFault(InjectedFault):
    """A simulated process crash: in-memory state is lost, the journal survives."""


class DiskFault(InjectedFault):
    """An injected storage-layer failure (short write, fsync error, ENOSPC).

    ``kind`` names the fault shape so the storage backend can model the
    right on-disk aftermath (a short write leaves a torn record, a
    failed fsync leaves data intact but the barrier unachieved, ENOSPC
    writes nothing).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class FaultPlan:
    """The knobs of deterministic fault injection.

    ``seed`` drives every probabilistic decision.  ``transient_rate`` /
    ``poison_rate`` / ``crash_rate`` are per-event probabilities of the
    three fault shapes (a crash wins over poison, poison over
    transient).  ``transient_attempts`` is how many consecutive attempts
    a transient fault survives before clearing.  ``crash_at_event``
    forces a deterministic crash before applying that event index —
    the precision tool for recovery tests.
    """

    seed: int = 0
    transient_rate: float = 0.0
    transient_attempts: int = 2
    poison_rate: float = 0.0
    crash_rate: float = 0.0
    crash_at_event: Optional[int] = None


class FaultInjector:
    """Raises faults per a :class:`FaultPlan`; deterministic per (seed, index)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._attempts: Dict[int, int] = {}
        self._crashed_at: Dict[int, bool] = {}

    def attempts(self, index: int) -> int:
        """How many application attempts have been made for *index*."""
        return self._attempts.get(index, 0)

    def fault_at(self, index: int) -> Optional[str]:
        """The scheduled fault shape at *index* (pure in seed and index)."""
        plan = self.plan
        if plan.crash_at_event is not None and index == plan.crash_at_event:
            return "crash"
        # One generator per index: the schedule does not depend on the
        # order or multiplicity of queries.
        rng = random.Random(f"{plan.seed}:{index}")
        if plan.crash_rate and rng.random() < plan.crash_rate:
            return "crash"
        if plan.poison_rate and rng.random() < plan.poison_rate:
            return "poison"
        if plan.transient_rate and rng.random() < plan.transient_rate:
            return "transient"
        return None

    def before_apply(self, index: int, event: Event) -> None:
        """Consulted by the supervisor before each application attempt.

        Raises the scheduled fault, if any.  A crash fires only on the
        first attempt for its index (a restarted process does not re-die
        at the same instruction); a transient fault fires for the first
        ``transient_attempts`` attempts; poison fires always.
        """
        attempt = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempt
        fault = self.fault_at(index)
        if fault == "crash" and not self._crashed_at.get(index):
            self._crashed_at[index] = True
            raise CrashFault(f"injected crash before event {index} ({event.rule.name})")
        if fault == "poison":
            raise InjectedChaseFailure(
                f"injected persistent chase failure at event {index} ({event.rule.name})"
            )
        if fault == "transient" and attempt <= self.plan.transient_attempts:
            raise TransientFault(
                f"injected transient fault at event {index}, attempt {attempt}"
            )


# ----------------------------------------------------------------------
# Disk faults (consulted by the storage backends of repro.storage)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskFaultPlan:
    """The knobs of deterministic disk-fault injection.

    Rates are per *storage operation* probabilities: ``short_write_rate``
    (write only a prefix of the record, then fail), ``corrupt_rate``
    (write the record with flipped bytes, then fail), ``enospc_rate``
    (fail before writing anything — a full disk), all drawn per append;
    ``fsync_failure_rate`` is drawn per fsync.  ``fail_at_append``
    forces a deterministic short write at that append index — the
    precision tool for torn-write tests.  Like :class:`FaultPlan`, the
    schedule is a pure function of ``(seed, operation index)``.
    """

    seed: int = 0
    short_write_rate: float = 0.0
    corrupt_rate: float = 0.0
    enospc_rate: float = 0.0
    fsync_failure_rate: float = 0.0
    fail_at_append: Optional[int] = None

    @property
    def any_rate(self) -> bool:
        return bool(
            self.short_write_rate
            or self.corrupt_rate
            or self.enospc_rate
            or self.fsync_failure_rate
            or self.fail_at_append is not None
        )


class DiskFaultInjector:
    """Schedules :class:`DiskFault`\\ s per a :class:`DiskFaultPlan`.

    The storage backend consults :meth:`on_append` before each record
    write and :meth:`on_fsync` before each fsync; a returned fault shape
    tells the backend what damage to model before raising.  Each
    operation index draws from its own :class:`random.Random`, so the
    schedule does not depend on retries or recovery order.
    """

    def __init__(self, plan: DiskFaultPlan) -> None:
        self.plan = plan
        self.appends = 0
        self.fsyncs = 0
        self.injected: Dict[str, int] = {}

    def _record(self, kind: Optional[str]) -> Optional[str]:
        if kind is not None:
            self.injected[kind] = self.injected.get(kind, 0) + 1
        return kind

    def append_fault_at(self, index: int) -> Optional[str]:
        """The scheduled append-fault shape at *index* (pure in seed, index)."""
        plan = self.plan
        if plan.fail_at_append is not None and index == plan.fail_at_append:
            return "short_write"
        rng = random.Random(f"disk:{plan.seed}:append:{index}")
        if plan.enospc_rate and rng.random() < plan.enospc_rate:
            return "enospc"
        if plan.short_write_rate and rng.random() < plan.short_write_rate:
            return "short_write"
        if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
            return "corrupt"
        return None

    def fsync_fault_at(self, index: int) -> bool:
        plan = self.plan
        rng = random.Random(f"disk:{plan.seed}:fsync:{index}")
        return bool(
            plan.fsync_failure_rate and rng.random() < plan.fsync_failure_rate
        )

    def on_append(self) -> Optional[str]:
        """Consume one append slot; the fault shape to model, if any."""
        index = self.appends
        self.appends += 1
        return self._record(self.append_fault_at(index))

    def on_fsync(self) -> bool:
        """Consume one fsync slot; True when this fsync must fail."""
        index = self.fsyncs
        self.fsyncs += 1
        failed = self.fsync_fault_at(index)
        if failed:
            self._record("fsync")
        return failed
