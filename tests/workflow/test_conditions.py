"""Tests for selection conditions and canonical-tuple enumeration."""

import pytest

from repro.workflow.conditions import (
    FALSE,
    TRUE,
    And,
    AttrEq,
    Condition,
    Eq,
    Not,
    Or,
    canonical_tuples,
    condition_satisfiable,
    conjunction,
    disjunction,
)
from repro.workflow.domain import NULL
from repro.workflow.tuples import Tuple

ATTRS = ("K", "A", "B")


def t(k, a, b):
    return Tuple(ATTRS, (k, a, b))


class TestElementary:
    def test_eq_constant(self):
        assert Eq("A", "x").evaluate(t(1, "x", 2))
        assert not Eq("A", "x").evaluate(t(1, "y", 2))

    def test_eq_null(self):
        assert Eq("A", NULL).evaluate(t(1, NULL, 2))
        assert not Eq("A", NULL).evaluate(t(1, "x", 2))

    def test_attr_eq(self):
        assert AttrEq("A", "B").evaluate(t(1, "x", "x"))
        assert not AttrEq("A", "B").evaluate(t(1, "x", "y"))

    def test_attr_eq_nulls(self):
        assert AttrEq("A", "B").evaluate(t(1, NULL, NULL))
        assert not AttrEq("A", "B").evaluate(t(1, NULL, "x"))

    def test_attributes_and_constants(self):
        assert Eq("A", "x").attributes() == {"A"}
        assert Eq("A", "x").constants() == {"x"}
        assert Eq("A", NULL).constants() == frozenset()
        assert AttrEq("A", "B").attributes() == {"A", "B"}


class TestBooleanCombinations:
    def test_true_false(self):
        assert TRUE.evaluate(t(1, 2, 3))
        assert not FALSE.evaluate(t(1, 2, 3))

    def test_not(self):
        assert Not(Eq("A", "x")).evaluate(t(1, "y", 2))
        assert (~Eq("A", "x")).evaluate(t(1, "y", 2))

    def test_and_or_operators(self):
        cond = Eq("A", "x") & Eq("B", "y")
        assert cond.evaluate(t(1, "x", "y"))
        assert not cond.evaluate(t(1, "x", "z"))
        cond = Eq("A", "x") | Eq("B", "y")
        assert cond.evaluate(t(1, "z", "y"))
        assert not cond.evaluate(t(1, "z", "z"))

    def test_empty_combinators(self):
        assert And(()).evaluate(t(1, 2, 3))
        assert not Or(()).evaluate(t(1, 2, 3))

    def test_conjunction_disjunction_helpers(self):
        assert conjunction([]) is TRUE
        assert disjunction([]) is FALSE
        single = Eq("A", 1)
        assert conjunction([single]) is single
        assert disjunction([single]) is single

    def test_nested_attributes(self):
        cond = (Eq("A", "x") & AttrEq("A", "B")) | Not(Eq("B", "z"))
        assert cond.attributes() == {"A", "B"}
        assert cond.constants() == {"x", "z"}

    def test_equality_and_hash(self):
        assert Eq("A", 1) == Eq("A", 1)
        assert Eq("A", 1) != Eq("A", 2)
        assert And((Eq("A", 1), TRUE)) == And((Eq("A", 1), TRUE))
        assert len({Eq("A", 1), Eq("A", 1)}) == 1


class TestCanonicalTuples:
    def test_no_null_keys(self):
        for tup in canonical_tuples(ATTRS, [Eq("A", "x")], "K"):
            assert tup["K"] is not NULL

    def test_covers_constants(self):
        seen_a = {tup["A"] for tup in canonical_tuples(ATTRS, [Eq("A", "x")], "K")}
        assert "x" in seen_a
        assert NULL in seen_a

    def test_realises_attribute_equality(self):
        assert any(
            AttrEq("A", "B").evaluate(tup) and tup["A"] is not NULL
            for tup in canonical_tuples(ATTRS, [], "K")
        )


class TestSatisfiability:
    def test_satisfiable(self):
        assert condition_satisfiable(Eq("A", "x"), ATTRS, "K")
        assert condition_satisfiable(AttrEq("A", "B") & ~Eq("A", NULL), ATTRS, "K")

    def test_unsatisfiable(self):
        assert not condition_satisfiable(Eq("A", "x") & Eq("A", "y"), ATTRS, "K")
        assert not condition_satisfiable(Eq("A", "x") & ~Eq("A", "x"), ATTRS, "K")
        assert not condition_satisfiable(FALSE, ATTRS, "K")

    def test_null_key_unsatisfiable(self):
        assert not condition_satisfiable(Eq("K", NULL), ATTRS, "K")

    def test_context_constants_matter(self):
        # "A != x" is satisfiable even when "x" is the only constant around.
        assert condition_satisfiable(~Eq("A", "x"), ATTRS, "K", [Eq("A", "x")])
