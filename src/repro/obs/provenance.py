"""Per-run provenance: which events touched which tuples and peer views.

ProvDB-style lifecycle provenance for hosted runs: every applied event
leaves one :class:`ProvenanceRecord` — its sequence number, rule, acting
peer, the ``(relation, key)`` pairs its transition touched (read off the
transition's :class:`~repro.dataflow.delta.Delta`, so recording is
O(|delta|)), and the peers whose views the transition changed.  The log
is queryable in both directions:

* :meth:`ProvenanceLog.events_touching` — "which events wrote this
  tuple?" (key-level provenance of the current database state);
* :meth:`ProvenanceLog.events_visible_to` — "which events changed what
  this peer sees?" (view-level provenance).

The paper's explanations are provenance queries over exactly this
structure: a scenario is a set of event positions, and citing each
position's record grounds the explanation in what the system *recorded*
happening rather than a replay.  The service's ``explain`` op attaches
these citations; the ``provenance`` op exposes the queries directly.

The module is dependency-free: deltas are consumed through their
``touched()`` accessor (or, failing that, their ``changes`` mapping —
relation -> key -> (before, after)) without importing the dataflow
layer, so the log can also archive spans or journal entries from other
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["ProvenanceLog", "ProvenanceRecord"]


@dataclass(frozen=True)
class ProvenanceRecord:
    """What one applied event touched, as recorded at application time."""

    seq: int
    rule: str
    peer: str
    #: ``(relation, key, action)`` triples; action is ``insert``,
    #: ``delete`` or ``update`` (a chase merge rewriting an existing key).
    touched: Tuple[Tuple[str, Any, str], ...]
    #: Peers whose view the transition changed (always includes any peer
    #: that observed the event as visible).
    visible_to: Tuple[str, ...]
    #: The id of the tracing span that covered the application, when
    #: tracing was on — lets a provenance answer link back to timings.
    span_id: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "rule": self.rule,
            "peer": self.peer,
            "touched": [
                {"relation": relation, "key": _jsonable(key), "action": action}
                for relation, key, action in self.touched
            ],
            "visible_to": list(self.visible_to),
            **({"span_id": self.span_id} if self.span_id is not None else {}),
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _touched_from_delta(delta: Any) -> Tuple[Tuple[str, Any, str], ...]:
    """``(relation, key, action)`` triples from a delta-shaped object.

    A :class:`~repro.dataflow.delta.Delta` (or a graph effect wrapping
    one) answers through its ``touched()`` accessor; any other object
    with a ``changes`` mapping is derived the long way, so stand-ins
    and archived journal shapes keep working.
    """
    touched_accessor = getattr(delta, "touched", None)
    if callable(touched_accessor):
        return tuple(touched_accessor())
    touched: List[Tuple[str, Any, str]] = []
    for relation, keys in delta.changes.items():
        for key, (before, after) in keys.items():
            if before is None:
                action = "insert"
            elif after is None:
                action = "delete"
            else:
                action = "update"
            touched.append((relation, key, action))
    touched.sort(key=lambda t: (t[0], repr(t[1])))
    return tuple(touched)


class ProvenanceLog:
    """The append-only provenance log of one run.

    Indexed on append: key-level lookups (:meth:`events_touching`) and
    view-level lookups (:meth:`events_visible_to`) are O(answer), not
    O(run length).
    """

    def __init__(self, run_id: str = "") -> None:
        self.run_id = run_id
        self._records: List[ProvenanceRecord] = []
        #: (relation, repr(key)) -> seqs that touched it, in order.
        self._by_key: Dict[Tuple[str, str], List[int]] = {}
        #: relation -> seqs that touched it, in order.
        self._by_relation: Dict[str, List[int]] = {}
        #: peer -> seqs visible to it, in order.
        self._by_peer: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        seq: int,
        rule: str,
        peer: str,
        delta: Any,
        visible_to: Iterable[str],
        span_id: Optional[int] = None,
    ) -> ProvenanceRecord:
        """Append the provenance of one applied event.

        *delta* is anything with a ``touched()`` accessor or a
        delta-shaped ``changes`` mapping;
        *visible_to* are the peers whose views the transition changed
        (the acting peer should be included by the caller when its event
        is visible-by-definition).
        """
        record = ProvenanceRecord(
            seq=seq,
            rule=rule,
            peer=peer,
            touched=_touched_from_delta(delta),
            visible_to=tuple(sorted(set(visible_to))),
            span_id=span_id,
        )
        self._records.append(record)
        for relation, key, _action in record.touched:
            self._by_key.setdefault((relation, repr(key)), []).append(seq)
            by_rel = self._by_relation.setdefault(relation, [])
            if not by_rel or by_rel[-1] != seq:
                by_rel.append(seq)
        for observer in record.visible_to:
            self._by_peer.setdefault(observer, []).append(seq)
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[ProvenanceRecord, ...]:
        return tuple(self._records)

    def get(self, seq: int) -> Optional[ProvenanceRecord]:
        """The record with sequence number *seq* (None when unknown)."""
        for record in self._records:
            if record.seq == seq:
                return record
        return None

    def events_touching(
        self, relation: str, key: Any = None
    ) -> Tuple[int, ...]:
        """Seqs of events that touched *relation* (or one of its keys)."""
        if key is None:
            return tuple(self._by_relation.get(relation, ()))
        return tuple(self._by_key.get((relation, repr(key)), ()))

    def events_visible_to(self, peer: str) -> Tuple[int, ...]:
        """Seqs of events that changed *peer*'s view."""
        return tuple(self._by_peer.get(peer, ()))

    def citations(self, seqs: Iterable[int]) -> List[Dict[str, Any]]:
        """The records for *seqs* as dicts (for explain responses).

        Unknown seqs are skipped — a scenario computed on a recovered
        run may cite positions the in-memory log never saw.
        """
        wanted = set(seqs)
        return [
            record.to_dict() for record in self._records if record.seq in wanted
        ]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self._records]
