"""The JSON-lines wire protocol of the workflow service.

One request per line, one response per line, both JSON objects.  Every
request carries an ``op`` and an optional client-chosen ``id`` that the
response echoes (so clients may pipeline).  Success responses have
``"ok": true``; failures have ``"ok": false`` plus ``error`` (a stable
machine-readable code) and ``message``.

Operations
----------

``open``      ``{"op": "open", "run": <id>}`` — host a run (recovering
              it from its journal when one exists).  Response:
              ``{"ok": true, "run": ..., "recovered": bool,
              "applied": int}``.
``submit``    ``{"op": "submit", "run": <id>, "event": {"rule": name,
              "valuation": {...}}}`` — the event encoding of
              :func:`repro.workflow.serialization.event_to_dict`.
              Response carries ``status`` (``applied`` / ``quarantined``
              / ``rejected_backpressure`` / ``rejected_budget``),
              ``seq``, ``attempts``, ``recovered`` and the acting
              peer's post-event view ``version``.
``view``      ``{"op": "view", "run": <id>, "peer": p}`` — the peer's
              materialized view instance and its ``version``.
``explain``   ``{"op": "explain", "run": <id>, "peer": p,
              "index": i?}`` — the minimal p-faithful scenario of the
              hosted run (or of one event when ``index`` given), served
              by the per-(run, peer) incremental explainer.
``applicable`` ``{"op": "applicable", "run": <id>, "peer": p?}`` — the
              events currently applicable at the run's instance (for
              one peer when ``peer`` given), served by the run's
              delta-maintained applicable-event index.  Response:
              ``{"ok": true, "run": ..., "applied": int, "count": int,
              "events": [{"rule": ..., "valuation": {...}}, ...]}``.
``stats``     ``{"op": "stats", "run": <id>?}`` — service-wide or
              per-run counters (including the process-wide query
              evaluation counters under ``queries``).
``metrics``   ``{"op": "metrics"}`` — the process-wide metrics registry
              rendered as Prometheus text exposition format (version
              0.0.4) in the response's ``text`` field, plus the
              structured ``snapshot``.
``provenance`` ``{"op": "provenance", "run": <id>, "relation": R?,
              "key": k?, "peer": p?}`` — provenance queries over the
              hosted run's per-event provenance log: which events
              touched relation ``R`` (or its key ``k``), or which
              events changed peer ``p``'s view.  Without a filter the
              whole log is returned under ``records``.
``close``     ``{"op": "close", "run": <id>}`` — stop hosting, sealing
              the journal with status ``completed``.
``shutdown``  ``{"op": "shutdown"}`` — drain and stop the server.
``ping``      liveness probe.

Versioning
----------

Every response envelope carries ``"protocol": PROTOCOL_VERSION``.
Requests *may* carry a ``protocol`` field; the server rejects requests
that demand a newer protocol than it speaks (``ProtocolError``), and
ignores older ones — version 2 is a strict superset of version 1.

Error codes
-----------

The machine-readable ``error`` codes of failure responses are the keys
of :data:`repro.service.errors.ERROR_CODES` — the single registry the
server, this documentation and the load generator share.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple as PyTuple

from .errors import ProtocolError

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "decode_line",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
]

#: Version 2 added the ``metrics`` and ``provenance`` ops and the
#: ``protocol`` field on every response envelope.
PROTOCOL_VERSION = 2

#: Every operation the server understands.
OPS = (
    "open",
    "submit",
    "view",
    "explain",
    "applicable",
    "stats",
    "metrics",
    "provenance",
    "close",
    "shutdown",
    "ping",
)

#: Ops that must name a run.
_RUN_OPS = frozenset(
    {"open", "submit", "view", "explain", "applicable", "provenance", "close"}
)
#: Ops that must name a peer.
_PEER_OPS = frozenset({"view", "explain"})


def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (UTF-8, newline-terminated)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict or raise :class:`ProtocolError`."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message


def parse_request(message: Dict[str, Any]) -> PyTuple[str, Dict[str, Any]]:
    """Validate a request message; returns ``(op, message)``.

    Checks the op is known and that run/peer are present where the op
    requires them, so handlers can assume a well-formed request.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    requested = message.get("protocol")
    if requested is not None:
        if not isinstance(requested, int):
            raise ProtocolError("the 'protocol' field must be an integer")
        if requested > PROTOCOL_VERSION:
            raise ProtocolError(
                f"request demands protocol {requested}, "
                f"server speaks {PROTOCOL_VERSION}"
            )
    if op in _RUN_OPS and not isinstance(message.get("run"), str):
        raise ProtocolError(f"op {op!r} requires a string 'run' field")
    if op in _PEER_OPS and not isinstance(message.get("peer"), str):
        raise ProtocolError(f"op {op!r} requires a string 'peer' field")
    if op == "submit" and not isinstance(message.get("event"), dict):
        raise ProtocolError("op 'submit' requires an 'event' object")
    return op, message


def ok_response(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "protocol": PROTOCOL_VERSION, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id: Optional[Any], code: str, message: str
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": code,
        "message": message,
    }
    if request_id is not None:
        response["id"] = request_id
    return response
