"""Sharded registry of hosted runs over pluggable storage.

The registry is the service's ownership map: every hosted run — one
live instance of the collaborative workflow model, with its journal,
its materialized peer views and its lazily-wired explainers — lives in
exactly one of N shards, selected by a stable hash of the run id.
Shards serialize their structural mutations (open/close/lookup) behind
per-shard :class:`asyncio.Lock`\\ s so thousands of runs can be hosted
without a global bottleneck; the *per-run* event order is enforced one
level up by the broker's per-run mailboxes.

Durability is delegated to a :class:`~repro.storage.StorageBackend`:
every hosted run appends its begin/event/snapshot/quarantine/end
records through a :class:`~repro.storage.RecordJournal`, and opening a
run id whose records already exist *recovers* it — via
:func:`repro.runtime.checkpoint.fast_recover`, so the engine replays
only the events since the last checkpoint regardless of run length.
The default backend keeps records in memory (the pre-storage
semantics: nothing touches disk, a process death loses unjournaled
runs); ``journal_dir=`` selects the legacy flat-file layout; segment
and sqlite backends add CRC framing, torn-write recovery and injected
disk-fault tolerance (see ``docs/STORAGE.md``).

Because every hosted run has a record history, the registry can also
bound its resident set: with ``max_resident=N``, the least-recently
used runs beyond N are *evicted* — their RAM-heavy live state (the
instance, the view caches, the explainers) dropped after a final
snapshot — and transparently *rehydrated* from their records on next
access.  Evicted runs stay addressable: ``get``/``close``/``submit``
on them work unchanged, just with a one-time O(events since last
snapshot) rehydration cost.
"""

from __future__ import annotations

import asyncio
import weakref
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple as PyTuple, Union

from ..core.incremental import IncrementalExplainer
from ..obs.metrics import METRICS
from ..obs.provenance import ProvenanceLog
from ..obs.trace import current_span_id
from ..runtime.checkpoint import fast_recover
from ..runtime.faults import DiskFault
from ..runtime.journal import JournalWriter, end_record
from ..storage.backend import (
    FileBackend,
    MemoryBackend,
    RecordJournal,
    StorageBackend,
    open_backend,
)
from ..dataflow.delta import Delta
from ..dataflow.graph import DeltaEffect, DeltaGraph
from ..workflow.engine import apply_event_with_delta, apply_events
from ..workflow.errors import EventError
from ..workflow.eventindex import ApplicableEventIndex
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .errors import DuplicateRunError, ServiceError, UnknownRunError
from .viewcache import ViewCacheSet

__all__ = ["HostedRun", "ShardedRunRegistry"]

_VIEW_READS = METRICS.counter(
    "repro_registry_view_reads_total",
    "Peer-view reads served, by source (cached / recomputed)",
    labelnames=("source",),
)
_VIEW_READS_CACHED = _VIEW_READS.labels(source="cached")
_VIEW_READS_RECOMPUTED = _VIEW_READS.labels(source="recomputed")
_RECOVERIES = METRICS.counter(
    "repro_registry_recoveries_total",
    "Runs recovered by replaying their journal",
)
_EVICTIONS = METRICS.counter(
    "repro_registry_evictions_total",
    "Idle hosted runs evicted to their record store (LRU, max_resident)",
)
_REHYDRATIONS = METRICS.counter(
    "repro_registry_rehydrations_total",
    "Evicted runs transparently rehydrated from their record store",
)

#: Live registries, tracked weakly so the hosted-runs gauge can be
#: collected at scrape time without keeping closed services alive.
_live_registries: "weakref.WeakSet[ShardedRunRegistry]" = weakref.WeakSet()


def _collect_registry_gauges(metrics) -> None:
    gauge = metrics.gauge(
        "repro_registry_hosted_runs",
        "Runs currently hosted, summed over live registries",
    )
    gauge.set(sum(registry.hosted_count() for registry in _live_registries))
    resident = metrics.gauge(
        "repro_registry_resident_runs",
        "Hosted runs currently resident in memory (not evicted)",
    )
    resident.set(sum(registry.resident_count() for registry in _live_registries))


METRICS.register_collector(_collect_registry_gauges)


class HostedRun:
    """One live run hosted by the service.

    Holds the current global instance, the applied event log (events
    determine runs, so this is enough to rebuild anything), the run's
    journal writer, the per-run :class:`~repro.dataflow.graph.DeltaGraph`
    that fans each transition's delta out to every derived artifact —
    the delta-maintained view caches and the provenance recorder are its
    subscribers, the applicable-event index consumes its effects — and
    one :class:`~repro.core.incremental.IncrementalExplainer` per peer
    that has asked for explanations, extended in lockstep with the run
    so explanation queries never replay.
    """

    def __init__(
        self,
        run_id: str,
        program: WorkflowProgram,
        initial: Instance,
        instance: Optional[Instance] = None,
        events: Optional[List[Event]] = None,
        journal: Union[JournalWriter, RecordJournal, None] = None,
        journal_file: Optional[Path] = None,
        cache_views: bool = True,
    ) -> None:
        self.run_id = run_id
        self.program = program
        self.initial = initial
        self.instance = instance if instance is not None else initial
        self.events: List[Event] = list(events or [])
        self.journal = journal
        self.journal_file = journal_file
        self.caches: Optional[ViewCacheSet] = (
            ViewCacheSet(program.schema, self.instance) if cache_views else None
        )
        #: The run's dataflow graph: one fused observation pass per
        #: event, fanned out to every subscriber.
        self.dataflow = DeltaGraph(program.schema, self.instance)
        if self.caches is not None:
            self.dataflow.subscribe(self.caches.apply_delta, name="viewcache")
        self.dataflow.subscribe(self._record_provenance, name="provenance")
        self._explainers: Dict[str, IncrementalExplainer] = {}
        self._event_index: Optional[ApplicableEventIndex] = None
        self.submitted = len(self.events)
        self.quarantined = 0
        self.recoveries = 0
        #: Warnings surfaced while reading this run's records back
        #: (torn trailing records truncated away, etc.).
        self.recovery_warnings: List[str] = []
        #: Per-event provenance, recorded at application time.  A run
        #: constructed over an existing event history (recovery,
        #: rehydration, a promoted replica) starts with a log missing
        #: that prefix; :meth:`provenance_log` rebuilds it by replay on
        #: first read, so provenance answers are identical whether the
        #: run lived in one process or was recovered — events determine
        #: runs, and they determine provenance too.
        self.provenance = ProvenanceLog(run_id)
        self._provenance_complete = not self.events

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    @property
    def applied(self) -> int:
        return len(self.events)

    def _record_provenance(self, effect: DeltaEffect) -> None:
        """Provenance as a dataflow subscriber: one record per pushed event.

        Reads the application context (``seq``, ``event``, ``span_id``)
        off the effect; pushes without an event context (none today)
        record nothing.  The changed peers come from the graph's fused
        observation pass, so recording is exact whether or not the run
        materializes view caches.
        """
        event = effect.context.get("event")
        if event is None:
            return
        visible_to = set(effect.changed_peers)
        visible_to.add(event.peer)
        self.provenance.record(
            effect.context["seq"],
            event.rule.name,
            event.peer,
            effect,
            visible_to,
            span_id=effect.context.get("span_id"),
        )

    def apply(self, event: Event) -> PyTuple[int, DeltaEffect]:
        """Apply one event; journal it; push its delta through the graph.

        Returns ``(seq, effect)`` where *seq* is the event's position in
        the run and *effect* the :class:`~repro.dataflow.graph.DeltaEffect`
        of the push (it exposes the full delta surface).  The push
        refreshes every subscriber — view caches, provenance — in one
        O(|delta|) pass; the applicable-event index and the explainers
        advance right after.  Raises the engine's :class:`EventError`/
        :class:`ChaseFailure` unchanged when the event does not apply —
        classification (retry/quarantine) is the broker's job.  A
        :class:`~repro.runtime.faults.DiskFault` from the journal also
        propagates *before* any in-memory state changes: the event was
        not acknowledged and a retry observes a self-healed store.
        """
        result, delta = apply_event_with_delta(
            self.program.schema, self.instance, event, forbidden_fresh=None
        )
        seq = len(self.events)
        if self.journal is not None:
            self.journal.record_event(seq, event, result)
        self.instance = result
        self.events.append(event)
        effect = self.dataflow.push(
            delta, seq=seq, event=event, span_id=current_span_id()
        )
        if self._event_index is not None:
            self._event_index.advance(effect, result)
        for explainer in self._explainers.values():
            explainer.extend(event)
        return seq, effect

    def apply_batch(
        self, events: List[Event]
    ) -> List[PyTuple[int, DeltaEffect, int]]:
        """Apply a batch of events, amortizing per-event overhead.

        Returns one ``(seq, effect, version)`` triple per applied event,
        where *version* is the acting peer's view version immediately
        after that event (what a one-at-a-time drain would have acked).

        Observable-state-equivalent to folding :meth:`apply`: the
        journal receives the same per-event records and cadence
        snapshots, each event's delta is pushed through the dataflow
        graph (so cache versions and provenance advance identically),
        and the same citations are recorded.  What the batch amortizes
        is the per-event tracing span
        (:func:`~repro.workflow.engine.apply_events`) and the
        applicable-event index's stale-rule sweep
        (:meth:`~repro.workflow.eventindex.ApplicableEventIndex.advance_many`).

        Failure semantics match the sequential fold: on an
        :class:`EventError` (bad event) or a journal
        :class:`~repro.runtime.faults.DiskFault`, everything *before*
        the failing event is committed — journaled, cached, recorded —
        and the error is re-raised, leaving the failing event and its
        successors unapplied and unacknowledged.
        """
        if not events:
            return []
        error: Optional[BaseException] = None
        try:
            pairs = apply_events(
                self.program.schema, self.instance, events, forbidden_fresh=None
            )
        except EventError as exc:
            pairs = list(getattr(exc, "batch_prefix", ()))
            error = exc
        results: List[PyTuple[int, DeltaEffect, int]] = []
        committed: List[PyTuple[DeltaEffect, Instance]] = []
        span_id = current_span_id()
        try:
            for event, (result, delta) in zip(events, pairs):
                seq = len(self.events)
                if self.journal is not None:
                    # A DiskFault here aborts the loop: this event and
                    # the rest of the batch stay unacknowledged, the
                    # committed prefix matches the journaled prefix.
                    self.journal.record_event(seq, event, result)
                self.instance = result
                self.events.append(event)
                effect = self.dataflow.push(
                    delta, seq=seq, event=event, span_id=span_id
                )
                for explainer in self._explainers.values():
                    explainer.extend(event)
                committed.append((effect, result))
                results.append((seq, effect, self.view_version(event.peer)))
        except BaseException as exc:
            # The committed prefix's acks still need per-event versions;
            # hand them to the broker on the error, mirroring the
            # batch_prefix convention of apply_events.
            exc.batch_results = results
            raise
        finally:
            if self._event_index is not None and committed:
                self._event_index.advance_many(committed)
        if error is not None:
            error.batch_results = results
            raise error
        return results

    def provenance_log(self) -> ProvenanceLog:
        """The run's provenance log, complete over its full history.

        A run hosted over pre-existing events (recovery, rehydration, a
        promoted replica) is missing the provenance of that prefix; the
        first read replays the event history through a fresh
        :class:`~repro.dataflow.graph.DeltaGraph` — the same fused
        observation pass :meth:`apply` records with — so the rebuilt
        records equal what live recording would have produced.  Span
        ids are the one exception: they capture which tracing span
        covered the original application, which a replay cannot
        recover, so a rebuilt log carries none.
        """
        if not self._provenance_complete:
            log = ProvenanceLog(self.run_id)
            instance = self.initial
            graph = DeltaGraph(self.program.schema, instance)
            for seq, event in enumerate(self.events):
                instance, delta = apply_event_with_delta(
                    self.program.schema, instance, event, forbidden_fresh=None
                )
                effect = graph.push(delta)
                visible_to = set(effect.changed_peers)
                visible_to.add(event.peer)
                log.record(seq, event.rule.name, event.peer, effect, visible_to)
            self.provenance = log
            self._provenance_complete = True
        return self.provenance

    def record_quarantine(self, event: Event, error: str, attempts: int) -> None:
        self.quarantined += 1
        if self.journal is not None:
            try:
                self.journal.quarantine(len(self.events), event, error, attempts)
            except DiskFault:
                # Quarantine records are best-effort evidence: the event
                # is already rejected either way, and the store
                # self-heals on its next append.
                pass

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def view_instance(self, peer: str) -> Instance:
        """``I@p`` of the current instance — O(|delta|)-fresh when cached."""
        if self.caches is not None:
            _VIEW_READS_CACHED.inc()
            return self.caches.peer(peer).instance()
        _VIEW_READS_RECOMPUTED.inc()
        return self.program.schema.view_instance(self.instance, peer)

    def view_version(self, peer: str) -> int:
        if self.caches is not None:
            return self.caches.peer(peer).version
        return len(self.events)

    def event_index(self) -> ApplicableEventIndex:
        """The run's applicable-event index, created (and kept) lazily.

        The first call pays one full per-peer view computation; every
        applied event thereafter advances the index in O(|delta|), so
        repeated ``applicable`` queries re-evaluate only the rules the
        traffic actually touches.
        """
        if self._event_index is None:
            self._event_index = ApplicableEventIndex(self.program, self.instance)
        return self._event_index

    def applicable(self, peer: Optional[str] = None) -> List[Event]:
        """The events currently applicable (optionally for one peer)."""
        events = self.event_index().events()
        if peer is None:
            return list(events)
        return [event for event in events if event.peer == peer]

    def explainer(self, peer: str) -> IncrementalExplainer:
        """The peer's incremental explainer, created (and caught up) lazily.

        The first explanation query for a (run, peer) pays one replay of
        the event log; every later query is served from the maintained
        closure state without replay.
        """
        explainer = self._explainers.get(peer)
        if explainer is None:
            explainer = IncrementalExplainer(self.program, peer, initial=self.initial)
            for event in self.events:
                explainer.extend(event)
            self._explainers[peer] = explainer
        return explainer

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "run_id": self.run_id,
            "applied": self.applied,
            "submitted": self.submitted,
            "quarantined": self.quarantined,
            "recoveries": self.recoveries,
            "instance_tuples": self.instance.size(),
            "explainers": sorted(self._explainers),
            "view_versions": dict(self.caches.versions()) if self.caches else {},
            "dataflow": self.dataflow.stats(),
        }
        if self.recovery_warnings:
            out["recovery_warnings"] = list(self.recovery_warnings)
        return out


@dataclass
class _Shard:
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    runs: Dict[str, HostedRun] = field(default_factory=dict)


@dataclass
class _EvictedRun:
    """The counters an evicted run carries while its state lives on disk."""

    submitted: int
    quarantined: int
    recoveries: int
    dataflow_pushes: int


class ShardedRunRegistry:
    """Run-id → :class:`HostedRun` across N lock-guarded shards."""

    def __init__(
        self,
        program: WorkflowProgram,
        shards: int = 8,
        journal_dir: Optional[Path] = None,
        snapshot_every: Optional[int] = 10,
        cache_views: bool = True,
        storage: Union[str, StorageBackend, None] = None,
        max_resident: Optional[int] = None,
        compact_every: int = 4,
    ) -> None:
        if shards < 1:
            raise ServiceError("registry needs at least one shard")
        if storage is not None and journal_dir is not None:
            raise ServiceError("pass either storage= or journal_dir=, not both")
        if max_resident is not None and max_resident < 1:
            raise ServiceError("max_resident must be at least 1")
        self.program = program
        if storage is None:
            backend: StorageBackend = (
                FileBackend(journal_dir) if journal_dir is not None else MemoryBackend()
            )
        elif isinstance(storage, str):
            backend = open_backend(storage)
        else:
            backend = storage
        self.storage = backend
        # Kept for stats/back-compat: the flat journal directory when
        # the backend is (or was built from) one.
        self.journal_dir = (
            Path(backend.root) if isinstance(backend, FileBackend) else None
        )
        self.snapshot_every = snapshot_every
        self.cache_views = cache_views
        self.max_resident = max_resident
        self.compact_every = compact_every
        self._shards: List[_Shard] = [_Shard() for _ in range(shards)]
        self._evicted: Dict[str, _EvictedRun] = {}
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self.recoveries = 0
        self.evictions = 0
        self.rehydrations = 0
        _live_registries.add(self)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, run_id: str) -> int:
        """Stable shard assignment (crc32, not the salted builtin hash)."""
        return zlib.crc32(run_id.encode("utf-8")) % len(self._shards)

    def _shard(self, run_id: str) -> _Shard:
        return self._shards[self.shard_index(run_id)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def open(
        self,
        run_id: str,
        initial: Optional[Instance] = None,
        recover: bool = True,
    ) -> PyTuple[HostedRun, bool]:
        """Host *run_id*, recovering it from its records if any exist.

        Returns ``(hosted, recovered)``.  Opening an id that is already
        hosted (resident or evicted) raises :class:`DuplicateRunError`;
        opening an id whose records exist replays them
        (``recover=True``) or refuses (``recover=False``) — it never
        silently truncates durable state.
        """
        shard = self._shard(run_id)
        async with shard.lock:
            if run_id in shard.runs or run_id in self._evicted:
                raise DuplicateRunError(f"run {run_id!r} is already hosted")
            hosted = self._materialize(run_id, initial)
            shard.runs[run_id] = hosted
            recovered = hosted.recoveries > 0
            if not recover and recovered:
                del shard.runs[run_id]
                if hosted.journal is not None:
                    hosted.journal.close()
                raise ServiceError(
                    f"run {run_id!r} has records at "
                    f"{hosted.journal_file or self.storage.name}; "
                    "open with recovery or choose a new id"
                )
            if recovered:
                self.recoveries += 1
                _RECOVERIES.inc()
            self._touch(run_id)
            self._maybe_evict(protect=run_id)
            return hosted, recovered

    def _materialize(self, run_id: str, initial: Optional[Instance]) -> HostedRun:
        start = (
            initial
            if initial is not None
            else Instance.empty(self.program.schema.schema)
        )
        backend = self.storage
        if backend.exists(run_id):
            store = backend.store(run_id)
            try:
                records, warnings = store.read()
                resumed = fast_recover(self.program, records)
            except Exception:
                store.close()
                raise
            journal = RecordJournal(
                store,
                snapshot_every=self.snapshot_every,
                compact_every=self.compact_every,
            )
            has_snapshot = any(r.get("type") == "snapshot" for r in records)
            journal.resume(
                len(resumed.events),
                resumed.snapshot_position if has_snapshot else None,
            )
            hosted = HostedRun(
                run_id,
                self.program,
                resumed.initial,
                instance=resumed.instance,
                events=resumed.events,
                journal=journal,
                journal_file=store.path,
                cache_views=self.cache_views,
            )
            hosted.recoveries = 1
            hosted.quarantined = len(resumed.quarantined)
            hosted.recovery_warnings = list(warnings)
            if hosted.caches is not None:
                # The rebuilt caches saw one rebuild; a resident run
                # would have seen the initial rebuild plus one delta per
                # event.  Fast-forward so versions never run backwards
                # across eviction/rehydration.
                hosted.caches.fast_forward(len(resumed.events) + 1)
            return hosted
        store = backend.store(run_id)
        journal = RecordJournal(
            store,
            snapshot_every=self.snapshot_every,
            compact_every=self.compact_every,
        )
        # Disk faults are self-healing (the torn record is repaired on
        # the next append), so a failed begin write is retried before
        # the open is refused.
        for attempt in range(3):
            try:
                journal.begin(start, meta={"run_id": run_id})
                break
            except DiskFault:
                if attempt == 2:
                    raise
        return HostedRun(
            run_id,
            self.program,
            start,
            journal=journal,
            journal_file=store.path,
            cache_views=self.cache_views,
        )

    async def get(self, run_id: str) -> HostedRun:
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.get(run_id)
            if hosted is None and run_id in self._evicted:
                hosted = self._rehydrate(run_id, shard)
                self._maybe_evict(protect=run_id)
            elif hosted is not None:
                self._touch(run_id)
        if hosted is None:
            raise UnknownRunError(f"run {run_id!r} is not hosted")
        return hosted

    @staticmethod
    def _seal(emit, attempts: int = 3) -> None:
        """Run a sealing write, retrying through self-healing disk faults.

        A :class:`DiskFault` means the record was not acknowledged and
        the store repairs itself on the next append, so retrying is
        safe; a duplicate ``end`` record from a sync-failed-after-append
        race is harmless (recovery takes the last one, compaction drops
        the rest).  After *attempts* failures the seal is abandoned:
        losing the unsynced tail is precisely what a failing-fsync disk
        is allowed to do, and the event history itself was acknowledged
        under the backend's durability policy.
        """
        for _ in range(attempts):
            try:
                emit()
                return
            except DiskFault:
                continue

    async def close(self, run_id: str, status: str = "completed") -> HostedRun:
        """Stop hosting *run_id*, sealing its records with *status*."""
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.pop(run_id, None)
            if hosted is None and run_id in self._evicted:
                # Seal without full rehydration: the live state is not
                # needed to close, only the record history.
                evicted = self._evicted.pop(run_id)
                store = self.storage.store(run_id)
                records, _ = store.read()
                resumed = fast_recover(self.program, records)
                hosted = HostedRun(
                    run_id,
                    self.program,
                    resumed.initial,
                    instance=resumed.instance,
                    events=resumed.events,
                    cache_views=False,
                )
                hosted.submitted = evicted.submitted
                hosted.quarantined = evicted.quarantined
                hosted.recoveries = evicted.recoveries
                hosted.dataflow.pushes = evicted.dataflow_pushes
                self._seal(lambda: (store.append(end_record(status)), store.sync()))
                store.close()
                self._lru.pop(run_id, None)
                if not self.storage.durable:
                    self.storage.delete(run_id)
                return hosted
            self._lru.pop(run_id, None)
        if hosted is None:
            raise UnknownRunError(f"run {run_id!r} is not hosted")
        if hosted.journal is not None:
            self._seal(lambda: hosted.journal.end(status))
            hosted.journal.close()
        if not self.storage.durable:
            self.storage.delete(run_id)
        return hosted

    async def crash_and_recover(self, run_id: str) -> HostedRun:
        """Simulate a process death of one run and recover it from storage.

        The in-memory :class:`HostedRun` — instance, caches, explainers
        — is abandoned; the records (appended *before* each event was
        acknowledged) survive, and the run is re-materialized from its
        latest checkpoint.  On a non-durable backend the state is
        genuinely lost and :class:`ServiceError` is raised.
        """
        shard = self._shard(run_id)
        async with shard.lock:
            hosted = shard.runs.pop(run_id, None)
            evicted = self._evicted.pop(run_id, None)
            if hosted is None and evicted is None:
                raise UnknownRunError(f"run {run_id!r} is not hosted")
            prior_recoveries = (
                hosted.recoveries if hosted is not None else evicted.recoveries
            )
            if hosted is not None and hosted.journal is not None:
                sealed = hosted
                self._seal(lambda: sealed.journal.end("crashed"))
                hosted.journal.close()
            elif evicted is not None and self.storage.durable:
                store = self.storage.store(run_id)
                self._seal(
                    lambda: (store.append(end_record("crashed")), store.sync())
                )
                store.close()
            if not self.storage.durable:
                self._lru.pop(run_id, None)
                self.storage.delete(run_id)
                raise ServiceError(
                    f"run {run_id!r} crashed without durable storage; "
                    "state is lost"
                )
            recovered = self._materialize(run_id, None)
            recovered.recoveries = prior_recoveries + 1
            shard.runs[run_id] = recovered
            self.recoveries += 1
            _RECOVERIES.inc()
            self._touch(run_id)
            self._maybe_evict(protect=run_id)
            return recovered

    async def sync_all(self) -> int:
        """Force a durability barrier on every resident run's store.

        Returns how many runs were synced.  The ``shutdown`` op calls
        this after draining the broker, so its response acknowledges a
        fully-persisted service — the contract the cluster supervisor's
        graceful restarts rely on.  A :class:`DiskFault` from an
        injected failing fsync is absorbed: the unsynced tail is
        exactly what such a disk is allowed to lose.
        """
        synced = 0
        for shard in self._shards:
            async with shard.lock:
                for hosted in shard.runs.values():
                    store = getattr(hosted.journal, "store", None)
                    if store is None:
                        continue
                    try:
                        store.sync()
                        synced += 1
                    except DiskFault:
                        pass
        return synced

    # ------------------------------------------------------------------
    # Eviction and rehydration
    # ------------------------------------------------------------------

    def _touch(self, run_id: str) -> None:
        self._lru.pop(run_id, None)
        self._lru[run_id] = None

    def _maybe_evict(self, protect: Optional[str] = None) -> None:
        """Evict LRU resident runs until at most ``max_resident`` remain.

        Runs synchronously (no awaits), so it is atomic with respect to
        the event loop — safe to call while holding any shard lock.
        """
        if self.max_resident is None:
            return
        while self.resident_count() > self.max_resident:
            victim = next(
                (
                    rid
                    for rid in self._lru
                    if rid != protect and rid in self._shard(rid).runs
                ),
                None,
            )
            if victim is None or not self._evict(victim):
                break

    def _evict(self, run_id: str) -> bool:
        """Drop one run's live state, keeping its records rehydratable.

        Returns False — and leaves the run resident — when the records
        could not be checkpointed and synced despite retries: evicting
        then would hand rehydration a store missing acknowledged state.
        """
        shard = self._shard(run_id)
        hosted = shard.runs.pop(run_id, None)
        if hosted is None:
            return False
        journal = hosted.journal
        if isinstance(journal, RecordJournal):
            persisted = False
            for _ in range(4):
                try:
                    if journal.last_snapshot_at != journal.events_recorded:
                        # A parting checkpoint so rehydration replays
                        # O(1) events, not O(events since the last
                        # cadence snapshot).
                        journal.snapshot(len(hosted.events) - 1, hosted.instance)
                    journal.store.sync()
                    persisted = True
                    break
                except DiskFault:
                    continue  # the store self-heals; a new fault draw each try
            if not persisted:
                shard.runs[run_id] = hosted
                return False
            journal.close()
        elif journal is not None:
            journal.close()
        self._evicted[run_id] = _EvictedRun(
            submitted=hosted.submitted,
            quarantined=hosted.quarantined,
            recoveries=hosted.recoveries,
            dataflow_pushes=hosted.dataflow.pushes,
        )
        self._lru.pop(run_id, None)
        self.evictions += 1
        _EVICTIONS.inc()
        return True

    def _rehydrate(self, run_id: str, shard: _Shard) -> HostedRun:
        """Re-materialize an evicted run from its records (shard lock held)."""
        evicted = self._evicted.pop(run_id)
        hosted = self._materialize(run_id, None)
        hosted.submitted = evicted.submitted
        hosted.quarantined = evicted.quarantined
        hosted.recoveries = evicted.recoveries
        # The graph was rebuilt over the recovered instance; its push
        # counter resumes where the evicted incarnation left off so
        # eviction stays invisible in stats.
        hosted.dataflow.pushes = evicted.dataflow_pushes
        shard.runs[run_id] = hosted
        self.rehydrations += 1
        _REHYDRATIONS.inc()
        self._touch(run_id)
        return hosted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def run_ids(self) -> List[str]:
        resident = [run_id for shard in self._shards for run_id in shard.runs]
        return sorted(resident + list(self._evicted))

    def hosted_count(self) -> int:
        """Runs the registry is responsible for, resident or evicted."""
        return self.resident_count() + len(self._evicted)

    def resident_count(self) -> int:
        return sum(len(shard.runs) for shard in self._shards)

    def evicted_count(self) -> int:
        return len(self._evicted)

    def shard_sizes(self) -> List[int]:
        return [len(shard.runs) for shard in self._shards]

    def stats(self) -> Dict[str, object]:
        return {
            "shards": self.shard_count,
            "hosted_runs": self.hosted_count(),
            "resident_runs": self.resident_count(),
            "evicted_runs": self.evicted_count(),
            "shard_sizes": self.shard_sizes(),
            "recoveries": self.recoveries,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
            "max_resident": self.max_resident,
            "journal_dir": str(self.journal_dir) if self.journal_dir else None,
            "cache_views": self.cache_views,
            "storage": self.storage.stats(),
        }
