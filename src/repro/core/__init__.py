"""Scenarios and faithful scenarios — the paper's Sections 3 and 4.

Runtime explanations of collaborative workflow runs: observationally
equivalent subruns (*scenarios*), the faithfulness restriction that makes
them trustworthy, the unique PTIME-computable minimal faithful scenario,
the semiring structure, and incremental maintenance.
"""

from .explain import Explanation, ObservationExplanation, explain_event, explain_run
from .faithful import (
    AttributeModification,
    FaithfulScenario,
    FaithfulnessAnalysis,
    is_faithful_scenario,
    minimal_faithful_scenario,
    relevant_attributes,
)
from .incremental import IncrementalExplainer
from .lifecycles import Lifecycle, LifecycleIndex, keys_in_sequence
from .narrative import narrate_explanation, narrate_run, object_story
from .scenarios import (
    greedy_scenario,
    has_scenario_of_size,
    is_minimal_scenario,
    is_scenario,
    minimum_scenario,
    scenario_within,
)
from .semiring import FaithfulSemiring
from .subruns import (
    EventSubsequence,
    empty_subsequence,
    full_subsequence,
    visible_subsequence,
)

__all__ = [
    "AttributeModification",
    "EventSubsequence",
    "Explanation",
    "FaithfulScenario",
    "FaithfulSemiring",
    "FaithfulnessAnalysis",
    "IncrementalExplainer",
    "Lifecycle",
    "LifecycleIndex",
    "ObservationExplanation",
    "empty_subsequence",
    "explain_event",
    "explain_run",
    "full_subsequence",
    "greedy_scenario",
    "has_scenario_of_size",
    "is_faithful_scenario",
    "is_minimal_scenario",
    "is_scenario",
    "keys_in_sequence",
    "minimal_faithful_scenario",
    "minimum_scenario",
    "narrate_explanation",
    "narrate_run",
    "object_story",
    "relevant_attributes",
    "scenario_within",
    "visible_subsequence",
]
