"""Segmented-log storage backend: CRC-framed, crash-safe, compactable.

Each run owns a directory of append-only segment files plus a
``MANIFEST`` naming the live segments in order::

    <root>/<quoted run id>/
        MANIFEST                 {"version": 1, "segments": ["seg-..."]}
        seg-00000001.log         one record per line: <crc32:8 hex> <json>
        seg-00000002.log

**Framing.**  Every record line carries the crc32 of its JSON payload.
A record is valid only if the line is newline-terminated, the CRC
parses, and it matches the payload — so a torn write (crash or injected
short write mid-record) and a corrupted trailing record are both
detectable, and both are *recovered*: the tail of the last segment is
truncated back to the last valid record, with a warning.  Invalid
records anywhere else mean acknowledged history was damaged and raise
:class:`~repro.storage.backend.StorageCorruptionError`.

**Durability.**  Appends flush/fsync per the backend's
:class:`~repro.storage.backend.DurabilityPolicy`; snapshots, seals and
compactions are barriers.  An injected fsync failure models ``EIO``
from ``fsync(2)`` in a still-running process: the data is intact but
the barrier did not happen, so acknowledged records never silently
disappear under the live process — the unsynced window only matters
across a power cut, exactly as the durability matrix in
``docs/STORAGE.md`` states.

**Compaction.**  ``compact()`` writes the compacted records
(:func:`~repro.storage.backend.compact_records`) into a fresh segment,
fsyncs it, then atomically replaces the MANIFEST and deletes the old
segments.  A crash in any window leaves either the old manifest (new
segment is an orphan) or the new one (old segments are orphans);
orphans are swept on the next open, so acknowledged records are never
lost — the property ``tests/storage/test_compaction_crash.py`` kills
the process at every step to prove.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple as PyTuple, Union

from ..runtime.faults import DiskFault, DiskFaultInjector
from ..runtime.journal import _quote_run_id
from .backend import (
    COMPACTIONS,
    COMPACTION_RECLAIMED,
    CompactionStats,
    DISK_FAULTS,
    DurabilityPolicy,
    FSYNC_SECONDS,
    RunStore,
    StorageBackend,
    StorageCorruptionError,
    StorageError,
    TAIL_RECOVERIES,
    compact_records,
)

__all__ = ["SegmentBackend", "SegmentStore"]

MANIFEST_NAME = "MANIFEST"
MANIFEST_VERSION = 1
SEGMENT_PREFIX = "seg-"
SEGMENT_SUFFIX = ".log"

#: Roll to a new segment once the active one crosses this many bytes.
DEFAULT_SEGMENT_BYTES = 256 * 1024


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int:
    return int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])


def _frame(payload: str) -> str:
    return f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"


def _corrupt(line: str) -> str:
    """A deterministically damaged copy of a framed line (payload bytes
    flipped, newline kept) — what an injected ``corrupt`` fault writes."""
    body, newline = line[:-1], line[-1]
    middle = len(body) // 2
    flipped = chr((ord(body[middle]) % 94) + 33)
    return body[:middle] + flipped + body[middle + 1 :] + newline


def _parse_segment(
    data: str,
) -> PyTuple[List[Dict[str, Any]], int, Optional[str]]:
    """``(records, valid_bytes, tail_problem)`` for one segment's bytes.

    *valid_bytes* is the offset just past the last valid record;
    *tail_problem* describes why parsing stopped early (None when the
    whole segment is valid).
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        newline = data.find("\n", offset)
        if newline < 0:
            return records, offset, "torn final record (no newline)"
        line = data[offset:newline]
        problem = None
        if len(line) < 10 or line[8] != " ":
            problem = "unframed record line"
        else:
            crc_text, payload = line[:8], line[9:]
            try:
                expected = int(crc_text, 16)
            except ValueError:
                problem = "unparseable CRC"
            else:
                if zlib.crc32(payload.encode("utf-8")) != expected:
                    problem = "CRC mismatch"
                else:
                    try:
                        record = json.loads(payload)
                    except json.JSONDecodeError:
                        problem = "CRC-valid but undecodable payload"
                    else:
                        if not isinstance(record, dict) or "type" not in record:
                            problem = "not a typed record"
                        else:
                            records.append(record)
        if problem is not None:
            # Only a *final* damaged record is recoverable tail damage.
            # Anything valid after it means acknowledged history was
            # damaged mid-log — flag it so callers can refuse to heal.
            if data.find("\n", newline + 1) >= 0 or newline + 1 < len(data):
                problem = f"{problem} (mid-segment, valid data follows)"
            return records, offset, problem
        offset = newline + 1
    return records, offset, None


class SegmentStore(RunStore):
    """One run's segmented log (see the module docstring)."""

    def __init__(self, backend: "SegmentBackend", run_id: str) -> None:
        self.backend = backend
        self.run_id = run_id
        self.path = backend.root / _quote_run_id(run_id)
        self.path.mkdir(parents=True, exist_ok=True)
        self._segments: List[str] = []
        self._sink = None
        self._appends_since_sync = 0
        self._synced_offset = 0
        self._needs_repair = False
        self._load_manifest()
        self._sweep_orphans()
        #: Tail repairs performed when the store was opened; surfaced by
        #: the next :meth:`read` so recovery paths can report them.
        self._open_warnings: List[str] = self._recover_tail()
        self._open_active()

    # ------------------------------------------------------------------
    # Manifest and segment bookkeeping
    # ------------------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    def _load_manifest(self) -> None:
        if self._manifest_path.exists():
            try:
                manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise StorageCorruptionError(
                    f"unreadable manifest for run {self.run_id!r}: {exc}"
                ) from exc
            if manifest.get("version") != MANIFEST_VERSION:
                raise StorageError(
                    f"unsupported manifest version {manifest.get('version')!r}"
                )
            self._segments = list(manifest.get("segments", []))
        else:
            self._segments = []
            self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self._manifest_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as sink:
            json.dump(
                {
                    "version": MANIFEST_VERSION,
                    "run_id": self.run_id,
                    "segments": self._segments,
                },
                sink,
            )
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(tmp, self._manifest_path)

    def _sweep_orphans(self) -> None:
        """Delete segment/tmp files a crashed compaction left behind."""
        live = set(self._segments)
        for entry in self.path.iterdir():
            name = entry.name
            if name == MANIFEST_NAME:
                continue
            if name.endswith(".tmp") or (
                name.startswith(SEGMENT_PREFIX)
                and name.endswith(SEGMENT_SUFFIX)
                and name not in live
            ):
                entry.unlink()

    def _next_segment_index(self) -> int:
        highest = 0
        for name in self._segments:
            highest = max(highest, _segment_index(name))
        for entry in self.path.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX):
            highest = max(highest, _segment_index(entry.name))
        return highest + 1

    def _open_active(self) -> None:
        if not self._segments:
            self._roll()
            return
        active = self.path / self._segments[-1]
        self._sink = open(active, "a", encoding="utf-8")
        self._synced_offset = active.stat().st_size
        self._appends_since_sync = 0

    def _roll(self) -> None:
        """Finish the active segment and start a fresh one."""
        if self._sink is not None and not self._sink.closed:
            self._sink.flush()
            os.fsync(self._sink.fileno())
            self._sink.close()
        name = _segment_name(self._next_segment_index())
        self._segments.append(name)
        self._sink = open(self.path / name, "a", encoding="utf-8")
        self._write_manifest()
        self._synced_offset = 0
        self._appends_since_sync = 0

    # ------------------------------------------------------------------
    # Tail recovery (torn/corrupt trailing records)
    # ------------------------------------------------------------------

    def _recover_tail(self) -> List[str]:
        """Truncate the last segment to its valid prefix; the warnings."""
        if not self._segments:
            return []
        last = self.path / self._segments[-1]
        if not last.exists():
            return []
        data = last.read_text(encoding="utf-8", errors="replace")
        _, valid_bytes, problem = _parse_segment(data)
        if problem is None:
            return []
        if "mid-segment" in problem:
            raise StorageCorruptionError(
                f"segment {last.name} of run {self.run_id!r} is damaged: {problem}"
            )
        encoded_valid = len(data[:valid_bytes].encode("utf-8"))
        with open(last, "r+", encoding="utf-8") as handle:
            handle.truncate(encoded_valid)
        TAIL_RECOVERIES.labels(backend=self.backend.name).inc()
        return [
            f"truncated segment {last.name} to {valid_bytes} valid bytes: {problem}"
        ]

    def _repair(self) -> None:
        """Self-heal after a write fault: re-validate and reopen the tail."""
        if self._sink is not None and not self._sink.closed:
            self._sink.close()
        self._recover_tail()
        active = self.path / self._segments[-1]
        self._sink = open(active, "a", encoding="utf-8")
        self._synced_offset = min(self._synced_offset, active.stat().st_size)
        self._needs_repair = False

    # ------------------------------------------------------------------
    # The storage verbs
    # ------------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        if self._sink is None or self._sink.closed:
            raise StorageError(f"store for run {self.run_id!r} is closed")
        if self._needs_repair:
            self._repair()
        line = _frame(json.dumps(record, sort_keys=True))
        injector = self.backend.fault_injector
        fault = injector.on_append() if injector is not None else None
        if fault == "enospc":
            DISK_FAULTS.labels(kind="enospc").inc()
            raise DiskFault("enospc", f"injected ENOSPC appending to {self.run_id!r}")
        if fault == "short_write":
            self._sink.write(line[: max(1, len(line) // 2)])
            self._sink.flush()
            self._needs_repair = True
            DISK_FAULTS.labels(kind="short_write").inc()
            raise DiskFault(
                "short_write", f"injected short write appending to {self.run_id!r}"
            )
        if fault == "corrupt":
            self._sink.write(_corrupt(line))
            self._sink.flush()
            self._needs_repair = True
            DISK_FAULTS.labels(kind="corrupt").inc()
            raise DiskFault(
                "corrupt", f"injected corrupt trailing record in {self.run_id!r}"
            )
        self._sink.write(line)
        policy = self.backend.durability
        if policy.flushes:
            self._sink.flush()
        self._appends_since_sync += 1
        barrier = record.get("type") in ("snapshot", "end")
        if policy.wants_fsync(self._appends_since_sync, barrier):
            try:
                self.sync()
            except DiskFault:
                # The record is written and flushed — acknowledged —
                # only the durability barrier failed.  The fault is
                # counted, ``_synced_offset`` stays behind, and the next
                # successful sync covers this record too; raising here
                # would force a retry of an already-applied append.
                pass
        if self._sink.tell() >= self.backend.segment_bytes:
            self._roll()

    def sync(self) -> None:
        """Fsync the active segment (a durability barrier).

        An injected fsync failure models ``EIO`` from ``fsync(2)`` in a
        process that keeps running: the written bytes are intact (the
        page cache does not vanish on a failed sync), but the barrier
        was *not* achieved — ``_synced_offset`` stays behind and
        :class:`~repro.runtime.faults.DiskFault` is raised so callers
        that need the barrier (sealing, eviction, compaction) retry.
        Only an actual power cut would lose the unsynced tail; the
        durability matrix in ``docs/STORAGE.md`` spells out which
        policies accept that window.
        """
        if self._sink is None or self._sink.closed:
            return
        self._sink.flush()
        injector = self.backend.fault_injector
        if injector is not None and injector.on_fsync():
            DISK_FAULTS.labels(kind="fsync").inc()
            raise DiskFault(
                "fsync",
                f"injected fsync failure on {self.run_id!r}; "
                "barrier not achieved, data intact",
            )
        started = time.perf_counter()
        os.fsync(self._sink.fileno())
        FSYNC_SECONDS.observe(time.perf_counter() - started)
        self._synced_offset = self._sink.tell()
        self._appends_since_sync = 0

    def read(self) -> PyTuple[List[Dict[str, Any]], List[str]]:
        if self._sink is not None and not self._sink.closed:
            self._sink.flush()
        if self._needs_repair:
            self._repair()
        records: List[Dict[str, Any]] = []
        warnings: List[str] = list(self._open_warnings)
        self._open_warnings = []
        for position, name in enumerate(self._segments):
            segment = self.path / name
            if not segment.exists():
                raise StorageCorruptionError(
                    f"manifest names missing segment {name} for run {self.run_id!r}"
                )
            parsed, _, problem = _parse_segment(
                segment.read_text(encoding="utf-8", errors="replace")
            )
            if problem is not None:
                if position != len(self._segments) - 1 or "mid-segment" in problem:
                    raise StorageCorruptionError(
                        f"segment {name} of run {self.run_id!r} is damaged "
                        f"mid-log: {problem}"
                    )
                warnings.append(f"dropped invalid tail of {name}: {problem}")
            records.extend(parsed)
        return records, warnings

    def compact(self) -> CompactionStats:
        records, _ = self.read()
        kept = compact_records(records)
        bytes_before = self.size_bytes()
        old_segments = list(self._segments)
        name = _segment_name(self._next_segment_index())
        compacted = self.path / name
        with open(compacted, "w", encoding="utf-8") as sink:
            for record in kept:
                sink.write(_frame(json.dumps(record, sort_keys=True)))
            sink.flush()
            os.fsync(sink.fileno())
        if self._sink is not None and not self._sink.closed:
            self._sink.close()
        # The commit point: a crash before this replace keeps the old
        # manifest (the compacted file is an orphan, swept on reopen); a
        # crash after it keeps the new one (the old segments are the
        # orphans).  Either way every acknowledged record survives.
        self._segments = [name]
        self._write_manifest()
        for old in old_segments:
            try:
                (self.path / old).unlink()
            except OSError:  # pragma: no cover - sweep gets it later
                pass
        self._sink = open(compacted, "a", encoding="utf-8")
        self._synced_offset = compacted.stat().st_size
        self._appends_since_sync = 0
        COMPACTIONS.labels(backend=self.backend.name).inc()
        COMPACTION_RECLAIMED.labels(backend=self.backend.name).inc(
            len(records) - len(kept)
        )
        self.backend.compactions += 1
        return CompactionStats(
            records_before=len(records),
            records_after=len(kept),
            bytes_before=bytes_before,
            bytes_after=self.size_bytes(),
        )

    def close(self) -> None:
        if self._sink is not None and not self._sink.closed:
            self._sink.flush()
            self._sink.close()

    def record_count(self) -> int:
        return len(self.read()[0])

    def size_bytes(self) -> int:
        if self._sink is not None and not self._sink.closed:
            self._sink.flush()
        total = 0
        for name in self._segments:
            segment = self.path / name
            if segment.exists():
                total += segment.stat().st_size
        return total


class SegmentBackend(StorageBackend):
    """Segmented CRC-framed logs under one root directory."""

    name = "segment"
    durable = True

    def __init__(
        self,
        root: Union[str, Path],
        durability: Union[str, DurabilityPolicy, None] = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fault_injector: Optional[DiskFaultInjector] = None,
    ) -> None:
        if segment_bytes < 1024:
            raise StorageError("segments smaller than 1KiB are pointless")
        self.root = Path(root)
        self.durability = DurabilityPolicy.parse(durability)
        self.segment_bytes = segment_bytes
        self.fault_injector = fault_injector
        self.compactions = 0

    def exists(self, run_id: str) -> bool:
        run_dir = self.root / _quote_run_id(run_id)
        if not run_dir.is_dir():
            return False
        return any(
            run_dir.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX)
        ) or (run_dir / MANIFEST_NAME).exists()

    def store(self, run_id: str) -> SegmentStore:
        return SegmentStore(self, run_id)

    def run_ids(self) -> List[str]:
        from urllib.parse import unquote

        if not self.root.is_dir():
            return []
        return sorted(
            unquote(entry.name)
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / MANIFEST_NAME).exists()
        )

    def delete(self, run_id: str) -> None:
        run_dir = self.root / _quote_run_id(run_id)
        if not run_dir.is_dir():
            return
        for entry in run_dir.iterdir():
            entry.unlink()
        run_dir.rmdir()

    def stats(self) -> Dict[str, Any]:
        return {
            **super().stats(),
            "root": str(self.root),
            "runs": len(self.run_ids()),
            "compactions": self.compactions,
            "durability": self.durability.mode,
            "segment_bytes": self.segment_bytes,
            "faults_injected": (
                dict(self.fault_injector.injected) if self.fault_injector else {}
            ),
        }
