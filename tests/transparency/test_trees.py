"""Tests for tree-of-runs equivalence (Remark 5.2)."""

import pytest

from repro.transparency.bounded import SearchBudget
from repro.transparency.equivalence import check_view_program
from repro.transparency.trees import (
    ViewTree,
    check_tree_equivalence,
    source_view_tree,
    view_program_tree,
)
from repro.transparency.viewprogram import synthesize_view_program
from repro.workflow import Instance, RunGenerator
from repro.workloads import chain_program, hiring_program, vetoed_hiring_program

SMALL = SearchBudget(pool_extra=1, max_tuples_per_relation=1)


@pytest.fixture(scope="module")
def hiring_synthesis():
    return synthesize_view_program(hiring_program(), "sue", h=3, budget=SMALL)


@pytest.fixture(scope="module")
def veto_synthesis():
    return synthesize_view_program(vetoed_hiring_program(), "sue", h=2, budget=SMALL)


class TestViewTree:
    def test_leaf_at_depth_zero(self, hiring_synthesis):
        source = hiring_synthesis.source
        tree = source_view_tree(
            source, "sue", Instance.empty(source.schema.schema), 0, 3
        )
        assert tree.is_leaf() and tree.size() == 1

    def test_branches_grow_with_depth(self, hiring_synthesis):
        source = hiring_synthesis.source
        empty = Instance.empty(source.schema.schema)
        shallow = source_view_tree(source, "sue", empty, 1, 3)
        deep = source_view_tree(source, "sue", empty, 2, 3)
        assert deep.size() > shallow.size()

    def test_isomorphic_branches_merge(self, hiring_synthesis):
        # From the empty instance, every 'clear' leads to an isomorphic
        # future: the canonicalisation merges them into one branch.
        source = hiring_synthesis.source
        empty = Instance.empty(source.schema.schema)
        tree = source_view_tree(source, "sue", empty, 1, 3)
        assert len(tree.branches) == 1

    def test_view_program_tree_structure(self, hiring_synthesis):
        empty = Instance.empty(hiring_synthesis.program.schema.schema)
        tree = view_program_tree(hiring_synthesis.program, "sue", empty, 2)
        labels = tree.labels()
        assert "ω" in labels


class TestTreeEquivalence:
    def test_hiring_trees_coincide(self, hiring_synthesis):
        report = check_tree_equivalence(hiring_synthesis, depth=3)
        assert report.equivalent
        assert report.source_tree == report.view_tree

    def test_chain_trees_coincide(self):
        synthesis = synthesize_view_program(
            chain_program(1), "observer", h=2, budget=SearchBudget(pool_extra=0)
        )
        assert check_tree_equivalence(synthesis, depth=3).equivalent


class TestRemark52:
    """The veto workflow: linearly equivalent, tree-inequivalent."""

    def test_view_program_linearly_equivalent(self, veto_synthesis):
        source = veto_synthesis.source
        source_runs = [RunGenerator(source, seed=s).random_run(8) for s in range(5)]
        view_runs = [
            RunGenerator(veto_synthesis.program, seed=s).random_run(4)
            for s in range(5)
        ]
        report = check_view_program(veto_synthesis, source_runs, view_runs)
        assert report.ok

    def test_trees_differ(self, veto_synthesis):
        report = check_tree_equivalence(veto_synthesis, depth=3)
        assert not report.equivalent

    def test_gap_is_an_extra_view_offer(self, veto_synthesis):
        # The view program promises a Hire transition that vetoed
        # futures of the source cannot deliver.
        report = check_tree_equivalence(veto_synthesis, depth=3)
        assert report.extra_in_view_program()

    def test_hire_rule_synthesized(self, veto_synthesis):
        relations = {
            rule.head[0].view.relation.name for rule in veto_synthesis.world_rules()
        }
        assert "Hire" in relations
