"""Database instances, validity and the key chase ``chase_K``.

An instance of a database schema maps each relation to a finite set of
tuples.  An instance is *valid* when no tuple has ``⊥`` as its key and no
two distinct tuples share a key.  Valid instances are represented with a
per-relation mapping from key to tuple, which makes the key constraint
structural.

The chase of Section 2 repairs instances in which several tuples share a
key but never disagree on a non-null attribute: such tuples are merged
into one.  If two tuples with the same key carry distinct non-null values
for the same attribute the chase fails (:class:`ChaseFailure`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from .domain import NULL, is_null
from .errors import ChaseFailure, InvalidInstanceError, SchemaError
from .schema import Relation, Schema
from .tuples import Tuple


class Instance:
    """A valid instance of a database schema.

    Internally each relation holds an insertion-ordered mapping from key
    value to :class:`Tuple`.  Instances are immutable: the update methods
    return new instances.

    >>> D = Schema([Relation("R", ("K", "A"))])
    >>> I = Instance.empty(D).insert("R", Tuple(("K", "A"), (1, "x")))
    >>> I.tuple_with_key("R", 1)["A"]
    'x'
    """

    __slots__ = ("schema", "_data")

    def __init__(self, schema: Schema, data: Mapping[str, Mapping[object, Tuple]]) -> None:
        object.__setattr__(self, "schema", schema)
        normalised: Dict[str, Dict[object, Tuple]] = {}
        for relation in schema:
            tuples = dict(data.get(relation.name, {}))
            for key, tup in tuples.items():
                if is_null(key):
                    raise InvalidInstanceError(
                        f"tuple with null key in relation {relation.name}"
                    )
                if tup.key != key:
                    raise InvalidInstanceError(
                        f"tuple {tup!r} indexed under wrong key {key!r}"
                    )
                if tup.attributes != relation.attributes:
                    raise InvalidInstanceError(
                        f"tuple {tup!r} does not match schema of {relation!r}"
                    )
            normalised[relation.name] = tuples
        unknown = set(data) - set(normalised)
        if unknown:
            raise SchemaError(f"instance mentions unknown relations: {sorted(unknown)}")
        object.__setattr__(self, "_data", normalised)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Instance is immutable")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> "Instance":
        """The empty instance ``∅`` over *schema*."""
        return cls(schema, {})

    @classmethod
    def from_tuples(cls, schema: Schema, tuples: Mapping[str, Iterable[Tuple]]) -> "Instance":
        """Build a valid instance from per-relation tuple collections.

        Raises :class:`InvalidInstanceError` on duplicate or null keys.
        """
        data: Dict[str, Dict[object, Tuple]] = {}
        for name, tups in tuples.items():
            relation = schema.relation(name)
            per_key: Dict[object, Tuple] = {}
            for tup in tups:
                if tup.attributes != relation.attributes:
                    tup = tup.pad(relation.attributes)
                if is_null(tup.key):
                    raise InvalidInstanceError(f"null key in relation {name}")
                if tup.key in per_key and per_key[tup.key] != tup:
                    raise InvalidInstanceError(
                        f"duplicate key {tup.key!r} in relation {name}"
                    )
                per_key[tup.key] = tup
            data[name] = per_key
        return cls(schema, data)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def relation(self, name: str) -> PyTuple[Tuple, ...]:
        """All tuples of relation *name*, in insertion order."""
        return tuple(self._data[name].values())

    def tuples_by_key(self, name: str) -> Mapping[object, Tuple]:
        return dict(self._data[name])

    def keys(self, name: str) -> PyTuple[object, ...]:
        """The key view ``Key_R``: the projection of *name* on ``K``."""
        return tuple(self._data[name].keys())

    def has_key(self, name: str, key: object) -> bool:
        return key in self._data[name]

    def tuple_with_key(self, name: str, key: object) -> Optional[Tuple]:
        return self._data[name].get(key)

    def is_empty(self) -> bool:
        return all(not tuples for tuples in self._data.values())

    def size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(tuples) for tuples in self._data.values())

    def active_domain(self) -> Set[object]:
        """All non-null values occurring in the instance (``adom``)."""
        values: Set[object] = set()
        for tuples in self._data.values():
            for tup in tuples.values():
                values.update(v for v in tup.values if not is_null(v))
        return values

    # ------------------------------------------------------------------
    # Updates (pure: return new instances)
    # ------------------------------------------------------------------

    def insert(self, name: str, tup: Tuple) -> "Instance":
        """Insert *tup* (chase-merging with an existing tuple of same key).

        Raises :class:`ChaseFailure` if the new tuple conflicts with an
        existing tuple holding the same key.
        """
        relation = self.schema.relation(name)
        if tup.attributes != relation.attributes:
            tup = tup.pad(relation.attributes)
        if is_null(tup.key):
            raise InvalidInstanceError(f"cannot insert tuple with null key into {name}")
        existing = self._data[name].get(tup.key)
        if existing is not None:
            try:
                tup = existing.merge(tup)
            except ValueError as exc:
                raise ChaseFailure(f"insert into {name}: {exc}") from exc
        data = {rel: dict(tuples) for rel, tuples in self._data.items()}
        data[name][tup.key] = tup
        return Instance(self.schema, data)

    def delete(self, name: str, key: object) -> "Instance":
        """Remove the tuple with key *key* from relation *name*."""
        if key not in self._data[name]:
            raise InvalidInstanceError(f"no tuple with key {key!r} in relation {name}")
        data = {rel: dict(tuples) for rel, tuples in self._data.items()}
        del data[name][key]
        return Instance(self.schema, data)

    def with_relation(self, name: str, tuples: Iterable[Tuple]) -> "Instance":
        """A copy of the instance with relation *name* replaced."""
        data = {rel: dict(tups) for rel, tups in self._data.items()}
        relation = self.schema.relation(name)
        per_key: Dict[object, Tuple] = {}
        for tup in tuples:
            if tup.attributes != relation.attributes:
                tup = tup.pad(relation.attributes)
            per_key[tup.key] = tup
        data[name] = per_key
        return Instance(self.schema, data)

    # ------------------------------------------------------------------
    # Comparison / hashing
    # ------------------------------------------------------------------

    def _canonical(self) -> PyTuple:
        return tuple(
            (name, frozenset(self._data[name].values()))
            for name in sorted(self._data)
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._data):
            if self._data[name]:
                tuples = ", ".join(repr(t) for t in self._data[name].values())
                parts.append(f"{name}: {{{tuples}}}")
        return "Instance{" + "; ".join(parts) + "}"


def chase(schema: Schema, tuples: Mapping[str, Iterable[Tuple]]) -> Instance:
    """The key chase ``chase_K`` on a (possibly invalid) tuple collection.

    Groups tuples by key within each relation and merges them, filling
    ``⊥`` values.  The result is the unique valid instance the chase
    converges to; if two tuples with the same key carry distinct non-null
    values for the same attribute, the chase fails.

    >>> D = Schema([Relation("R", ("K", "A", "B"))])
    >>> I = chase(D, {"R": [Tuple(("K", "A", "B"), (1, "x", NULL)),
    ...                     Tuple(("K", "A", "B"), (1, NULL, "y"))]})
    >>> I.tuple_with_key("R", 1)
    (K=1, A='x', B='y')
    """
    merged: Dict[str, Dict[object, Tuple]] = {}
    for name, tups in tuples.items():
        relation = schema.relation(name)
        per_key: Dict[object, Tuple] = {}
        for tup in tups:
            if tup.attributes != relation.attributes:
                tup = tup.pad(relation.attributes)
            if is_null(tup.key):
                raise ChaseFailure(f"tuple with null key in relation {name}: {tup!r}")
            existing = per_key.get(tup.key)
            if existing is None:
                per_key[tup.key] = tup
            else:
                try:
                    per_key[tup.key] = existing.merge(tup)
                except ValueError as exc:
                    raise ChaseFailure(f"relation {name}, key {tup.key!r}: {exc}") from exc
        merged[name] = per_key
    return Instance(schema, merged)


def chase_would_succeed(schema: Schema, tuples: Mapping[str, Iterable[Tuple]]) -> bool:
    """True iff :func:`chase` on *tuples* yields a valid instance."""
    try:
        chase(schema, tuples)
    except ChaseFailure:
        return False
    return True
