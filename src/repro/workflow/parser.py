"""A concrete textual syntax for collaborative workflow programs.

The syntax mirrors the paper's notation closely::

    peers hr, ceo, cfo, sue
    relation Cleared(K)
    relation Approved(K)
    view Cleared@hr(K)
    view Cleared@sue(K)
    view Approved@ceo(K)
    [clear]   +Cleared@hr(x)  :-
    [approve] +Approved@ceo(x) :- Cleared@ceo(x)

* ``peers`` declares the peer set; ``relation`` a global relation (first
  attribute is the key); ``view R@p(A, ...)`` a peer view, optionally
  followed by ``where <condition>``.
* Rules are ``[name] head :- body`` (the ``[name]`` is optional).  Head
  atoms are ``+R@p(t, ...)`` and ``-Key[R]@p(t)`` (``-R@p(t)`` is
  accepted sugar).  Body literals are ``R@p(t, ...)``,
  ``not R@p(t, ...)``, ``Key[R]@p(t)``, ``not Key[R]@p(t)``, ``t = t``
  and ``t != t``.
* Identifiers in atom argument positions are variables; quoted strings
  and integers are constants; ``null`` is the undefined value ``⊥``.
* Conditions use ``and`` / ``or`` / ``not`` / parentheses over
  ``A = <const>``, ``A = B``, ``A != ...`` and ``true`` / ``false``.
* ``#`` starts a comment.  A statement continues on the next physical
  line when a line ends with ``,``, ``and`` or ``or`` (so a multi-line
  rule body keeps a trailing comma).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from .conditions import FALSE, TRUE, AttrEq, Condition, Eq, Not, conjunction, disjunction
from .domain import NULL
from .errors import ParseError
from .program import WorkflowProgram
from .queries import Comparison, Const, KeyLiteral, Literal, Query, RelLiteral, Term, Var
from .rules import Deletion, Insertion, Rule, UpdateAtom
from .schema import Relation, Schema
from .views import CollaborativeSchema, View

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<arrow>:-)
  | (?P<neq>!=)
  | (?P<punct>[()\[\],@:+\-=!])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"peers", "peer", "relation", "view", "where", "not", "and", "or", "true", "false", "null", "key"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: object) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def _tokenize(line: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(line):
        match = _TOKEN_RE.match(line, position)
        if match is None:
            raise ParseError(f"unexpected character {line[position]!r} in line: {line.strip()}")
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        text = match.group()
        if match.lastgroup == "string":
            tokens.append(_Token("const", text[1:-1]))
        elif match.lastgroup == "number":
            tokens.append(_Token("const", int(text)))
        elif match.lastgroup == "ident":
            tokens.append(_Token("ident", text))
        elif match.lastgroup == "arrow":
            tokens.append(_Token("arrow", ":-"))
        elif match.lastgroup == "neq":
            tokens.append(_Token("neq", "!="))
        else:
            tokens.append(_Token("punct", text))
    return tokens


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment, ignoring ``#`` inside quoted strings."""
    quote: Optional[str] = None
    for position, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
        elif char == "#":
            return line[:position]
    return line


def _logical_lines(text: str) -> List[str]:
    """Join physical lines into statements (see module docstring)."""
    logical: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            if buffer:
                logical.append(buffer)
                buffer = ""
            continue
        buffer = f"{buffer} {stripped}" if buffer else stripped
        if not buffer.rstrip().endswith((",", " and", " or")):
            logical.append(buffer)
            buffer = ""
    if buffer:
        logical.append(buffer)
    return logical


class _TokenStream:
    def __init__(self, tokens: Sequence[_Token], context: str) -> None:
        self.tokens = list(tokens)
        self.index = 0
        self.context = context

    def peek(self, offset: int = 0) -> Optional[_Token]:
        position = self.index + offset
        return self.tokens[position] if position < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of statement: {self.context}")
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[object] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind!r}, found {token.value!r} in: {self.context}"
            )
        return token

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[_Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (value is None or token.value == value):
            self.index += 1
            return token
        return None

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "ident" and token.value.lower() == word:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


class ProgramParser:
    """Parses the textual syntax into a :class:`WorkflowProgram`."""

    def __init__(self) -> None:
        self.peers: List[str] = []
        self.relations: Dict[str, Relation] = {}
        self.views: List[View] = []
        self._view_index: Dict[PyTuple[str, str], View] = {}
        self.rules: List[Rule] = []
        self._auto_rule_counter = 0

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse(self, text: str) -> WorkflowProgram:
        for line in _logical_lines(text):
            self._parse_statement(line)
        schema = CollaborativeSchema(
            Schema(list(self.relations.values())), self.peers, self.views
        )
        # Re-intern views so rules reference the schema's view objects.
        return WorkflowProgram(schema, self.rules)

    def _parse_statement(self, line: str) -> None:
        stream = _TokenStream(_tokenize(line), line)
        head = stream.peek()
        if head is None:
            return
        if head.kind == "ident" and head.value.lower() in ("peers", "peer"):
            stream.next()
            self._parse_peers(stream)
        elif head.kind == "ident" and head.value.lower() == "relation":
            stream.next()
            self._parse_relation(stream)
        elif head.kind == "ident" and head.value.lower() == "view":
            stream.next()
            self._parse_view(stream)
        else:
            self._parse_rule(stream)

    def _parse_peers(self, stream: _TokenStream) -> None:
        while True:
            name = stream.expect("ident").value
            if name not in self.peers:
                self.peers.append(name)
            if not stream.accept("punct", ","):
                break
        if not stream.at_end():
            raise ParseError(f"trailing tokens in peers declaration: {stream.context}")

    def _parse_relation(self, stream: _TokenStream) -> None:
        name = stream.expect("ident").value
        stream.expect("punct", "(")
        attributes: List[str] = []
        while True:
            attributes.append(stream.expect("ident").value)
            if not stream.accept("punct", ","):
                break
        stream.expect("punct", ")")
        if name in self.relations:
            raise ParseError(f"relation {name} declared twice")
        self.relations[name] = Relation(name, tuple(attributes))

    def _parse_view(self, stream: _TokenStream) -> None:
        relation_name = stream.expect("ident").value
        relation = self._relation(relation_name)
        stream.expect("punct", "@")
        peer = stream.expect("ident").value
        if peer not in self.peers:
            raise ParseError(f"view over undeclared peer {peer!r}")
        stream.expect("punct", "(")
        attributes: List[str] = []
        while True:
            attributes.append(stream.expect("ident").value)
            if not stream.accept("punct", ","):
                break
        stream.expect("punct", ")")
        selection: Condition = TRUE
        if stream.accept_keyword("where"):
            selection = self._parse_condition(stream, relation)
        if not stream.at_end():
            raise ParseError(f"trailing tokens in view declaration: {stream.context}")
        view = View(relation, peer, tuple(attributes), selection)
        key = (relation_name, peer)
        if key in self._view_index:
            raise ParseError(f"view {view.name} declared twice")
        self._view_index[key] = view
        self.views.append(view)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------

    def _parse_condition(self, stream: _TokenStream, relation: Relation) -> Condition:
        return self._parse_or(stream, relation)

    def _parse_or(self, stream: _TokenStream, relation: Relation) -> Condition:
        parts = [self._parse_and(stream, relation)]
        while stream.accept_keyword("or"):
            parts.append(self._parse_and(stream, relation))
        return disjunction(parts)

    def _parse_and(self, stream: _TokenStream, relation: Relation) -> Condition:
        parts = [self._parse_unary_condition(stream, relation)]
        while stream.accept_keyword("and"):
            parts.append(self._parse_unary_condition(stream, relation))
        return conjunction(parts)

    def _parse_unary_condition(self, stream: _TokenStream, relation: Relation) -> Condition:
        if stream.accept_keyword("not"):
            return Not(self._parse_unary_condition(stream, relation))
        if stream.accept("punct", "("):
            inner = self._parse_or(stream, relation)
            stream.expect("punct", ")")
            return inner
        if stream.accept_keyword("true"):
            return TRUE
        if stream.accept_keyword("false"):
            return FALSE
        attribute = stream.expect("ident").value
        if not relation.has_attribute(attribute):
            raise ParseError(
                f"condition mentions unknown attribute {attribute!r} of {relation.name}"
            )
        negated = False
        if stream.accept("neq"):
            negated = True
        else:
            stream.expect("punct", "=")
        token = stream.next()
        condition: Condition
        if token.kind == "const":
            condition = Eq(attribute, token.value)
        elif token.kind == "ident" and token.value.lower() == "null":
            condition = Eq(attribute, NULL)
        elif token.kind == "ident":
            if not relation.has_attribute(token.value):
                raise ParseError(
                    f"condition mentions unknown attribute {token.value!r} of {relation.name}"
                )
            condition = AttrEq(attribute, token.value)
        else:
            raise ParseError(f"bad condition operand {token.value!r}")
        return Not(condition) if negated else condition

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def _parse_rule(self, stream: _TokenStream) -> None:
        name: Optional[str] = None
        if stream.accept("punct", "["):
            name = stream.expect("ident").value
            stream.expect("punct", "]")
        if name is None:
            self._auto_rule_counter += 1
            name = f"r{self._auto_rule_counter}"
        head: List[UpdateAtom] = []
        while True:
            head.append(self._parse_update_atom(stream))
            if not stream.accept("punct", ","):
                break
        stream.expect("arrow")
        literals: List[Literal] = []
        if not stream.at_end():
            while True:
                literals.append(self._parse_body_literal(stream))
                if not stream.accept("punct", ","):
                    break
        if not stream.at_end():
            raise ParseError(f"trailing tokens in rule: {stream.context}")
        self.rules.append(Rule(name, tuple(head), Query(literals)))

    def _parse_update_atom(self, stream: _TokenStream) -> UpdateAtom:
        if stream.accept("punct", "+"):
            view, terms = self._parse_atom_args(stream)
            return Insertion(view, terms)
        if stream.accept("punct", "-"):
            if stream.accept_keyword("key"):
                view, term = self._parse_key_atom(stream)
                return Deletion(view, term)
            view, terms = self._parse_atom_args(stream)
            if len(terms) != 1 and len(view.attributes) != 1:
                # "-R@p(k)" sugar: a single key term is expected.
                raise ParseError(
                    f"deletion sugar -{view.name}(...) takes exactly the key term"
                )
            return Deletion(view, terms[0])
        raise ParseError(f"expected update atom in: {stream.context}")

    def _parse_atom_args(self, stream: _TokenStream) -> PyTuple[View, PyTuple[Term, ...]]:
        relation_name = stream.expect("ident").value
        stream.expect("punct", "@")
        peer = stream.expect("ident").value
        view = self._view(relation_name, peer)
        stream.expect("punct", "(")
        terms: List[Term] = []
        if not stream.accept("punct", ")"):
            while True:
                terms.append(self._parse_term(stream))
                if not stream.accept("punct", ","):
                    break
            stream.expect("punct", ")")
        return view, tuple(terms)

    def _parse_key_atom(self, stream: _TokenStream) -> PyTuple[View, Term]:
        stream.expect("punct", "[")
        relation_name = stream.expect("ident").value
        stream.expect("punct", "]")
        stream.expect("punct", "@")
        peer = stream.expect("ident").value
        view = self._view(relation_name, peer)
        stream.expect("punct", "(")
        term = self._parse_term(stream)
        stream.expect("punct", ")")
        return view, term

    def _parse_body_literal(self, stream: _TokenStream) -> Literal:
        if stream.accept_keyword("not"):
            if stream.accept_keyword("key"):
                view, term = self._parse_key_atom(stream)
                return KeyLiteral(view, term, positive=False)
            view, terms = self._parse_atom_args(stream)
            return RelLiteral(view, terms, positive=False)
        token = stream.peek()
        follower = stream.peek(1)
        if (
            token is not None
            and token.kind == "ident"
            and token.value.lower() == "key"
            and follower is not None
            and follower.kind == "punct"
            and follower.value == "["
        ):
            stream.next()
            view, term = self._parse_key_atom(stream)
            return KeyLiteral(view, term, positive=True)
        if (
            token is not None
            and token.kind == "ident"
            and follower is not None
            and follower.kind == "punct"
            and follower.value == "@"
        ):
            view, terms = self._parse_atom_args(stream)
            return RelLiteral(view, terms, positive=True)
        left = self._parse_term(stream)
        if stream.accept("neq"):
            return Comparison(left, self._parse_term(stream), positive=False)
        stream.expect("punct", "=")
        return Comparison(left, self._parse_term(stream), positive=True)

    def _parse_term(self, stream: _TokenStream) -> Term:
        token = stream.next()
        if token.kind == "const":
            return Const(token.value)
        if token.kind == "ident":
            if token.value.lower() == "null":
                return Const(NULL)
            return Var(token.value)
        raise ParseError(f"expected a term, found {token.value!r} in: {stream.context}")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def _relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise ParseError(f"relation {name!r} is not declared") from None

    def _view(self, relation: str, peer: str) -> View:
        try:
            return self._view_index[(relation, peer)]
        except KeyError:
            raise ParseError(f"view {relation}@{peer} is not declared") from None


def parse_program(text: str) -> WorkflowProgram:
    """Parse the textual syntax into a :class:`WorkflowProgram`.

    >>> P = parse_program('''
    ... peers p
    ... relation OK(K)
    ... view OK@p(K)
    ... [go] +OK@p(0) :-
    ... ''')
    >>> P.rule("go").peer
    'p'
    """
    return ProgramParser().parse(text)


def parse_schema(text: str) -> CollaborativeSchema:
    """Parse declarations only and return the collaborative schema."""
    return parse_program(text).schema
