"""Tests for transparency-form checks and run-level properties."""

import pytest

from repro.design.run_properties import (
    analyze_stages,
    is_run_h_bounded,
    is_run_transparent,
    run_stage_bound,
)
from repro.design.tf import (
    check_c3_prime,
    check_c4_prime,
    check_transparency_form,
    is_transparency_form,
)
from repro.transparency.bounded import SearchBudget
from repro.workflow import Event, RunGenerator, execute
from repro.workflow.conditions import Eq
from repro.workflow.domain import FreshValue
from repro.workflow.queries import Var
from repro.workloads.generators import chain_program


class TestC3Prime:
    def test_fresh_keys_pass(self, hiring_transparent):
        assert check_c3_prime(hiring_transparent, "sue") == []

    def test_non_deletable_relations_exempt(self, hiring_no_cfo):
        # approve writes Approved(x) with a body-bound key and no
        # witness, but nothing ever deletes Approved: no key can be
        # "reused after deletion", so (C3') is satisfied.
        assert check_c3_prime(hiring_no_cfo, "sue") == []

    def test_key_reuse_after_deletion_detected(self, approval):
        # ok(0) is deleted by f and re-inserted by e/g without a body
        # witness: exactly the reuse (C3') forbids.
        violations = check_c3_prime(approval, "applicant")
        assert violations
        assert any("ok" in v for v in violations)


class TestC4Prime:
    def test_projected_selection_ok(self, hiring):
        assert check_c4_prime(hiring, "sue") == []

    def test_hidden_selection_attribute_detected(self):
        from repro.workflow.parser import parse_program
        from repro.workflow.program import WorkflowProgram
        from repro.workflow.schema import Relation, Schema
        from repro.workflow.views import CollaborativeSchema, View

        R = Relation("R", ("K", "A", "B"))
        schema = CollaborativeSchema(
            Schema([R]),
            ["q", "obs"],
            [
                # q's selection uses B, which q does not project; R is
                # invisible at obs, so (C4') applies.
                View(R, "q", ("K", "A"), Eq("B", 1)),
            ],
        )
        program = WorkflowProgram(schema, [])
        violations = check_c4_prime(program, "obs")
        assert any("hidden attributes" in v for v in violations)


class TestTransparencyForm:
    def test_stage_program_is_tf(self, hiring_transparent):
        assert is_transparency_form(hiring_transparent, "sue")

    def test_chain_is_tf_without_stage(self):
        program = chain_program(2)
        assert is_transparency_form(program, "observer", require_stage=False)
        assert not is_transparency_form(program, "observer", require_stage=True)

    def test_violations_reported(self, approval):
        # approval re-creates the deleted key 0 of ok: a (C3') violation.
        violations = check_transparency_form(approval, "applicant", require_stage=False)
        assert violations


class TestRunStageBound:
    def test_approval_run(self, approval_run):
        # The single applicant-stage's minimal faithful subrun is g h.
        analyses = analyze_stages(approval_run, "applicant")
        assert len(analyses) == 1
        assert analyses[0].minimal_positions == (2, 3)
        assert run_stage_bound(approval_run, "applicant") == 2
        assert is_run_h_bounded(approval_run, "applicant", 2)
        assert not is_run_h_bounded(approval_run, "applicant", 1)

    def test_chain_runs(self):
        program = chain_program(2)
        run = execute(
            program, [Event(program.rule(n), {}) for n in ("start", "step0", "step1")]
        )
        assert run_stage_bound(run, "observer") == 3

    def test_empty_run(self, approval):
        run = execute(approval, [])
        assert run_stage_bound(run, "applicant") == 0


class TestRunTransparency:
    BUDGET = SearchBudget(pool_extra=2, max_tuples_per_relation=1)

    def test_transparent_run(self, hiring_no_cfo):
        # clear; approve; hire in one stage: transparent (all the
        # information used is derived within the stage from Cleared).
        k = FreshValue(0)
        events = [
            Event(hiring_no_cfo.rule("clear"), {Var("x"): k}),
            Event(hiring_no_cfo.rule("approve"), {Var("x"): k}),
            Event(hiring_no_cfo.rule("hire"), {Var("x"): k}),
        ]
        run = execute(hiring_no_cfo, events)
        report = is_run_transparent(run, "sue", self.BUDGET)
        assert report.transparent, report.reason

    def test_non_transparent_run(self, hiring_no_cfo):
        # Stale Approved used across a stage boundary.
        k, k2 = FreshValue(0), FreshValue(1)
        events = [
            Event(hiring_no_cfo.rule("clear"), {Var("x"): k}),
            Event(hiring_no_cfo.rule("approve"), {Var("x"): k}),
            Event(hiring_no_cfo.rule("clear"), {Var("x"): k2}),
            Event(hiring_no_cfo.rule("hire"), {Var("x"): k}),
        ]
        run = execute(hiring_no_cfo, events)
        report = is_run_transparent(run, "sue", self.BUDGET)
        assert not report.transparent
