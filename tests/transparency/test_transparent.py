"""Tests for the transparency decision (Theorem 5.11, Example 5.7)."""

import pytest

from repro.transparency.bounded import SearchBudget
from repro.transparency.transparent import (
    check_transparent,
    check_transparent_and_bounded,
)
from repro.workloads.generators import chain_program

SMALL = SearchBudget(pool_extra=2, max_tuples_per_relation=1)


class TestExample57:
    def test_no_cfo_variant_not_transparent(self, hiring_no_cfo):
        result = check_transparent(hiring_no_cfo, "sue", h=2, budget=SMALL)
        assert not result.transparent
        assert result.violation is not None
        # The violating run involves the invisible Approved relation.
        names = {event.rule.name for event in result.violation.events}
        assert names & {"approve", "hire"}

    def test_literal_hiring_not_transparent(self, hiring):
        result = check_transparent(hiring, "sue", h=3, budget=SMALL)
        assert not result.transparent

    def test_stage_variant_transparent(self, hiring_transparent):
        result = check_transparent(hiring_transparent, "sue", h=2, budget=SMALL)
        assert result.transparent
        assert result.pairs_checked > 0

    def test_combined_check(self, hiring_transparent):
        ok, witness = check_transparent_and_bounded(
            hiring_transparent, "sue", h=2, budget=SMALL
        )
        assert ok and witness is None

    def test_combined_check_flags_unbounded(self):
        program = chain_program(3)
        ok, witness = check_transparent_and_bounded(
            program, "observer", h=2, budget=SearchBudget(pool_extra=0)
        )
        assert not ok and witness is not None

    def test_require_bounded_raises(self):
        program = chain_program(3)
        with pytest.raises(ValueError):
            check_transparent(
                program,
                "observer",
                h=2,
                budget=SearchBudget(pool_extra=0),
                require_bounded=True,
            )


class TestTransparentFamilies:
    def test_chain_is_transparent(self):
        # The observer sees only the chain's end; chains from the empty
        # instance behave identically on view-equal fresh instances.
        program = chain_program(1)
        result = check_transparent(program, "observer", h=2, budget=SearchBudget(pool_extra=0))
        assert result.transparent

    def test_violation_description(self, hiring_no_cfo):
        result = check_transparent(hiring_no_cfo, "sue", h=2, budget=SMALL)
        text = result.violation.describe()
        assert "not mirrored" in text
