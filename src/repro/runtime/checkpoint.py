"""Checkpointing: snapshot policy and fast resume from a journal.

:func:`repro.runtime.journal.recover_run` replays a journal from its
initial instance, re-validating every event — the paranoid path.  For
long runs the journal's periodic snapshots allow a *fast resume*: jump
to the latest snapshot and replay only the tail, which is what
:func:`resume_state` implements.  The tail events are still applied
through the engine, so their validity is re-checked; only the prefix
before the snapshot is trusted (its integrity can be audited separately
with :func:`verify_snapshots` or a full :func:`recover_run`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..workflow.engine import apply_event
from ..workflow.errors import EventError, RecoveryError
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.serialization import event_from_dict, instance_from_dict
from .journal import read_journal

__all__ = [
    "CheckpointPolicy",
    "Snapshot",
    "latest_snapshot",
    "resume_state",
    "verify_snapshots",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the supervisor writes instance snapshots into the journal.

    ``every_events``: snapshot after every N applied events (0 or None
    disables periodic snapshots).  ``at_end``: always snapshot the final
    instance when the run completes, giving recovery an O(1) tail.
    """

    every_events: Optional[int] = 10
    at_end: bool = True

    def due(self, events_applied: int) -> bool:
        return bool(self.every_events) and events_applied % self.every_events == 0


@dataclass(frozen=True)
class Snapshot:
    """A decoded snapshot: the instance after *position* journaled events."""

    position: int
    instance: Instance


def _snapshots(program: WorkflowProgram, records: List[Dict[str, Any]]) -> List[Snapshot]:
    out: List[Snapshot] = []
    events_seen = 0
    for record in records:
        kind = record.get("type")
        if kind == "event":
            events_seen += 1
        elif kind == "snapshot":
            out.append(
                Snapshot(events_seen, instance_from_dict(program, record.get("instance", {})))
            )
    return out


def latest_snapshot(
    program: WorkflowProgram, source: Any
) -> Optional[Snapshot]:
    """The most recent snapshot in a journal, decoded; None if there is none."""
    records = source if isinstance(source, list) else read_journal(source)
    snapshots = _snapshots(program, records)
    return snapshots[-1] if snapshots else None


def verify_snapshots(program: WorkflowProgram, source: Any) -> int:
    """Re-derive every snapshot by replay and count the verified ones.

    Raises :class:`~repro.workflow.errors.RecoveryError` on the first
    snapshot that diverges from the replayed instance.
    """
    from .journal import recover_run

    return recover_run(program, source, verify_snapshots=True).snapshots_verified


def resume_state(
    program: WorkflowProgram, source: Any
) -> Tuple[Instance, int]:
    """Fast resume: the latest recoverable state and how many events led there.

    Starts from the latest snapshot (or the initial instance when the
    journal has none) and applies only the journaled events after it,
    re-checking validity event by event.  Returns ``(instance, n)``
    where *n* counts all journaled events reflected in *instance*.
    """
    records = source if isinstance(source, list) else read_journal(source)
    if not records or records[0].get("type") != "begin":
        raise RecoveryError("journal has no begin record")
    initial = instance_from_dict(program, records[0].get("initial", {}))
    events: List[Event] = [
        event_from_dict(program, record["event"])
        for record in records[1:]
        if record.get("type") == "event"
    ]
    snapshot = latest_snapshot(program, records)
    if snapshot is None:
        instance, position = initial, 0
    else:
        instance, position = snapshot.instance, snapshot.position
    for offset, event in enumerate(events[position:]):
        try:
            instance = apply_event(program.schema, instance, event, None)
        except EventError as exc:
            raise RecoveryError(
                f"journaled event {position + offset} no longer applies on resume: {exc}"
            ) from exc
    return instance, len(events)
