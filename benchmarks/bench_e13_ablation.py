"""E13 (ablation): the price and payoff of faithfulness.

The paper motivates faithful scenarios semantically (Examples 4.1/4.2);
this ablation quantifies the trade-off the design choice makes:

* *size* — the minimal faithful scenario can only be larger than the
  unconstrained minimum scenario (it keeps real boundaries and
  modifications), so we measure how much larger across workloads;
* *cost* — the faithful scenario is a PTIME fixpoint while the exact
  minimum is an exponential search, so we measure the speed gap;
* *truthfulness* — we count the runs on which some minimum scenario is
  *not* faithful, i.e. where the cheaper explanation would have been a
  misleading one.
"""

from __future__ import annotations

import pytest

from conftest import wall_time
from repro.analysis import print_table
from repro.core.faithful import is_faithful_scenario, minimal_faithful_scenario
from repro.core.scenarios import greedy_scenario, minimum_scenario
from repro.workflow import RunGenerator
from repro.workloads import approval_program, churn_program, hiring_program

FAMILIES = [
    ("approval", approval_program, "applicant", 10),
    ("hiring", hiring_program, "sue", 12),
    ("churn", churn_program, "observer", 12),
]


@pytest.mark.parametrize("name,factory,peer,length", FAMILIES)
def test_faithful_vs_minimum(benchmark, name, factory, peer, length):
    run = RunGenerator(factory(), seed=0).random_run(length)
    scenario = benchmark(lambda: minimal_faithful_scenario(run, peer))
    assert scenario.indices is not None


def test_e13_table(benchmark):
    rows = []
    misleading_total = 0
    for name, factory, peer, length in FAMILIES:
        program = factory()
        for seed in range(4):
            run = RunGenerator(program, seed=seed).random_run(length)
            faithful = minimal_faithful_scenario(run, peer)
            minimum = minimum_scenario(run, peer)
            greedy = greedy_scenario(run, peer)
            t_faithful = wall_time(
                lambda: minimal_faithful_scenario(run, peer), repeat=1
            )
            t_minimum = wall_time(lambda: minimum_scenario(run, peer), repeat=1)
            minimum_is_faithful = is_faithful_scenario(
                run, peer, minimum.indices
            )
            if not minimum_is_faithful:
                misleading_total += 1
            rows.append(
                [
                    name,
                    seed,
                    len(run),
                    len(minimum),
                    len(faithful.indices),
                    len(greedy),
                    "yes" if minimum_is_faithful else "NO",
                    f"{t_faithful * 1e3:.1f}",
                    f"{t_minimum * 1e3:.1f}",
                ]
            )
            # Faithfulness can only add events to the minimum.
            assert len(minimum) <= len(faithful.indices)
    print_table(
        "E13: ablation — faithful vs unconstrained minimum scenarios",
        [
            "family",
            "seed",
            "run",
            "minimum",
            "faithful",
            "greedy",
            "min faithful?",
            "faithful ms",
            "minimum ms",
        ],
        rows,
    )
    print(
        f"\nruns where the size-minimal explanation would have been "
        f"unfaithful (misleading): {misleading_total}/{len(rows)}"
    )
    # Register with pytest-benchmark so the table runs under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
