"""The semiring of p-faithful scenarios (Theorem 4.8).

p-faithful scenarios of a fixed run are closed under addition (union of
events) and multiplication (intersection of events).  Addition has the
*minimal* p-faithful scenario as identity on the set of faithful
scenarios (it is contained in every one of them — Theorem 4.7), and the
full run is the multiplicative identity.  On arbitrary subsequences the
empty subsequence ``ε`` is the additive identity, as in the paper.

This module packages the operations together with law-checking helpers
used by the tests and benchmarks to validate the algebra empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..workflow.runs import Run
from .faithful import FaithfulnessAnalysis, minimal_faithful_scenario
from .subruns import EventSubsequence, empty_subsequence, full_subsequence


class FaithfulSemiring:
    """Addition/multiplication of subsequences of one run, for one peer.

    >>> # sr = FaithfulSemiring(run, "sue")
    >>> # sr.is_faithful(sr.add(a, b))
    """

    def __init__(self, run: Run, peer: str) -> None:
        self.run = run
        self.peer = peer
        self.analysis = FaithfulnessAnalysis(run, peer)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def add(self, left: EventSubsequence, right: EventSubsequence) -> EventSubsequence:
        """``α₁ + α₂``: the subsequence of events in either operand."""
        return left + right

    def multiply(self, left: EventSubsequence, right: EventSubsequence) -> EventSubsequence:
        """``α₁ * α₂``: the subsequence of events in both operands."""
        return left * right

    @property
    def zero(self) -> EventSubsequence:
        """``ε``, the additive identity on arbitrary subsequences."""
        return empty_subsequence(self.run)

    @property
    def one(self) -> EventSubsequence:
        """``ρ`` itself, the multiplicative identity."""
        return full_subsequence(self.run)

    def minimal(self) -> EventSubsequence:
        """The minimal faithful scenario: additive identity on faithful scenarios."""
        return EventSubsequence(
            self.run, minimal_faithful_scenario(self.run, self.peer).indices
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def is_faithful(self, subsequence: EventSubsequence) -> bool:
        return self.analysis.is_faithful(subsequence.indices)

    def faithful_closure(self, subsequence: EventSubsequence) -> EventSubsequence:
        """``T_p^ω`` applied to the subsequence plus the visible events."""
        seed = set(subsequence.indices)
        seed.update(self.run.visible_indices(self.peer))
        return EventSubsequence(self.run, self.analysis.closure(seed))

    # ------------------------------------------------------------------
    # Law checking (used to validate Theorem 4.8 empirically)
    # ------------------------------------------------------------------

    def check_closure_under_operations(
        self, scenarios: Sequence[EventSubsequence]
    ) -> List[str]:
        """Return law violations among faithful *scenarios* (ideally none)."""
        problems: List[str] = []
        for a in scenarios:
            if not self.is_faithful(a):
                problems.append(f"not faithful: {a!r}")
        for a in scenarios:
            for b in scenarios:
                if not self.is_faithful(self.add(a, b)):
                    problems.append(f"sum not faithful: {a!r} + {b!r}")
                if not self.is_faithful(self.multiply(a, b)):
                    problems.append(f"product not faithful: {a!r} * {b!r}")
        return problems

    def check_semiring_laws(self, elements: Sequence[EventSubsequence]) -> List[str]:
        """Check associativity, commutativity, identity and distributivity."""
        problems: List[str] = []
        for a in elements:
            if self.add(a, self.zero) != a:
                problems.append(f"ε is not additive identity for {a!r}")
            if self.multiply(a, self.one) != a:
                problems.append(f"ρ is not multiplicative identity for {a!r}")
        for a in elements:
            for b in elements:
                if self.add(a, b) != self.add(b, a):
                    problems.append("addition not commutative")
                if self.multiply(a, b) != self.multiply(b, a):
                    problems.append("multiplication not commutative")
                for c in elements:
                    if self.add(self.add(a, b), c) != self.add(a, self.add(b, c)):
                        problems.append("addition not associative")
                    if self.multiply(self.multiply(a, b), c) != self.multiply(
                        a, self.multiply(b, c)
                    ):
                        problems.append("multiplication not associative")
                    left = self.multiply(a, self.add(b, c))
                    right = self.add(self.multiply(a, b), self.multiply(a, c))
                    if left != right:
                        problems.append("multiplication does not distribute over addition")
        return problems
