"""Tests for FCQ¬ queries: safety and evaluation."""

import pytest

from repro.workflow.conditions import TRUE
from repro.workflow.domain import NULL
from repro.workflow.errors import QueryError
from repro.workflow.instance import Instance
from repro.workflow.queries import (
    Comparison,
    Const,
    KeyLiteral,
    Query,
    RelLiteral,
    Var,
)
from repro.workflow.schema import Relation, Schema
from repro.workflow.tuples import Tuple
from repro.workflow.views import View

R = Relation("R", ("K", "A"))
S = Relation("S", ("K", "A"))
D = Schema([R, S])
R_at_p = View(R, "p", ("K", "A"))
S_at_p = View(S, "p", ("K", "A"))

VIEW_SCHEMA = Schema([R_at_p.view_relation, S_at_p.view_relation])

x, y, z = Var("x"), Var("y"), Var("z")


def view_inst(r_tuples=(), s_tuples=()):
    return Instance.from_tuples(
        VIEW_SCHEMA,
        {
            "R@p": [Tuple(("K", "A"), t) for t in r_tuples],
            "S@p": [Tuple(("K", "A"), t) for t in s_tuples],
        },
    )


def vals(query, inst):
    return sorted(
        tuple(sorted((v.name, val) for v, val in valuation.items()))
        for valuation in query.valuations(inst)
    )


class TestSafety:
    def test_safe_query(self):
        Query([RelLiteral(R_at_p, (x, y))])

    def test_unsafe_comparison_variable(self):
        with pytest.raises(QueryError):
            Query([RelLiteral(R_at_p, (x, Const(1))), Comparison(x, y, positive=False)])

    def test_unsafe_negative_literal_variable(self):
        with pytest.raises(QueryError):
            Query([RelLiteral(S_at_p, (x, Const(1)), positive=False)])

    def test_positive_key_literal_makes_safe(self):
        Query([KeyLiteral(R_at_p, x)])

    def test_negative_key_literal_does_not_make_safe(self):
        with pytest.raises(QueryError):
            Query([KeyLiteral(R_at_p, x, positive=False)])

    def test_empty_query_is_safe(self):
        assert len(Query(())) == 0


class TestArity:
    def test_wrong_arity_rejected(self):
        with pytest.raises(QueryError):
            RelLiteral(R_at_p, (x,))


class TestEvaluation:
    def test_single_literal(self):
        q = Query([RelLiteral(R_at_p, (x, y))])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")])
        assert vals(q, inst) == [
            (("x", 1), ("y", "a")),
            (("x", 2), ("y", "b")),
        ]

    def test_join_on_shared_variable(self):
        q = Query([RelLiteral(R_at_p, (x, y)), RelLiteral(S_at_p, (z, y))])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")], s_tuples=[(9, "a")])
        assert vals(q, inst) == [(("x", 1), ("y", "a"), ("z", 9))]

    def test_constant_filter(self):
        q = Query([RelLiteral(R_at_p, (x, Const("a")))])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")])
        assert vals(q, inst) == [(("x", 1),)]

    def test_null_constant_matches_null(self):
        q = Query([RelLiteral(R_at_p, (x, Const(NULL)))])
        inst = view_inst(r_tuples=[(1, NULL), (2, "b")])
        assert vals(q, inst) == [(("x", 1),)]

    def test_repeated_variable_requires_equality(self):
        q = Query([RelLiteral(R_at_p, (x, x))])
        inst = view_inst(r_tuples=[(1, 1), (2, "b")])
        assert vals(q, inst) == [(("x", 1),)]

    def test_negative_literal(self):
        q = Query(
            [RelLiteral(R_at_p, (x, y)), RelLiteral(S_at_p, (x, y), positive=False)]
        )
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")], s_tuples=[(1, "a")])
        assert vals(q, inst) == [(("x", 2), ("y", "b"))]

    def test_positive_key_literal(self):
        q = Query([KeyLiteral(R_at_p, x)])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")])
        assert vals(q, inst) == [(("x", 1),), (("x", 2),)]

    def test_negative_key_literal(self):
        q = Query([RelLiteral(R_at_p, (x, y)), KeyLiteral(S_at_p, x, positive=False)])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")], s_tuples=[(1, "z")])
        assert vals(q, inst) == [(("x", 2), ("y", "b"))]

    def test_inequality(self):
        q = Query(
            [
                RelLiteral(R_at_p, (x, y)),
                RelLiteral(R_at_p, (z, y)),
                Comparison(x, z, positive=False),
            ]
        )
        inst = view_inst(r_tuples=[(1, "a"), (2, "a"), (3, "b")])
        assert vals(q, inst) == [
            (("x", 1), ("y", "a"), ("z", 2)),
            (("x", 2), ("y", "a"), ("z", 1)),
        ]

    def test_equality_comparison(self):
        q = Query([RelLiteral(R_at_p, (x, y)), Comparison(y, Const("a"))])
        inst = view_inst(r_tuples=[(1, "a"), (2, "b")])
        assert vals(q, inst) == [(("x", 1), ("y", "a"))]

    def test_empty_query_has_empty_valuation(self):
        q = Query(())
        assert list(q.valuations(view_inst())) == [{}]

    def test_satisfied_by(self):
        q = Query([RelLiteral(R_at_p, (x, y))])
        inst = view_inst(r_tuples=[(1, "a")])
        assert q.satisfied_by(inst, {x: 1, y: "a"})
        assert not q.satisfied_by(inst, {x: 1, y: "b"})

    def test_satisfied_by_with_negation(self):
        q = Query([RelLiteral(R_at_p, (x, y)), KeyLiteral(S_at_p, x, positive=False)])
        inst = view_inst(r_tuples=[(1, "a")], s_tuples=[(1, "q")])
        assert not q.satisfied_by(inst, {x: 1, y: "a"})


class TestSubstitution:
    def test_literal_substitution(self):
        lit = RelLiteral(R_at_p, (x, y)).substitute({x: 1, y: "a"})
        assert lit.terms == (Const(1), Const("a"))

    def test_unbound_variable_raises(self):
        with pytest.raises(QueryError):
            RelLiteral(R_at_p, (x, y)).substitute({x: 1})

    def test_comparison_holds_with_nulls(self):
        assert Comparison(Const(NULL), Const(NULL)).holds({})
        assert not Comparison(Const(NULL), Const(1)).holds({})
        assert Comparison(Const(NULL), Const(1), positive=False).holds({})
