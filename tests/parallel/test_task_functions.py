"""The worker-side task functions, executed in-process.

In production these run inside forked pool workers; each is a pure
function of (context, task argument), so the suite can call them
directly and check the per-task contract: result shapes, enumeration
order, and the :class:`TaskTruncated` marker carrying a well-formed
partial result when the task-local budget trips.
"""

from __future__ import annotations

import pickle

import pytest

from repro.parallel import pool as pool_module
from repro.parallel.bounded import _check_chunk, _longest_chunk
from repro.parallel.frontier import _expand_batch, _FrontierContext, signature_key
from repro.parallel.pool import BudgetSpec, TaskTruncated, _run_task, _worker_execute, _worker_init
from repro.parallel.scenarios import _search_cap
from repro.core.scenarios import minimum_scenario
from repro.runtime.faults import FaultPlan
from repro.transparency import SearchBudget, check_h_bounded
from repro.workflow import Instance, RunGenerator
from repro.workflow.statespace import StateSpaceExplorer
from repro.workloads import chain_program, churn_program

ZERO_WALL = BudgetSpec(wall_remaining=0.0)


class TestExpandBatch:
    def test_expansions_match_the_sequential_frontier(self):
        program = chain_program(2)
        ctx = _FrontierContext(program, "isomorphic")
        initial = Instance.empty(program.schema.schema)
        [entry] = _expand_batch(ctx, ([(1, initial, None)], None))
        seq = StateSpaceExplorer(program).explore(1)
        assert [event for event, _, _, _ in entry] == [
            s.path[0] for s in seq.states[1:]
        ]
        assert [successor for _, successor, _, _ in entry] == [
            s.instance for s in seq.states[1:]
        ]
        for _, successor, key, index in entry:
            assert key == signature_key(successor) or key is None
            assert index is None  # no event index without a parent index

    def test_zero_budget_returns_truncation_marker(self):
        program = chain_program(2)
        ctx = _FrontierContext(program, "exact")
        initial = Instance.empty(program.schema.schema)
        result = _expand_batch(ctx, ([(1, initial, None)], ZERO_WALL))
        assert isinstance(result, TaskTruncated)
        assert result.partial == []

    def test_context_pickles_by_reconstruction(self):
        ctx = _FrontierContext(chain_program(1), "none")
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.dedup == "none"
        assert clone.constants == ctx.constants


class TestBoundedChunks:
    def test_check_chunk_flags_violations_per_instance(self):
        program = chain_program(2)
        seq = check_h_bounded(
            program,
            "observer",
            1,
            SearchBudget(pool_extra=1, max_tuples_per_relation=1),
        )
        assert not seq.bounded and seq.witness is not None
        [violation] = _check_chunk(
            (program, "observer", 1), ([(1, seq.witness.initial)], None)
        )
        assert violation is not None
        assert list(violation.events) == list(seq.witness.events)
        empty = Instance.empty(program.schema.schema)
        [ok] = _check_chunk((program, "observer", 3), ([(1, empty)], None))
        assert ok is None

    def test_longest_chunk_reports_lengths(self):
        program = chain_program(2)
        initial = Instance.empty(program.schema.schema)
        [length] = _longest_chunk((program, "observer", 3), ([(1, initial)], None))
        assert length == 3

    def test_longest_chunk_short_circuits_past_max_h(self):
        program = chain_program(2)
        seq = check_h_bounded(
            program,
            "observer",
            1,
            SearchBudget(pool_extra=1, max_tuples_per_relation=1),
        )
        assert seq.witness is not None
        [length] = _longest_chunk(
            (program, "observer", 1), ([(1, seq.witness.initial)], None)
        )
        assert length > 1  # reported as merely "too long", not maximal

    @pytest.mark.parametrize("task", [_check_chunk, _longest_chunk])
    def test_zero_budget_returns_truncation_marker(self, task):
        program = chain_program(2)
        initial = Instance.empty(program.schema.schema)
        result = task((program, "observer", 1), ([(1, initial)], ZERO_WALL))
        assert isinstance(result, TaskTruncated)
        assert result.partial == []


class TestSearchCap:
    def test_cap_at_optimum_finds_it_and_below_returns_none(self):
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        best = minimum_scenario(run, "observer")
        assert best is not None
        found = _search_cap((run, "observer"), (len(best), None))
        assert found is not None and len(found) == len(best)
        assert _search_cap((run, "observer"), (len(best) - 1, None)) is None

    def test_zero_budget_returns_truncation_marker(self):
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        result = _search_cap((run, "observer"), (3, ZERO_WALL))
        assert isinstance(result, TaskTruncated)


def _add(ctx, arg):
    return ctx + arg


class TestWorkerEntryPoints:
    def test_init_installs_state_and_execute_uses_it(self):
        saved = pool_module._WORKER_STATE
        try:
            _worker_init(pickle.dumps((_add, 10, None)))
            assert _worker_execute((0, 5)) == 15
        finally:
            pool_module._WORKER_STATE = saved

    def test_injected_faults_become_failure_markers(self):
        crash = _run_task((_add, 10, FaultPlan(seed=0, crash_rate=1.0)), (0, 5))
        assert (crash.kind, crash.seq) == ("crash", 0)
        starve = _run_task((_add, 10, FaultPlan(seed=0, transient_rate=1.0)), (1, 5))
        assert (starve.kind, starve.seq) == ("transient", 1)
        assert _run_task((_add, 10, None), (2, 5)) == 15
