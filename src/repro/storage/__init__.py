"""Pluggable run-record storage beneath the hosted-run service.

See :mod:`repro.storage.backend` for the protocol and the memory/file
backends, :mod:`repro.storage.segment` for the CRC-framed segmented
log, and :mod:`repro.storage.sqlitestore` for the sqlite backend.
``docs/STORAGE.md`` documents the record format, the compaction and
eviction lifecycles, and the durability matrix.
"""

from __future__ import annotations

from .backend import (
    CompactionStats,
    DurabilityPolicy,
    FileBackend,
    MemoryBackend,
    RecordJournal,
    RunStore,
    StorageBackend,
    StorageCorruptionError,
    StorageError,
    compact_records,
    open_backend,
)
from .segment import SegmentBackend
from .sqlitestore import SqliteBackend

__all__ = [
    "CompactionStats",
    "DurabilityPolicy",
    "FileBackend",
    "MemoryBackend",
    "RecordJournal",
    "RunStore",
    "SegmentBackend",
    "SqliteBackend",
    "StorageBackend",
    "StorageCorruptionError",
    "StorageError",
    "compact_records",
    "open_backend",
]
