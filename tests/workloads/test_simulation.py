"""Tests for the policy-driven simulator."""

import pytest

from repro.workloads.simulation import (
    PeerPolicy,
    SimulationResult,
    Simulator,
    fact_goal,
    simulate_until,
)
from repro.workflow import execute
from repro.workloads import chain_program, hiring_program


class TestPeerPolicy:
    def test_weighted_choice(self, hiring):
        import random

        from repro.workflow import Instance, applicable_events

        instance = Instance.empty(hiring.schema.schema)
        candidates = list(applicable_events(hiring, instance, peers=["hr"]))
        policy = PeerPolicy({"clear": 1.0})
        assert policy.choose(candidates, random.Random(0)) is not None

    def test_zero_weights_disable(self, hiring):
        import random

        from repro.workflow import Instance, applicable_events

        instance = Instance.empty(hiring.schema.schema)
        candidates = list(applicable_events(hiring, instance, peers=["hr"]))
        policy = PeerPolicy({"clear": 0.0, "hire": 0.0})
        assert policy.choose(candidates, random.Random(0)) is None

    def test_inactive_peer_idles(self, hiring):
        import random

        from repro.workflow import Instance, applicable_events

        instance = Instance.empty(hiring.schema.schema)
        candidates = list(applicable_events(hiring, instance, peers=["hr"]))
        policy = PeerPolicy(activity=0.0)
        assert policy.choose(candidates, random.Random(0)) is None

    def test_custom_chooser(self, hiring):
        import random

        from repro.workflow import Instance, applicable_events

        instance = Instance.empty(hiring.schema.schema)
        candidates = list(applicable_events(hiring, instance, peers=["hr"]))
        policy = PeerPolicy(chooser=lambda events, rng: events[0])
        assert policy.choose(candidates, random.Random(0)) is candidates[0]


class TestSimulator:
    def test_produces_valid_run(self, hiring):
        result = Simulator(hiring, seed=1).run(max_events=20)
        replayed = execute(hiring, result.run.events)
        assert replayed.final_instance == result.run.final_instance

    def test_goal_stops_simulation(self, hiring):
        result = simulate_until(hiring, "Hire", max_events=200, seed=2)
        assert result.stopped_by_goal
        assert result.run.final_instance.keys("Hire")

    def test_unreachable_goal_runs_to_cap_or_deadlock(self):
        program = chain_program(1)
        simulator = Simulator(program, seed=0)
        result = simulator.run(max_events=10, stop=fact_goal("S0", count=5))
        assert not result.stopped_by_goal  # only one S0 fact ever exists

    def test_deadlock_detected(self):
        from repro.workflow.parser import parse_program

        program = parse_program(
            """
            peers p
            relation R(K)
            view R@p(K)
            [once] +R@p(0) :- not Key[R]@p(0)
            """
        )
        result = Simulator(program, seed=0).run(max_events=50)
        assert len(result.run) == 1  # fires once, then deadlocks

    def test_events_by_peer_counts(self, hiring):
        result = Simulator(hiring, seed=3).run(max_events=15)
        assert sum(result.events_by_peer.values()) == len(result.run)

    def test_policies_shape_the_run(self, hiring):
        # Silence everyone but hr: only 'clear' events can happen
        # ('hire' needs Approved, which silenced peers cannot produce).
        policies = {
            "cfo": PeerPolicy(activity=0.0),
            "ceo": PeerPolicy(activity=0.0),
        }
        result = Simulator(hiring, policies, seed=4).run(max_events=10)
        assert {e.rule.name for e in result.run.events} <= {"clear"}

    def test_random_scheduling(self, hiring):
        result = Simulator(hiring, seed=5, scheduling="random").run(max_events=12)
        assert len(result.run) > 0

    def test_unknown_scheduling_rejected(self, hiring):
        with pytest.raises(ValueError):
            Simulator(hiring, scheduling="lifo")

    def test_reproducible(self, hiring):
        a = Simulator(hiring, seed=9).run(max_events=15)
        b = Simulator(hiring, seed=9).run(max_events=15)
        assert [e.rule.name for e in a.run.events] == [e.rule.name for e in b.run.events]
