"""E19: the sharded cluster — scale-out throughput and failover cost.

Two questions, one per table:

* **E19** — what does the router cost, and what does a shard buy?
  The cluster loadgen drives a router fronting 1, 2 and 4 real worker
  subprocesses and the table compares events/sec and tail latency with
  the E14 single-process baseline (same workload, no router, no
  replication, no subprocess hop).  A 1-shard cluster prices the
  router indirection itself; extra shards buy throughput only to the
  extent runs hash onto different workers (per-run FIFO stays the
  serialization point, exactly as in E14).

* **E19b** — recovery time after a kill.  With replication on, one
  worker is SIGKILLed while its runs are live; the table reports how
  long a client is stalled before the same run answers again, for both
  failover modes (``restart`` respawns over the surviving store,
  ``promote`` repoints the name at the follower).  The stall is the
  health-check detection window plus reconcile plus (restart only)
  worker startup — none of it is paid by runs on other shards.

``BENCH_E19_SCALE=smoke`` shrinks the workloads for CI and drops the
shape assertions (shared runners cannot price anything).  The full run
archives its measurements in ``BENCH_E19.json`` at the repo root (the
committed baseline).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

from repro.analysis import print_table
from repro.service import ServiceServer, WorkflowService, run_loadgen
from repro.service.loadgen import ServiceClient
from repro.cluster import (
    ClusterRouter,
    RouterServer,
    ShardSupervisor,
    run_cluster_loadgen,
)
from repro.workflow import program_to_text
from repro.workloads import churn_program

SMOKE = os.environ.get("BENCH_E19_SCALE", "").strip().lower() == "smoke"
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_E19.json"

RUNS = 8 if SMOKE else 24
EVENTS_PER_RUN = 8 if SMOKE else 15
SHARD_COUNTS = (1, 2) if SMOKE else (1, 2, 4)

_baseline: dict = {}


async def _with_cluster(shard_count, failover, body, replicate=True):
    """Run *body(router_server, supervisor, router)* against a live cluster."""
    with tempfile.TemporaryDirectory(prefix="bench-e19-") as tmp:
        supervisor = ShardSupervisor(
            program_to_text(churn_program()),
            Path(tmp) / "cluster",
            shard_count=shard_count,
            replicate=replicate,
            failover=failover,
            health_interval=0.2,
        )
        await supervisor.start()
        router = ClusterRouter(supervisor.node_addresses(), supervisor=supervisor)
        supervisor.attach_router(router)
        server = RouterServer(router, port=0)
        await server.start()
        try:
            return await body(server, supervisor, router)
        finally:
            await server.aclose()
            await supervisor.stop()


def _drive_single_process():
    """The E14 baseline: same workload, no router, no subprocesses."""

    async def main():
        service = WorkflowService(churn_program())
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await run_loadgen(
                service.program,
                server.host,
                server.port,
                runs=RUNS,
                events_per_run=EVENTS_PER_RUN,
                seed=RUNS,
                verify=False,
            )
        finally:
            await server.stop()

    return asyncio.run(main())


def _drive_cluster(shard_count, clients=1, batch_size=1):
    async def main():
        async def body(server, supervisor, router):
            host, port = server.address
            return await run_cluster_loadgen(
                churn_program(),
                host,
                port,
                runs=RUNS,
                events_per_run=EVENTS_PER_RUN,
                seed=RUNS,
                verify=False,
                audit=False,
                clients=clients,
                batch_size=batch_size,
            )

        return await _with_cluster(shard_count, "restart", body, replicate=False)

    return asyncio.run(main())


def test_e19_scaleout_throughput(benchmark):
    rows = []
    json_rows = []
    base = _drive_single_process()
    assert base.clean
    rows.append(
        [
            "in-process (E14)",
            base.applied,
            f"{base.events_per_second:.0f}",
            f"{base.p50_ms:.2f}",
            f"{base.p99_ms:.2f}",
        ]
    )
    json_rows.append(
        {
            "config": "single-process",
            "applied": base.applied,
            "events_per_second": round(base.events_per_second, 1),
            "p50_ms": round(base.p50_ms, 3),
            "p99_ms": round(base.p99_ms, 3),
        }
    )
    for shards in SHARD_COUNTS:
        report = _drive_cluster(shards)
        assert report.clean
        assert report.base.applied == RUNS * EVENTS_PER_RUN
        rows.append(
            [
                f"{shards} shard(s)",
                report.base.applied,
                f"{report.base.events_per_second:.0f}",
                f"{report.base.p50_ms:.2f}",
                f"{report.base.p99_ms:.2f}",
            ]
        )
        json_rows.append(
            {
                "config": f"cluster-{shards}",
                "shards": shards,
                "applied": report.base.applied,
                "events_per_second": round(report.base.events_per_second, 1),
                "p50_ms": round(report.base.p50_ms, 3),
                "p99_ms": round(report.base.p99_ms, 3),
            }
        )
    # The client-count axis: the same top-end cluster driven through a
    # fixed pool of 4 connections (runs partitioned round-robin), with
    # and without chunked submit_batch submission, instead of one
    # connection per run.
    for clients, batch in ((4, 1), (4, 8)):
        report = _drive_cluster(SHARD_COUNTS[-1], clients=clients, batch_size=batch)
        assert report.clean
        assert report.base.applied == RUNS * EVENTS_PER_RUN
        rows.append(
            [
                f"{SHARD_COUNTS[-1]} shard(s), {clients} clients, batch {batch}",
                report.base.applied,
                f"{report.base.events_per_second:.0f}",
                f"{report.base.p50_ms:.2f}",
                f"{report.base.p99_ms:.2f}",
            ]
        )
        json_rows.append(
            {
                "config": f"cluster-{SHARD_COUNTS[-1]}-c{clients}-b{batch}",
                "shards": SHARD_COUNTS[-1],
                "clients": clients,
                "batch_size": batch,
                "applied": report.base.applied,
                "events_per_second": round(report.base.events_per_second, 1),
                "p50_ms": round(report.base.p50_ms, 3),
                "p99_ms": round(report.base.p99_ms, 3),
                "per_client_events_per_second": [
                    round(stats.events_per_second, 1)
                    for stats in report.base.client_stats
                ],
            }
        )
    print_table(
        "E19: cluster throughput vs the E14 single-process baseline",
        ["config", "events", "events/s", "p50 ms", "p99 ms"],
        rows,
    )
    _baseline["scaleout"] = json_rows
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _measure_recovery(failover):
    """Seconds a client of the killed shard is stalled before it answers."""

    async def main():
        async def body(server, supervisor, router):
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                # One run per shard so some run is owned by the victim.
                run_ids = {}
                index = 0
                while len(run_ids) < len(supervisor.shards):
                    run_id = f"rcv-{index}"
                    index += 1
                    owner = router.owner(run_id)
                    if owner not in run_ids:
                        run_ids[owner] = run_id
                        response = await client.request(op="open", run=run_id)
                        assert response.get("ok"), response
                victim = sorted(run_ids)[0]
                await supervisor.kill_shard(victim)
                killed_at = time.perf_counter()
                # The stall a client sees: keep asking the dead run's
                # owner for a view until the failover answers.
                deadline = killed_at + 30.0
                while True:
                    response = await client.request(
                        op="view", run=run_ids[victim], peer="maker"
                    )
                    if response.get("ok"):
                        return time.perf_counter() - killed_at
                    assert time.perf_counter() < deadline, response
                    await asyncio.sleep(0.02)
            finally:
                await client.close()

        return await _with_cluster(2, failover, body)

    return asyncio.run(main())


def test_e19b_recovery_after_kill(benchmark):
    rows = []
    json_rows = []
    for failover in ("restart", "promote"):
        stall_s = _measure_recovery(failover)
        rows.append([failover, f"{stall_s * 1e3:.0f}"])
        json_rows.append({"failover": failover, "stall_ms": round(stall_s * 1e3, 1)})
        if not SMOKE:
            # Detection (0.2s health interval) + reconcile + respawn must
            # stay interactive — seconds, not minutes.
            assert stall_s < 15.0, f"{failover} failover stalled {stall_s:.1f}s"
    print_table(
        "E19b: client-visible stall after SIGKILL of the owning shard",
        ["failover", "stall ms"],
        rows,
    )
    _baseline["recovery"] = json_rows
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e19_write_baseline(benchmark):
    """Archive the measured numbers (full runs only — smoke sizes would
    overwrite the committed baseline with non-comparable figures)."""
    if not SMOKE and _baseline:
        BASELINE_PATH.write_text(
            json.dumps({"experiment": "E19", **_baseline}, indent=2) + "\n"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
