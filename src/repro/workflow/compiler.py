"""Closure-compiled evaluation of planned FCQ¬ queries.

The planner (:mod:`repro.workflow.planner`) interprets a
:class:`~repro.workflow.planner.QueryPlan` literal by literal: every
candidate tuple pays generic ``_unify`` calls, per-step valuation-dict
copies and a recursive generator frame per join depth.  This module
removes that interpretation overhead by *compiling* each plan into a
specialized Python function:

* the join loops are unrolled — one nested ``for``/``if`` block per
  positive literal, in the order the planner's selectivity heuristic
  chose for the instance at hand;
* key probes and signature-index probes are inlined as plain ``dict``
  operations against the raw structures exposed by
  :meth:`~repro.workflow.instance.Instance.rows` and
  :meth:`~repro.workflow.instance.Instance.signature_index`, fetched
  once in the function prologue;
* negative literals and comparisons are emitted at the earliest join
  depth that binds their variables (the planner's push-down schedule),
  as inline conditions;
* valuations live in locals — one ``x{i}`` per query variable — and a
  result dict is built only for each *emitted* valuation, exactly like
  the interpreter's final ``dict(valuation)``.

Null semantics come for free: ``⊥`` is the identity-equality singleton
:data:`~repro.workflow.domain.NULL`, so the plain ``==``/``!=``/``in``
probes the generated code uses agree with ``_unify`` and
:meth:`Comparison.holds` on every value of the domain.

Because the planner picks the join order per instance (selectivity
depends on relation cardinalities), one plan may execute under several
orders over its lifetime; each distinct order is compiled once and
cached on the plan (``plan.compiled``), which itself lives in the
planner's ``WeakKeyDictionary`` — so closures die with their query.

The property suite in ``tests/workflow/test_planner_equivalence.py``
asserts compiled ≡ planned ≡ naive valuation multisets on random
schemas, instances and queries.
"""

from __future__ import annotations

from time import perf_counter, perf_counter_ns
from typing import Callable, Dict, Iterator, List, Tuple as PyTuple

from .domain import NULL
from .evalstats import EVAL_STATS
from .instance import Instance
from .queries import Comparison, Const, KeyLiteral, Query, RelLiteral, Var

__all__ = ["compile_order", "evaluate", "run_compiled"]

#: A compiled closure: ``fn(inst) -> (valuation dicts, candidate count)``.
CompiledQuery = Callable[[Instance], PyTuple[List[Dict[Var, object]], int]]


class _CodeGen:
    """Accumulates the source and environment of one specialized function."""

    def __init__(self) -> None:
        #: exec() globals: NULL plus captured constants / Var objects /
        #: relation names / attribute tuples.  No builtins: the
        #: generated code only uses literals and bound methods.
        self.env: Dict[str, object] = {"__builtins__": {}, "NULL": NULL}
        self.prologue: List[str] = []
        self.body: List[str] = []
        self.indent = 0
        self._serial = 0
        #: Var -> the local name holding its value once bound.
        self.locals: Dict[Var, str] = {}
        #: relation name -> local name of its rows dict.
        self._rows: Dict[str, str] = {}
        #: (relation name, positions) -> local name of its sig index.
        self._sigs: Dict[PyTuple[str, PyTuple[int, ...]], str] = {}

    # -- naming -------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self._serial += 1
        return f"{prefix}{self._serial}"

    def capture(self, prefix: str, value: object) -> str:
        """Expose *value* to the generated code under a fresh global name."""
        name = self.fresh(prefix)
        self.env[name] = value
        return name

    def rows(self, relation: str) -> str:
        """Local name of *relation*'s rows dict (fetched in the prologue)."""
        local = self._rows.get(relation)
        if local is None:
            local = self.fresh("rows")
            self._rows[relation] = local
            name = self.capture("N", relation)
            self.prologue.append(f"{local} = inst.rows({name})")
        return local

    def sig(self, relation: str, positions: PyTuple[int, ...]) -> str:
        """Local name of the signature index (fetched in the prologue)."""
        key = (relation, positions)
        local = self._sigs.get(key)
        if local is None:
            local = self.fresh("sig")
            self._sigs[key] = local
            name = self.capture("N", relation)
            self.prologue.append(
                f"{local} = inst.signature_index({name}, {positions!r})"
            )
        return local

    # -- emission -----------------------------------------------------

    def stmt(self, text: str) -> None:
        self.body.append("    " * (self.indent + 1) + text)

    def block(self, header: str) -> None:
        """Open an ``if``/``for`` block; everything after nests inside."""
        self.stmt(header)
        self.indent += 1

    def term(self, term: object) -> str:
        """The expression for a (ground-by-now) term: constant or local."""
        if isinstance(term, Const):
            if term.value is NULL:
                return "NULL"
            return self.capture("K", term.value)
        return self.locals[term]

    def source(self, label: str) -> str:
        lines = ["def _q(inst):"]
        lines.append("    out = []")
        lines.append("    append = out.append")
        lines.append("    cand = 0")
        lines.extend("    " + line for line in self.prologue)
        lines.extend(self.body)
        lines.append("    return out, cand")
        return "\n".join(lines) + "\n"


def _emit_filter(gen: _CodeGen, flt: object) -> None:
    """One pushed-down filter as an inline guard at the current depth.

    Failure falls through (skips the rest of the enclosing block), which
    is exactly the interpreter's pruning of the partial valuation.
    """
    if isinstance(flt, Comparison):
        # NULL is an identity-equality singleton, so == / != agree with
        # the null-aware Comparison.holds on every domain value.
        op = "==" if flt.positive else "!="
        gen.block(f"if {gen.term(flt.left)} {op} {gen.term(flt.right)}:")
        return
    if isinstance(flt, KeyLiteral):
        rows = gen.rows(flt.view.name)
        gen.block(f"if {gen.term(flt.term)} not in {rows}:")
        return
    assert isinstance(flt, RelLiteral)
    rows = gen.rows(flt.view.name)
    probe = gen.fresh("f")
    values = ", ".join(gen.term(t) for t in flt.terms)
    attrs = gen.capture("A", flt.view.attributes)
    # contains_tuple: rows.get(values[0]) == Tuple(attrs, values); keys
    # are unique so membership is one probe at the target's key (a null
    # key is never stored and answers absent, like the interpreter).
    gen.stmt(f"{probe} = {rows}.get({gen.term(flt.terms[0])})")
    gen.block(
        f"if {probe} is None or {probe}.values != ({values},) "
        f"or {probe}.attributes != {attrs}:"
    )


def _emit_positions(gen: _CodeGen, step, tup: str, skip: PyTuple[int, ...]) -> None:
    """Checks and binds for a :class:`_RelStep`'s term positions.

    *skip* holds the positions already guaranteed by the probe that
    produced *tup* (the key probe's key position, or every probed
    position of a signature lookup).  Conditions are batched into one
    ``if`` until a variable bind interrupts them.
    """
    values = gen.fresh("u")
    conds: List[str] = []
    emitted_values = False

    def need_values() -> str:
        nonlocal emitted_values
        if not emitted_values:
            gen.stmt(f"{values} = {tup}.values")
            emitted_values = True
        return values

    def flush() -> None:
        if conds:
            gen.block("if " + " and ".join(conds) + ":")
            del conds[:]

    seen_here: Dict[Var, str] = {}
    for pos, term in enumerate(step.terms):
        if pos in skip:
            # Probed position: the dict lookup already guaranteed it,
            # but a *variable* term still needs its local if this is its
            # first binding (a key probe binds nothing by itself).
            if isinstance(term, Var) and term not in gen.locals:
                local = gen.fresh("x")
                flush()
                gen.stmt(f"{local} = {need_values()}[{pos}]")
                gen.locals[term] = local
                seen_here[term] = local
            continue
        if isinstance(term, Const):
            if term.value is NULL:
                conds.append(f"{need_values()}[{pos}] is NULL")
            else:
                conds.append(f"{need_values()}[{pos}] == {gen.term(term)}")
            continue
        bound = gen.locals.get(term)
        if bound is not None:
            conds.append(f"{need_values()}[{pos}] == {bound}")
            continue
        local = gen.fresh("x")
        flush()
        gen.stmt(f"{local} = {need_values()}[{pos}]")
        gen.locals[term] = local
        seen_here[term] = local
    flush()


def _emit_rel_step(gen: _CodeGen, step) -> None:
    """One positive relational literal as an unrolled probe or loop."""
    rows = gen.rows(step.name)
    key_position = step.key_position
    key_term = step.terms[key_position]
    key_bound = isinstance(key_term, Const) or key_term in gen.locals

    if key_bound:
        tup = gen.fresh("t")
        gen.stmt(f"{tup} = {rows}.get({gen.term(key_term)})")
        gen.block(f"if {tup} is not None:")
        gen.stmt("cand += 1")
        _emit_positions(gen, step, tup, skip=(key_position,))
        return

    probed: List[PyTuple[int, str]] = []
    for pos, value in step.const_items:
        term = step.terms[pos]
        probed.append((pos, "NULL" if value is NULL else gen.term(term)))
    for pos, var in step.var_items:
        local = gen.locals.get(var)
        if local is not None:
            probed.append((pos, local))

    tup = gen.fresh("t")
    if probed:
        # Same positions order as the interpreter's _candidates_for
        # (constants first, then bound variables), so both backends
        # share one materialized signature index per instance.
        positions = tuple(pos for pos, _ in probed)
        values = ", ".join(expr for _, expr in probed)
        sig = gen.sig(step.name, positions)
        gen.block(f"for {tup} in {sig}.get(({values},), ()):")
    else:
        gen.block(f"for {tup} in {rows}.values():")
    gen.stmt("cand += 1")
    _emit_positions(gen, step, tup, skip=tuple(pos for pos, _ in probed))


def _emit_key_step(gen: _CodeGen, step) -> None:
    """One positive key literal: membership test or key loop."""
    rows = gen.rows(step.name)
    term = step.term
    if isinstance(term, Const) or term in gen.locals:
        gen.block(f"if {gen.term(term)} in {rows}:")
        return
    local = gen.fresh("x")
    gen.block(f"for {local} in {rows}:")
    gen.stmt("cand += 1")
    gen.locals[term] = local


def compile_order(plan, ordered, schedule) -> CompiledQuery:
    """Compile one (plan, join order) pair into a specialized closure.

    *ordered* and *schedule* are the planner's per-instance join order
    and filter push-down schedule (``QueryPlan._schedule``).  The
    closure takes an instance and returns ``(valuations, candidates)``
    where *valuations* is the list of satisfying valuation dicts and
    *candidates* counts the tuples considered — the same number the
    interpreter's ``candidates`` profile counter accumulates.
    """
    started = perf_counter_ns()
    gen = _CodeGen()
    from .planner import _KeyStep  # deferred: planner imports this module

    # Which output variables each depth binds first.  Safety guarantees
    # every query variable occurs in some positive literal, and the
    # positive literals are exactly the plan steps, so the union over
    # depths covers the whole output valuation.
    bound: set = set()
    new_by_depth: List[List[Var]] = []
    for step in ordered:
        terms = (step.term,) if isinstance(step, _KeyStep) else step.terms
        fresh = sorted(
            {t for t in terms if isinstance(t, Var) and t not in bound},
            key=lambda v: v.name,
        )
        bound.update(fresh)
        new_by_depth.append(fresh)
    bind_depths = [d for d, fresh in enumerate(new_by_depth) if fresh]
    last_bind = bind_depths[-1] if bind_depths else None

    prefix = None
    for depth, step in enumerate(ordered):
        for flt in schedule[depth]:
            _emit_filter(gen, flt)
        if isinstance(step, _KeyStep):
            _emit_key_step(gen, step)
        else:
            _emit_rel_step(gen, step)
        fresh = new_by_depth[depth]
        if fresh and depth != last_bind:
            # Partial valuation shared by everything nested inside this
            # depth: built once per surviving candidate here, extended
            # by copy per emission.  ``{**prefix, ...}`` and ``.copy()``
            # reuse the stored hashes, so inner loops never re-hash the
            # outer keys — only the variables their own depth binds.
            nxt = gen.fresh("p")
            items = ", ".join(
                f"{gen.capture('V', var)}: {gen.locals[var]}" for var in fresh
            )
            if prefix is None:
                gen.stmt(f"{nxt} = {{{items}}}")
            else:
                gen.stmt(f"{nxt} = {{**{prefix}, {items}}}")
            prefix = nxt
    for flt in schedule[len(ordered)]:
        _emit_filter(gen, flt)
    tail = new_by_depth[last_bind] if last_bind is not None else []
    if prefix is None:
        items = ", ".join(
            f"{gen.capture('V', var)}: {gen.locals[var]}" for var in tail
        )
        gen.stmt(f"append({{{items}}})")
    else:
        val = gen.fresh("v")
        gen.stmt(f"{val} = {prefix}.copy()")
        for var in tail:
            gen.stmt(f"{val}[{gen.capture('V', var)}] = {gen.locals[var]}")
        gen.stmt(f"append({val})")

    label = plan.label or "query"
    source = gen.source(label)
    code = compile(source, f"<repro-compiled:{label}>", "exec")
    exec(code, gen.env)
    fn = gen.env["_q"]
    fn.__repro_source__ = source  # for tests and debugging
    elapsed = perf_counter_ns() - started
    plan.compile_ns += elapsed
    EVAL_STATS.closures_compiled += 1
    EVAL_STATS.compile_ns += elapsed
    return fn


def run_compiled(plan, inst: Instance) -> List[Dict[Var, object]]:
    """Evaluate *plan* on *inst* through its compiled closure.

    Chooses the join order exactly as the interpreter does (selectivity
    depends on the instance's cardinalities), then dispatches to the
    closure compiled for that order — generated on first use and cached
    on the plan.
    """
    start = perf_counter()
    plan.evals += 1
    EVAL_STATS.compiled_evals += 1
    try:
        ordered, schedule = plan._schedule(inst)
        index_of = {id(step): index for index, step in enumerate(plan.steps)}
        order = tuple(index_of[id(step)] for step in ordered)
        fn = plan.compiled.get(order)
        if fn is None:
            fn = compile_order(plan, ordered, schedule)
            plan.compiled[order] = fn
        out, candidates = fn(inst)
        plan.candidates += candidates
        EVAL_STATS.literals_scanned += candidates
        plan.emitted += len(out)
        EVAL_STATS.valuations_emitted += len(out)
        return out
    finally:
        plan.elapsed += perf_counter() - start


def evaluate(query: Query, inst: Instance) -> Iterator[Dict[Var, object]]:
    """Compiled evaluation of *query* on *inst* (the hottest path)."""
    from .planner import plan_for

    return iter(run_compiled(plan_for(query), inst))
