"""Sqlite storage backend: one database file, CRC-checked record rows.

Records live in a single table keyed by ``(run_id, seq)``; each row
stores the JSON payload alongside its crc32, verified on every read.
Sqlite's transactional machinery supplies what the segmented backend
builds by hand — atomic appends, atomic compaction (delete + re-insert
in one transaction), and durability mapped from the backend's
:class:`~repro.storage.backend.DurabilityPolicy` onto ``PRAGMA
synchronous``.

Injected disk faults get full parity with the segmented backend:

* ``enospc`` — nothing is written (the transaction rolls back);
* ``short_write`` — a truncated payload row is committed (undecodable
  JSON), then :class:`~repro.runtime.faults.DiskFault` is raised;
* ``corrupt`` — a byte-flipped payload row is committed with the
  *original* CRC (guaranteed mismatch), then the fault is raised;
* ``fsync`` — the row is rolled back before the fault is raised.

Short-write and corrupt damage is always the run's *trailing* row, so
:meth:`_SqliteStore.read` deletes it with a warning (the record was
never acknowledged) — truncate-and-recover, same contract as the
segment log.  A CRC mismatch on an interior row raises
:class:`~repro.storage.backend.StorageCorruptionError`.
"""

from __future__ import annotations

import json
import sqlite3
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple as PyTuple, Union

from ..runtime.faults import DiskFault, DiskFaultInjector
from .backend import (
    COMPACTIONS,
    COMPACTION_RECLAIMED,
    CompactionStats,
    DISK_FAULTS,
    DurabilityPolicy,
    RunStore,
    StorageBackend,
    StorageCorruptionError,
    StorageError,
    TAIL_RECOVERIES,
    compact_records,
)

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    run_id  TEXT    NOT NULL,
    seq     INTEGER NOT NULL,
    crc     INTEGER NOT NULL,
    payload TEXT    NOT NULL,
    PRIMARY KEY (run_id, seq)
)
"""

#: DurabilityPolicy.mode → PRAGMA synchronous.
_SYNCHRONOUS = {
    "none": "OFF",
    "flush": "NORMAL",
    "interval": "NORMAL",
    "fsync": "FULL",
}


def _corrupt_payload(payload: str) -> str:
    middle = len(payload) // 2
    flipped = chr((ord(payload[middle]) % 94) + 33)
    return payload[:middle] + flipped + payload[middle + 1 :]


class _SqliteStore(RunStore):
    def __init__(self, backend: "SqliteBackend", run_id: str) -> None:
        self.backend = backend
        self.run_id = run_id
        self.path = backend.path
        row = backend._connection.execute(
            "SELECT MAX(seq) FROM records WHERE run_id = ?", (run_id,)
        ).fetchone()
        self._next_seq = (row[0] + 1) if row[0] is not None else 0
        self._closed = False
        self._damaged_seq: Optional[int] = None

    def _repair(self) -> None:
        """Delete the fault-damaged trailing row before writing past it.

        A short-write/corrupt fault commits a bad row as the tail and
        raises, so the record was never acknowledged.  The next append
        must remove it first — otherwise the retry buries the damage
        mid-history, where :meth:`read` rightly refuses to heal it.
        """
        if self._damaged_seq is None:
            return
        connection = self.backend._connection
        connection.execute(
            "DELETE FROM records WHERE run_id = ? AND seq = ?",
            (self.run_id, self._damaged_seq),
        )
        connection.commit()
        TAIL_RECOVERIES.labels(backend=self.backend.name).inc()
        self._next_seq = self._damaged_seq
        self._damaged_seq = None

    def append(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise StorageError(f"store for run {self.run_id!r} is closed")
        self._repair()
        connection = self.backend._connection
        payload = json.dumps(record, sort_keys=True)
        crc = zlib.crc32(payload.encode("utf-8"))
        injector = self.backend.fault_injector
        fault = injector.on_append() if injector is not None else None
        if fault == "enospc":
            DISK_FAULTS.labels(kind="enospc").inc()
            raise DiskFault("enospc", f"injected ENOSPC appending to {self.run_id!r}")
        if fault == "short_write":
            # A torn row: undecodable payload, committed as the tail.
            connection.execute(
                "INSERT INTO records (run_id, seq, crc, payload) VALUES (?, ?, ?, ?)",
                (self.run_id, self._next_seq, crc, payload[: max(1, len(payload) // 2)]),
            )
            connection.commit()
            self._damaged_seq = self._next_seq
            self._next_seq += 1
            DISK_FAULTS.labels(kind="short_write").inc()
            raise DiskFault(
                "short_write", f"injected short write appending to {self.run_id!r}"
            )
        if fault == "corrupt":
            connection.execute(
                "INSERT INTO records (run_id, seq, crc, payload) VALUES (?, ?, ?, ?)",
                (self.run_id, self._next_seq, crc, _corrupt_payload(payload)),
            )
            connection.commit()
            self._damaged_seq = self._next_seq
            self._next_seq += 1
            DISK_FAULTS.labels(kind="corrupt").inc()
            raise DiskFault(
                "corrupt", f"injected corrupt trailing record in {self.run_id!r}"
            )
        connection.execute(
            "INSERT INTO records (run_id, seq, crc, payload) VALUES (?, ?, ?, ?)",
            (self.run_id, self._next_seq, crc, payload),
        )
        if injector is not None and self.backend.durability.wants_fsync(
            1, record.get("type") in ("snapshot", "end")
        ) and injector.on_fsync():
            connection.rollback()
            DISK_FAULTS.labels(kind="fsync").inc()
            raise DiskFault(
                "fsync",
                f"injected fsync failure on {self.run_id!r}; row rolled back",
            )
        connection.commit()
        self._next_seq += 1

    def read(self) -> PyTuple[List[Dict[str, Any]], List[str]]:
        connection = self.backend._connection
        rows = connection.execute(
            "SELECT seq, crc, payload FROM records WHERE run_id = ? ORDER BY seq",
            (self.run_id,),
        ).fetchall()
        records: List[Dict[str, Any]] = []
        warnings: List[str] = []
        bad_tail: List[PyTuple[int, str]] = []
        for position, (seq, crc, payload) in enumerate(rows):
            problem: Optional[str] = None
            record: Optional[Dict[str, Any]] = None
            if zlib.crc32(payload.encode("utf-8")) != crc:
                problem = "CRC mismatch"
            else:
                try:
                    decoded = json.loads(payload)
                except json.JSONDecodeError:
                    problem = "undecodable payload"
                else:
                    if not isinstance(decoded, dict) or "type" not in decoded:
                        problem = "not a typed record"
                    else:
                        record = decoded
            if problem is not None:
                if position != len(rows) - 1:
                    raise StorageCorruptionError(
                        f"row seq={seq} of run {self.run_id!r} is damaged "
                        f"mid-history: {problem}"
                    )
                bad_tail.append((seq, problem))
            else:
                records.append(record)
        for seq, problem in bad_tail:
            connection.execute(
                "DELETE FROM records WHERE run_id = ? AND seq = ?",
                (self.run_id, seq),
            )
            connection.commit()
            TAIL_RECOVERIES.labels(backend=self.backend.name).inc()
            warnings.append(f"deleted invalid trailing row seq={seq}: {problem}")
            if seq == self._damaged_seq:
                self._next_seq = self._damaged_seq
                self._damaged_seq = None
        return records, warnings

    def sync(self) -> None:
        self.backend._connection.commit()

    def compact(self) -> CompactionStats:
        connection = self.backend._connection
        records, _ = self.read()
        kept = compact_records(records)
        bytes_before = self._payload_bytes()
        with connection:  # one transaction: delete + re-insert, atomic
            connection.execute(
                "DELETE FROM records WHERE run_id = ?", (self.run_id,)
            )
            for seq, record in enumerate(kept):
                payload = json.dumps(record, sort_keys=True)
                connection.execute(
                    "INSERT INTO records (run_id, seq, crc, payload) "
                    "VALUES (?, ?, ?, ?)",
                    (self.run_id, seq, zlib.crc32(payload.encode("utf-8")), payload),
                )
        self._next_seq = len(kept)
        self._damaged_seq = None  # compaction renumbered every row
        COMPACTIONS.labels(backend=self.backend.name).inc()
        COMPACTION_RECLAIMED.labels(backend=self.backend.name).inc(
            len(records) - len(kept)
        )
        self.backend.compactions += 1
        return CompactionStats(
            records_before=len(records),
            records_after=len(kept),
            bytes_before=bytes_before,
            bytes_after=self._payload_bytes(),
        )

    def _payload_bytes(self) -> int:
        row = self.backend._connection.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM records WHERE run_id = ?",
            (self.run_id,),
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._closed = True

    def record_count(self) -> int:
        row = self.backend._connection.execute(
            "SELECT COUNT(*) FROM records WHERE run_id = ?", (self.run_id,)
        ).fetchone()
        return int(row[0])

    def size_bytes(self) -> int:
        return self._payload_bytes()


class SqliteBackend(StorageBackend):
    """All runs in one stdlib-sqlite3 database file."""

    name = "sqlite"
    durable = True

    def __init__(
        self,
        path: Union[str, Path],
        durability: Union[str, DurabilityPolicy, None] = None,
        fault_injector: Optional[DiskFaultInjector] = None,
    ) -> None:
        self.path = Path(path)
        self.durability = DurabilityPolicy.parse(durability)
        self.fault_injector = fault_injector
        self.compactions = 0
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path))
        self._connection.execute(_SCHEMA)
        self._connection.execute(
            f"PRAGMA synchronous = {_SYNCHRONOUS[self.durability.mode]}"
        )
        self._connection.commit()

    def exists(self, run_id: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM records WHERE run_id = ? LIMIT 1", (run_id,)
        ).fetchone()
        return row is not None

    def store(self, run_id: str) -> _SqliteStore:
        return _SqliteStore(self, run_id)

    def run_ids(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT DISTINCT run_id FROM records ORDER BY run_id"
        ).fetchall()
        return [row[0] for row in rows]

    def delete(self, run_id: str) -> None:
        self._connection.execute(
            "DELETE FROM records WHERE run_id = ?", (run_id,)
        )
        self._connection.commit()

    def stats(self) -> Dict[str, Any]:
        count = self._connection.execute("SELECT COUNT(*) FROM records").fetchone()
        return {
            **super().stats(),
            "path": str(self.path),
            "runs": len(self.run_ids()),
            "records": int(count[0]),
            "compactions": self.compactions,
            "durability": self.durability.mode,
            "faults_injected": (
                dict(self.fault_injector.injected) if self.fault_injector else {}
            ),
        }

    def close(self) -> None:
        self._connection.commit()
        self._connection.close()
