"""Property-based tests of the substrate invariants (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workflow import (
    Event,
    RunGenerator,
    execute,
    normalize,
    parse_program,
    program_to_text,
    run_from_json,
    run_to_json,
)
from repro.workflow.engine import apply_event
from repro.workflow.enumerate import applicable_events
from repro.workloads.generators import OBSERVER, random_propositional_program

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

program_seeds = st.integers(0, 60)
run_seeds = st.integers(0, 60)
lengths = st.integers(1, 15)


def make_program(seed: int):
    return random_propositional_program(
        relations=5, rules=9, seed=seed, deletion_fraction=0.25
    )


class TestRunInvariants:
    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_generated_runs_revalidate(self, ps, rs, n):
        """Runs produced by the generator always re-execute."""
        program = make_program(ps)
        run = RunGenerator(program, seed=rs).random_run(n)
        replayed = execute(program, run.events)
        assert replayed.final_instance == run.final_instance

    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_instances_stay_valid(self, ps, rs, n):
        """Key constraints hold at every step of every run."""
        program = make_program(ps)
        run = RunGenerator(program, seed=rs).random_run(n)
        for instance in run.instances:
            for relation in program.schema.schema:
                keys = instance.keys(relation.name)
                assert len(set(keys)) == len(keys)

    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_views_are_functions_of_instances(self, ps, rs, n):
        """Equal instances give equal peer views (view determinism)."""
        program = make_program(ps)
        run = RunGenerator(program, seed=rs).random_run(n)
        schema = program.schema
        for i in range(len(run)):
            again = schema.view_instance(run.instance_after(i), OBSERVER)
            assert run.view_instance_at(OBSERVER, i) == again

    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_own_events_always_visible(self, ps, rs, n):
        program = make_program(ps)
        run = RunGenerator(program, seed=rs).random_run(n)
        for i, event in enumerate(run.events):
            if event.peer == OBSERVER:
                assert run.visible_at(OBSERVER, i)


class TestNormalFormProperties:
    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_normal_form_preserves_transitions(self, ps, rs, n):
        """Proposition 2.3: at every instance along a run, the successor
        instances reachable in P and in P^nf coincide."""
        program = make_program(ps)
        result = normalize(program)
        run = RunGenerator(program, seed=rs).random_run(min(n, 6))
        for i in range(min(len(run), 3)):
            instance = run.instance_before(i)
            original = {
                apply_event(program.schema, instance, event, None, False)
                for event in applicable_events(program, instance)
            }
            normalised = {
                apply_event(result.program.schema, instance, event, None, False)
                for event in applicable_events(result.program, instance)
            }
            assert original == normalised

    @SETTINGS
    @given(program_seeds)
    def test_normal_form_idempotent(self, ps):
        program = make_program(ps)
        once = normalize(program).program
        assert once.is_normal_form()
        twice = normalize(once).program
        assert [repr(r.body) for r in twice] == [repr(r.body) for r in once]


class TestSerializationProperties:
    @SETTINGS
    @given(program_seeds)
    def test_program_text_roundtrip(self, ps):
        program = make_program(ps)
        text = program_to_text(program)
        reparsed = parse_program(text)
        assert [repr(r) for r in reparsed] == [repr(r) for r in program]
        assert program_to_text(reparsed) == text

    @SETTINGS
    @given(program_seeds, run_seeds, lengths)
    def test_run_json_roundtrip(self, ps, rs, n):
        program = make_program(ps)
        run = RunGenerator(program, seed=rs).random_run(n)
        replayed = run_from_json(program, run_to_json(run))
        assert replayed.final_instance == run.final_instance
        assert len(replayed) == len(run)
