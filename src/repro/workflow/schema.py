"""Relation and database schemas.

A relation schema is a relation symbol with a sequence of distinct
attributes; following the paper, every relation is equipped with a unique
single-attribute key ``K``, which we fix to be the *first* attribute of
the relation.  A database schema is a finite set of relation schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Sequence, Tuple as PyTuple

from .errors import SchemaError

#: Conventional name for the key attribute (the paper calls it K).
KEY_ATTRIBUTE = "K"


@dataclass(frozen=True)
class Relation:
    """A relation schema ``R`` with attribute sequence ``att(R)``.

    The first attribute is the key ``K``.  Attributes must be distinct
    non-empty strings.

    >>> R = Relation("Assign", ("K", "emp", "proj"))
    >>> R.key_attribute
    'K'
    >>> R.arity
    3
    """

    name: str
    attributes: PyTuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name} must have at least the key attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name} has duplicate attributes: {self.attributes}")
        if not all(isinstance(a, str) and a for a in self.attributes):
            raise SchemaError(f"relation {self.name} has invalid attribute names")
        object.__setattr__(self, "attributes", tuple(self.attributes))

    @property
    def key_attribute(self) -> str:
        """The key attribute ``K`` (the first attribute)."""
        return self.attributes[0]

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def nonkey_attributes(self) -> PyTuple[str, ...]:
        return self.attributes[1:]

    def position(self, attribute: str) -> int:
        """The index of *attribute* in ``att(R)``."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(f"relation {self.name} has no attribute {attribute!r}") from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


def proposition(name: str) -> Relation:
    """A propositional relation: unary, holding only its key.

    The paper uses propositions as syntactic sugar for unary relations
    whose single fact has key ``0``.
    """
    return Relation(name, (KEY_ATTRIBUTE,))


@dataclass(frozen=True)
class Schema:
    """A database schema ``D``: a finite set of relation schemas.

    >>> D = Schema([Relation("R", ("K", "A")), proposition("OK")])
    >>> sorted(D.relation_names)
    ['OK', 'R']
    """

    relations: PyTuple[Relation, ...]
    _by_name: Dict[str, Relation] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, relations: Iterable[Relation]) -> None:
        rels = tuple(relations)
        names = [r.name for r in rels]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate relation names in schema: {names}")
        object.__setattr__(self, "relations", rels)
        object.__setattr__(self, "_by_name", {r.name: r for r in rels})

    @property
    def relation_names(self) -> PyTuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema has no relation named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def max_arity(self) -> int:
        """The maximum arity of a relation in the schema (0 if empty)."""
        return max((r.arity for r in self.relations), default=0)

    def extend(self, extra: Iterable[Relation]) -> "Schema":
        """A new schema with the relations of this one plus *extra*."""
        return Schema(tuple(self.relations) + tuple(extra))

    def __repr__(self) -> str:
        return "Schema[" + ", ".join(repr(r) for r in self.relations) + "]"
