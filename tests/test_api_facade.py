"""The stable facade: ``repro.api`` is snapshot-tested against review.

``tests/api_surface.txt`` is the reviewed public surface, one name per
line, sorted.  Changing the facade means regenerating the snapshot —
``python -c "import repro.api; print('\\n'.join(sorted(repro.api.__all__)))"``
— so additions and removals always show up as a diff.  CI runs this
module in its own job and fails on drift.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.api as api

SNAPSHOT = Path(__file__).parent / "api_surface.txt"


def test_surface_matches_snapshot():
    recorded = SNAPSHOT.read_text().split()
    assert sorted(api.__all__) == recorded, (
        "repro.api.__all__ diverged from tests/api_surface.txt; "
        "if the change is deliberate, regenerate the snapshot"
    )


def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_facade_reexports_not_redefines():
    # Every name is defined elsewhere; the facade owns nothing.
    for name in api.__all__:
        obj = getattr(api, name)
        module = getattr(obj, "__module__", None)
        if module is not None and not name[0].isupper():
            assert module != "repro.api", name


@pytest.mark.parametrize(
    "name",
    [
        "parse_program",
        "RunGenerator",
        "explain_run",
        "minimum_scenario",
        "synthesize_view_program",
        "audit_program",
        "WorkflowService",
        "METRICS",
        "ProvenanceLog",
        "capture_spans",
        "run_provenance",
        "ERROR_CODES",
        "PROTOCOL_VERSION",
    ],
)
def test_documented_entry_points_present(name):
    assert name in api.__all__


def test_quickstart_from_the_docstring_runs(approval):
    # The four-line example in docs/API.md and the module docstring.
    from repro.api import RunGenerator, explain_run

    run = RunGenerator(approval, seed=0).random_run(6)
    text = explain_run(run, approval.schema.peers[0]).to_text()
    assert "Explanation" in text
