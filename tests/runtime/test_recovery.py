"""Crash-recovery equivalence: a crashed-and-recovered execution must
reach the same final instance as an uninterrupted one."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faults import CrashFault, FaultInjector, FaultPlan
from repro.runtime.journal import JournalWriter, MemorySink, recover_run
from repro.runtime.supervisor import Supervisor
from repro.workflow import Event, RunGenerator, execute, instances_isomorphic
from repro.workloads import paper_examples


def run_with_recovery(program, events, plan, initial=None, max_crashes=10):
    """Drive *events* through supervised execution, recovering from the
    journal after every injected crash, until the run completes.

    Models the real deployment loop: the process dies (in-memory state
    is abandoned), a fresh process reads the journal, re-validates the
    prefix, and resumes from where the journal left off.
    """
    injector = FaultInjector(plan)
    sink = MemorySink()
    supervisor = Supervisor(
        program, journal=JournalWriter(sink), fault_injector=injector
    )
    crashes = 0
    applied_before = 0  # events applied in earlier (crashed) segments
    remaining = list(events)
    try:
        result = supervisor.execute(remaining, initial=initial)
        return result, crashes, applied_before + result.applied
    except CrashFault:
        crashes += 1
    while crashes <= max_crashes:
        # The journal sink survives the crash; everything else is rebuilt.
        recovered = recover_run(program, sink)
        assert recovered.status == "crashed"
        applied_before += recovered.events_replayed
        remaining = remaining[recovered.events_replayed :]
        sink = MemorySink()
        supervisor = Supervisor(
            program, journal=JournalWriter(sink), fault_injector=injector
        )
        try:
            result = supervisor.execute(remaining, initial=recovered.final_instance)
        except CrashFault:
            crashes += 1
            continue
        return result, crashes, applied_before + result.applied
    raise AssertionError("crash loop did not converge")


class TestDeterministicCrash:
    @pytest.mark.parametrize("crash_at", [0, 1, 2, 3])
    def test_crash_and_resume_matches_uninterrupted(self, approval, crash_at):
        events = [Event(approval.rule(name), {}) for name in "efgh"]
        baseline = execute(approval, events)
        plan = FaultPlan(crash_at_event=crash_at)

        injector = FaultInjector(plan)
        sink = MemorySink()
        supervisor = Supervisor(
            approval, journal=JournalWriter(sink), fault_injector=injector
        )
        with pytest.raises(CrashFault):
            supervisor.execute(events)

        recovered = recover_run(approval, sink)
        assert recovered.status == "crashed"
        assert not recovered.complete
        assert recovered.events_replayed == crash_at

        resumed = execute(
            approval,
            events[crash_at:],
            initial=recovered.final_instance,
            check_freshness=False,
        )
        assert resumed.final_instance == baseline.final_instance

    def test_crash_past_end_never_fires(self, approval):
        events = [Event(approval.rule(name), {}) for name in "efgh"]
        plan = FaultPlan(crash_at_event=99)
        result = Supervisor(approval, fault_injector=FaultInjector(plan)).execute(events)
        assert result.applied == 4
        assert not result.degraded

    def test_restarted_process_does_not_recrash(self, approval):
        """A crash fires once per index: the recovery attempt proceeds."""
        events = [Event(approval.rule(name), {}) for name in "efgh"]
        plan = FaultPlan(crash_at_event=2)
        result, crashes, applied = run_with_recovery(approval, events, plan)
        assert crashes == 1
        assert applied == 4
        assert result.applied == 2  # the two events after the crash point
        assert not result.degraded


class TestSeededCrashRecovery:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), steps=st.integers(1, 8))
    def test_recovery_equivalence_on_random_runs(self, seed, steps):
        """Seeded fault injection: recovered == uninterrupted, always."""
        program = paper_examples.hiring_program()
        baseline = RunGenerator(program, seed=seed).random_run(steps)
        if not baseline.events:
            return
        plan = FaultPlan(seed=seed, crash_rate=0.4)
        result, crashes, applied = run_with_recovery(program, baseline.events, plan)
        assert applied == len(baseline.events)
        assert not result.quarantined
        assert result.run.final_instance == baseline.final_instance
        assert instances_isomorphic(
            result.run.final_instance, baseline.final_instance
        )
        # The schedule is deterministic: rerunning crashes identically.
        _, crashes_again, _ = run_with_recovery(program, baseline.events, plan)
        assert crashes_again == crashes
