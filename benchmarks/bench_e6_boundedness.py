"""E6 (Theorem 5.10): deciding h-boundedness.

Regenerates the E6 table: the bounded-model-checking decision on the
chain family (whose exact bound is depth+1) and on paper programs.
Expected shape: the decision is exact (rejects h = depth, accepts
h = depth+1) and its cost grows exponentially with the schema size and
h, as the PSPACE bound allows.
"""

from __future__ import annotations

import pytest

from conftest import wall_time
from repro.analysis import print_table
from repro.transparency.bounded import SearchBudget, check_h_bounded, smallest_bound
from repro.workloads import chain_program, hiring_program, parallel_chains_program

TINY = SearchBudget(pool_extra=0, max_tuples_per_relation=1)
SMALL = SearchBudget(pool_extra=1, max_tuples_per_relation=1)
DEPTHS = [1, 2, 3]


@pytest.mark.parametrize("depth", DEPTHS)
def test_boundedness_decision(benchmark, depth):
    program = chain_program(depth)
    result = benchmark(lambda: check_h_bounded(program, "observer", depth + 1, TINY))
    assert result.bounded


def test_e6_table(benchmark):
    rows = []
    for depth in DEPTHS:
        program = chain_program(depth)
        reject = check_h_bounded(program, "observer", depth, TINY)
        accept = check_h_bounded(program, "observer", depth + 1, TINY)
        elapsed = wall_time(
            lambda: check_h_bounded(program, "observer", depth + 1, TINY), repeat=1
        )
        rows.append(
            [
                f"chain({depth})",
                depth + 1,
                not reject.bounded,
                accept.bounded,
                accept.instances_checked,
                f"{elapsed * 1e3:.0f}",
            ]
        )
        assert not reject.bounded and accept.bounded
    # Parallel chains: the bound stays per-visible-event.
    program = parallel_chains_program(2, 1)
    accept = check_h_bounded(program, "observer", 2, TINY)
    reject = check_h_bounded(program, "observer", 1, TINY)
    rows.append(
        ["2 || chains(1)", 2, not reject.bounded, accept.bounded,
         accept.instances_checked, "-"]
    )
    # The hiring workflow: the silent cfoOK->approve->hire path gives 3.
    hiring = hiring_program()
    rows.append(
        ["hiring (sue)", smallest_bound(hiring, "sue", 5, SMALL), True, True, "-", "-"]
    )
    print_table(
        "E6: h-boundedness decision (Theorem 5.10)",
        ["program", "exact h", "rejects h-1", "accepts h", "instances", "ms"],
        rows,
    )
    # Register with pytest-benchmark so the table runs under --benchmark-only.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
