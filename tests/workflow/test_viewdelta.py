"""Delta: per-transition touched-key summaries (the dataflow feed)."""

from __future__ import annotations

import pytest

from repro.dataflow import Delta
from repro.workflow import (
    Instance,
    RunGenerator,
    apply_event_with_delta,
    event_delta,
)
from repro.workloads.generators import churn_program, profile_program


def apply_delta_to_data(instance, delta):
    """Replay a delta against raw relation data (the cache's contract)."""
    data = {
        name: dict(instance.tuples_by_key(name))
        for name in delta.touched_relations()
    }
    for relation, changes in delta.changes.items():
        for key, (_, after) in changes.items():
            if after is None:
                data[relation].pop(key, None)
            else:
                data[relation][key] = after
    return data


class TestDelta:
    def test_insertion_delta(self):
        program = churn_program()
        run = RunGenerator(program, seed=0).random_run(1)
        event = run.events[0]
        instance, delta = apply_event_with_delta(
            program.schema, run.initial, event
        )
        assert instance == run.instances[0]
        assert not delta.is_empty()
        relation = next(iter(delta.touched_relations()))
        inserted = delta.inserted(relation)
        assert len(inserted) == 1
        before, after = next(iter(delta.changes[relation].values()))
        assert before is None and after is not None

    def test_deltas_are_complete_along_runs(self):
        """Replaying each event's delta reproduces the successor instance
        exactly — the property that makes O(|delta|) cache refresh sound."""
        program = churn_program()
        run = RunGenerator(program, seed=5).random_run(20)
        instance = run.initial
        for event, successor in zip(run.events, run.instances):
            delta = event_delta(instance, successor, event)
            patched = apply_delta_to_data(instance, delta)
            for relation in delta.touched_relations():
                assert patched[relation] == dict(
                    successor.tuples_by_key(relation)
                )
            # Untouched relations are untouched.
            for relation in program.schema.schema.relation_names:
                if relation not in delta.touched_relations():
                    assert dict(instance.tuples_by_key(relation)) == dict(
                        successor.tuples_by_key(relation)
                    )
            instance = successor

    def test_deletion_shows_up_as_removed_key(self):
        program = churn_program()
        for seed in range(20):
            run = RunGenerator(program, seed=seed).random_run(12)
            instance = run.initial
            for event, successor in zip(run.events, run.instances):
                delta = event_delta(instance, successor, event)
                if delta.deleted("Obj"):
                    (key,) = delta.deleted("Obj")
                    assert instance.has_key("Obj", key)
                    assert not successor.has_key("Obj", key)
                    return
                instance = successor
        pytest.fail("no deletion occurred in 20 seeded churn runs")

    def test_chase_merge_is_flagged_and_exact(self):
        """Null-filling merges rewrite the merged key in place, so the
        delta still covers the whole transition."""
        program = profile_program()
        for seed in range(40):
            run = RunGenerator(program, seed=seed).random_run(12)
            instance = run.initial
            for event, successor in zip(run.events, run.instances):
                delta = event_delta(instance, successor, event)
                if delta.chase_merged:
                    patched = apply_delta_to_data(instance, delta)
                    for relation in delta.touched_relations():
                        assert patched[relation] == dict(
                            successor.tuples_by_key(relation)
                        )
                    return
                instance = successor
        pytest.fail("no chase merge occurred in 40 seeded profile runs")

    def test_noop_delta_is_empty(self):
        program = churn_program()
        instance = Instance.empty(program.schema.schema)
        delta = Delta(changes={})
        assert delta.is_empty()
        assert delta.touched_relations() == ()
        assert apply_delta_to_data(instance, delta) == {}
