"""Subruns: subsequences of a run's events that again form runs.

A subrun of ``ρ`` is a run whose event sequence is a subsequence of
``e(ρ)`` (Section 3).  The instances along a subrun are generally
different from those of ``ρ``, and not every subsequence yields a
subrun — each event's body must still hold and its updates must still be
applicable when replayed.

Subsequences are represented by sorted tuples of indices into ``e(ρ)``;
:class:`EventSubsequence` wraps a run plus an index set and provides the
semiring operations of Section 4 (union as ``+``, intersection as
``*``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..workflow.events import Event
from ..workflow.runs import Run, RunView, replay


class EventSubsequence:
    """A subsequence of the events of a fixed run, as an index set.

    Supports the operations of Theorem 4.8: ``a + b`` (union of events)
    and ``a * b`` (intersection of events).

    >>> # sub = EventSubsequence(run, [0, 2])
    >>> # (sub + other).indices
    """

    __slots__ = ("run", "indices")

    def __init__(self, run: Run, indices: Iterable[int]) -> None:
        index_set = frozenset(indices)
        bad = [i for i in index_set if not 0 <= i < len(run)]
        if bad:
            raise IndexError(f"event indices out of range: {sorted(bad)}")
        self.run = run
        self.indices: FrozenSet[int] = index_set

    # ------------------------------------------------------------------
    # Semiring operations (Section 4)
    # ------------------------------------------------------------------

    def __add__(self, other: "EventSubsequence") -> "EventSubsequence":
        """Addition: the subsequence of events in either operand."""
        self._check_same_run(other)
        return EventSubsequence(self.run, self.indices | other.indices)

    def __mul__(self, other: "EventSubsequence") -> "EventSubsequence":
        """Multiplication: the subsequence of events in both operands."""
        self._check_same_run(other)
        return EventSubsequence(self.run, self.indices & other.indices)

    def _check_same_run(self, other: "EventSubsequence") -> None:
        if self.run is not other.run:
            raise ValueError("subsequences of different runs cannot be combined")

    def is_subsequence_of(self, other: "EventSubsequence") -> bool:
        return self.indices <= other.indices

    def is_strict_subsequence_of(self, other: "EventSubsequence") -> bool:
        return self.indices < other.indices

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def sorted_indices(self) -> PyTuple[int, ...]:
        return tuple(sorted(self.indices))

    def events(self) -> PyTuple[Event, ...]:
        """The events of the subsequence, in run order."""
        return tuple(self.run.events[i] for i in self.sorted_indices())

    def __len__(self) -> int:
        return len(self.indices)

    def __contains__(self, index: object) -> bool:
        return index in self.indices

    def __iter__(self) -> Iterator[int]:
        return iter(self.sorted_indices())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EventSubsequence)
            and self.run is other.run
            and self.indices == other.indices
        )

    def __hash__(self) -> int:
        return hash((id(self.run), self.indices))

    def __repr__(self) -> str:
        return f"EventSubsequence{self.sorted_indices()}"

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def to_subrun(self) -> Optional[Run]:
        """Replay the subsequence; the subrun, or None if it is not a run.

        The subrun starts from the same initial instance as the original
        run.  Freshness of head-only values is inherited from the
        original run and not re-checked.
        """
        return replay(self.run.program, self.events(), initial=self.run.initial)

    def yields_subrun(self) -> bool:
        return self.to_subrun() is not None


def full_subsequence(run: Run) -> EventSubsequence:
    """The subsequence containing every event of *run* (the ``1`` of the semiring)."""
    return EventSubsequence(run, range(len(run)))


def empty_subsequence(run: Run) -> EventSubsequence:
    """The empty subsequence ``ε`` (the ``0`` of the additive monoid)."""
    return EventSubsequence(run, ())


def visible_subsequence(run: Run, peer: str) -> EventSubsequence:
    """The subsequence of events of *run* visible at *peer*."""
    return EventSubsequence(run, run.visible_indices(peer))
