"""Differential equivalence: the parallel engines vs their sequential originals.

Every parallel entry point promises result-identity with its sequential
counterpart for every worker count.  This suite checks that promise
directly on the four wired surfaces — exploration, search, boundedness
checking and minimum-scenario search — over fixed workload families and
hypothesis-generated random programs, comparing the complete observable
results field by field (state streams, witness paths, stats,
boundedness verdicts, scenario sizes).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import is_scenario, minimum_scenario
from repro.parallel import (
    parallel_check_h_bounded,
    parallel_explore,
    parallel_find,
    parallel_minimum_scenario,
    parallel_smallest_bound,
)
from repro.transparency import SearchBudget, check_h_bounded, smallest_bound
from repro.workflow import RunGenerator
from repro.workflow.statespace import StateSpaceExplorer
from repro.workloads import (
    chain_program,
    churn_program,
    parallel_chains_program,
    random_propositional_program,
)

# workers=1 exercises the serial in-process pool (and, for the bounded
# and scenario engines, the explicit delegation back to sequential).
WORKERS = (1, 2, 4)

SETTINGS = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def assert_same_exploration(seq, par):
    """Field-by-field equality of two ExplorationResults."""
    assert [s.instance for s in seq.states] == [s.instance for s in par.states]
    assert [s.path for s in seq.states] == [s.path for s in par.states]
    assert seq.stats == par.stats
    assert (seq.truncated, seq.reason) == (par.truncated, par.reason)


def assert_same_verdict(seq, par):
    """Field-by-field equality of two BoundednessResults."""
    assert (
        seq.bounded,
        seq.h,
        seq.instances_checked,
        seq.exhausted,
        seq.truncated,
        seq.reason,
    ) == (
        par.bounded,
        par.h,
        par.instances_checked,
        par.exhausted,
        par.truncated,
        par.reason,
    )
    if seq.witness is None:
        assert par.witness is None
    else:
        assert par.witness is not None
        assert seq.witness.initial == par.witness.initial
        assert list(seq.witness.events) == list(par.witness.events)


class TestExploreEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("dedup", ["none", "exact", "isomorphic"])
    def test_chain_all_dedup_modes(self, dedup, workers):
        program = chain_program(3)
        seq = StateSpaceExplorer(program, dedup=dedup).explore(4)
        par = parallel_explore(program, 4, dedup=dedup, workers=workers)
        assert_same_exploration(seq, par)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_parallel_chains(self, workers):
        program = parallel_chains_program(2, 2)
        seq = StateSpaceExplorer(program).explore(3)
        par = parallel_explore(program, 3, workers=workers)
        assert_same_exploration(seq, par)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_max_states_cutoff(self, workers):
        program = parallel_chains_program(2, 2)
        full = StateSpaceExplorer(program).explore(3)
        cap = max(2, len(full.states) // 2)
        seq = StateSpaceExplorer(program).explore(3, max_states=cap)
        par = parallel_explore(program, 3, cap, workers=workers)
        assert len(par.states) == cap
        assert_same_exploration(seq, par)

    @given(seed=st.integers(0, 10_000))
    @SETTINGS
    def test_random_programs(self, seed):
        program = random_propositional_program(4, 6, seed=seed)
        seq = StateSpaceExplorer(program).explore(3, max_states=40)
        par = parallel_explore(program, 3, 40, workers=2)
        assert_same_exploration(seq, par)


class TestFindEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_witness_state_and_path(self, workers):
        program = chain_program(3)
        predicate = lambda instance: bool(instance.keys("S3"))  # noqa: E731
        seq = StateSpaceExplorer(program).find(predicate, 5)
        par = parallel_find(program, predicate, 5, workers=workers)
        assert seq is not None and par is not None
        assert seq.instance == par.instance
        assert seq.path == par.path

    @pytest.mark.parametrize("workers", WORKERS)
    def test_unreachable_is_none_in_both(self, workers):
        program = chain_program(3)
        predicate = lambda instance: bool(instance.keys("S3"))  # noqa: E731
        assert StateSpaceExplorer(program).find(predicate, 3) is None
        assert parallel_find(program, predicate, 3, workers=workers) is None

    @given(seed=st.integers(0, 10_000))
    @SETTINGS
    def test_random_programs(self, seed):
        program = random_propositional_program(4, 6, seed=seed)
        relation = program.schema.schema.relations[-1].name
        predicate = lambda instance: bool(instance.keys(relation))  # noqa: E731
        seq = StateSpaceExplorer(program).find(predicate, 3, max_states=40)
        par = parallel_find(program, predicate, 3, 40, workers=2)
        if seq is None:
            assert par is None
        else:
            assert par is not None
            assert seq.instance == par.instance
            assert seq.path == par.path


BUDGET = SearchBudget(pool_extra=1, max_tuples_per_relation=1, max_instances=30)


class TestBoundednessEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("h", [1, 3])
    def test_verdict_and_witness(self, h, workers):
        program = chain_program(2)
        seq = check_h_bounded(program, "observer", h, BUDGET)
        par = parallel_check_h_bounded(program, "observer", h, BUDGET, workers=workers)
        assert_same_verdict(seq, par)
        # The family is h-bounded exactly for h >= depth + 1 = 3.
        assert seq.bounded == (h >= 3)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_max_instances_cap_flips_exhausted_identically(self, workers):
        program = chain_program(2)
        budget = SearchBudget(pool_extra=1, max_tuples_per_relation=1, max_instances=3)
        seq = check_h_bounded(program, "observer", 3, budget)
        par = parallel_check_h_bounded(program, "observer", 3, budget, workers=workers)
        assert not seq.exhausted
        assert_same_verdict(seq, par)

    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("max_h", [2, 3])
    def test_smallest_bound(self, max_h, workers):
        program = chain_program(2)
        seq = smallest_bound(program, "observer", max_h, BUDGET)
        par = parallel_smallest_bound(program, "observer", max_h, BUDGET, workers=workers)
        assert seq == par
        # max_h=2 is below the family's bound of 3, so both say None.
        assert (seq is None) == (max_h < 3)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_smallest_bound_capped_enumeration(self, workers):
        program = chain_program(2)
        budget = SearchBudget(pool_extra=1, max_tuples_per_relation=1, max_instances=3)
        seq = smallest_bound(program, "observer", 3, budget)
        par = parallel_smallest_bound(program, "observer", 3, budget, workers=workers)
        assert seq == par

    @pytest.mark.parametrize("workers", WORKERS[1:])
    def test_anytime_wall_budget(self, workers):
        from repro.runtime import Budget, BudgetExceeded

        program = chain_program(2)
        with pytest.raises(BudgetExceeded):
            parallel_check_h_bounded(
                program, "observer", 1, BUDGET, Budget(wall_seconds=0.0), workers=workers
            )
        result = parallel_check_h_bounded(
            program,
            "observer",
            1,
            BUDGET,
            Budget(wall_seconds=0.0),
            True,
            workers=workers,
        )
        assert result.bounded and result.truncated and not result.exhausted
        assert result.instances_checked == 0


class TestScenarioEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("peer", ["observer", "auditor"])
    def test_optimal_size_matches(self, peer, workers):
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        seq = minimum_scenario(run, peer)
        par = parallel_minimum_scenario(run, peer, workers=workers)
        assert seq is not None and par is not None
        assert len(par) == len(seq)
        assert is_scenario(run, peer, par.indices)

    def test_workers_one_is_bit_identical(self):
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        seq = minimum_scenario(run, "observer")
        par = parallel_minimum_scenario(run, "observer", workers=1)
        assert par == seq

    @pytest.mark.parametrize("workers", WORKERS)
    def test_infeasible_cap_is_none_in_both(self, workers):
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        optimum = minimum_scenario(run, "observer")
        assert optimum is not None
        cap = len(optimum) - 1
        assert minimum_scenario(run, "observer", max_depth=cap) is None
        assert (
            parallel_minimum_scenario(run, "observer", max_depth=cap, workers=workers)
            is None
        )

    @pytest.mark.parametrize("workers", WORKERS)
    def test_cap_below_forced_events_is_none(self, workers):
        # The observing peer's own events are in every scenario; a cap
        # below their count is infeasible before any search happens.
        run = RunGenerator(churn_program(), seed=3).random_run(8)
        assert any(event.peer == "auditor" for event in run.events)
        assert minimum_scenario(run, "auditor", max_depth=0) is None
        assert (
            parallel_minimum_scenario(run, "auditor", max_depth=0, workers=workers)
            is None
        )

    @given(seed=st.integers(0, 10_000))
    @SETTINGS
    def test_random_runs(self, seed):
        program = random_propositional_program(4, 6, seed=seed)
        run = RunGenerator(program, seed=seed).random_run(7)
        seq = minimum_scenario(run, "p0")
        par = parallel_minimum_scenario(run, "p0", workers=2)
        assert seq is not None and par is not None
        assert len(par) == len(seq)
        assert is_scenario(run, "p0", par.indices)
