"""Tree-of-runs equivalence for view programs (Remark 5.2).

Soundness and completeness of a view program are stated over *linear*
runs: every view of a run of ``P`` is a run of ``P@p`` and vice versa.
Remark 5.2 points out this is weaker than what a peer might expect: a
view program may offer a transition (e.g. ``+Hire@ω(x) :- Cleared@ω(x)``)
that is possible in *some* matching run of ``P`` but not in *every* one,
because it also depends on hidden state.  The stronger requirement —
equivalence of the *trees* of runs as seen by the peer — holds for
transparent programs; the paper omits the formal development, and this
module supplies a bounded, executable version of it.

The *view tree* of depth ``d`` of a system at a state is the set of
pairs ``(observation, subtree)`` over all observable transitions: for
the source program, up to ``max_silent`` silent events followed by one
visible one; for the view program, single events.  Observations carry
the acting side (the peer itself vs. ω) and the peer's resulting view
with non-constant values canonicalised per branch, so trees of the two
systems are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from ..workflow.domain import FreshValueSource
from ..workflow.engine import apply_event
from ..workflow.enumerate import applicable_events
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .viewprogram import WORLD, ViewProgramSynthesis


@dataclass(frozen=True)
class ViewTree:
    """A canonical, hashable view tree of bounded depth."""

    branches: FrozenSet[PyTuple[object, FrozenSet, "ViewTree"]]

    def is_leaf(self) -> bool:
        return not self.branches

    def size(self) -> int:
        return 1 + sum(branch[2].size() for branch in self.branches)

    def labels(self) -> Set[object]:
        return {branch[0] for branch in self.branches}


_LEAF = ViewTree(frozenset())


def _canonical_content(
    program: WorkflowProgram, peer: str, instance: Instance, renaming: Dict[object, str]
) -> FrozenSet:
    """The peer's view with non-constant values canonically renamed.

    *renaming* is extended in place: values are assigned placeholder
    names in a deterministic order (sorted fact rendering), so the same
    data pattern yields the same canonical content in both systems.
    """
    constants = program.constants()
    view = program.schema.view_instance(instance, peer)
    raw_facts: List[PyTuple[str, PyTuple]] = []
    for relation in view.schema:
        base = relation.name.split("@", 1)[0]
        for tup in view.relation(relation.name):
            raw_facts.append((base, tup.values))

    def sort_key(fact: PyTuple[str, PyTuple]) -> PyTuple:
        name, values = fact
        parts = []
        for value in values:
            if value in renaming:
                parts.append((0, renaming[value]))
            elif value in constants:
                parts.append((1, repr(value)))
            else:
                parts.append((2, ""))  # unnamed-so-far values sort together
        return (name, tuple(parts))

    canonical: Set[PyTuple[str, PyTuple]] = set()
    for name, values in sorted(raw_facts, key=sort_key):
        rendered = []
        for value in values:
            if value in constants:
                rendered.append(("const", repr(value)))
            else:
                if value not in renaming:
                    renaming[value] = f"□{len(renaming)}"
                rendered.append(("var", renaming[value]))
        canonical.add((name, tuple(rendered)))
    return frozenset(canonical)


def _label_of(event: Event, peer: str) -> object:
    """The observation label: the peer's own rule name, or ω."""
    if event.peer == peer:
        return ("own", event.rule.name)
    return "ω"


def source_view_tree(
    program: WorkflowProgram,
    peer: str,
    instance: Instance,
    depth: int,
    max_silent: int,
    renaming: Optional[Dict[object, str]] = None,
    _fresh_index: int = 70_000,
) -> ViewTree:
    """The depth-*depth* view tree of ``P`` at *instance* for *peer*.

    Branches are observable transitions: at most *max_silent* silent
    events followed by one visible event.  Distinct hidden successor
    states with identical observations contribute separate subtrees
    only if those subtrees differ — the set semantics merges equal
    futures, which is exactly the tree-of-runs comparison.
    """
    if depth <= 0:
        return _LEAF
    if renaming is None:
        renaming = {}
    schema = program.schema
    branches: Set[PyTuple[object, FrozenSet, ViewTree]] = set()

    def explore(current: Instance, silent_used: int, fresh_index: int) -> None:
        source = FreshValueSource(start=fresh_index)
        source.observe(program.constants())
        source.observe(current.active_domain())
        for event in applicable_events(program, current, source):
            successor = apply_event(schema, current, event, None, check_body=False)
            visible = event.peer == peer or schema.view_instance(
                current, peer
            ) != schema.view_instance(successor, peer)
            if visible:
                branch_renaming = dict(renaming)
                content = _canonical_content(program, peer, successor, branch_renaming)
                subtree = source_view_tree(
                    program,
                    peer,
                    successor,
                    depth - 1,
                    max_silent,
                    branch_renaming,
                    fresh_index + 512,
                )
                branches.add((_label_of(event, peer), content, subtree))
            elif silent_used < max_silent:
                if successor == current:
                    continue  # silent no-ops do not open new futures
                explore(successor, silent_used + 1, fresh_index + 64)

    explore(instance, 0, _fresh_index)
    return ViewTree(frozenset(branches))


def view_program_tree(
    view_program: WorkflowProgram,
    peer: str,
    instance: Instance,
    depth: int,
    renaming: Optional[Dict[object, str]] = None,
    _fresh_index: int = 80_000,
) -> ViewTree:
    """The depth-*depth* view tree of ``P@p``: every event is observable."""
    if depth <= 0:
        return _LEAF
    if renaming is None:
        renaming = {}
    schema = view_program.schema
    branches: Set[PyTuple[object, FrozenSet, ViewTree]] = set()
    source = FreshValueSource(start=_fresh_index)
    source.observe(view_program.constants())
    source.observe(instance.active_domain())
    for event in applicable_events(view_program, instance, source):
        successor = apply_event(schema, instance, event, None, check_body=False)
        if successor == instance:
            continue  # no-op transitions are invisible at the peer
        branch_renaming = dict(renaming)
        content = _canonical_content(view_program, peer, successor, branch_renaming)
        subtree = view_program_tree(
            view_program, peer, successor, depth - 1, branch_renaming,
            _fresh_index + 512,
        )
        branches.add((_label_of(event, peer), content, subtree))
    return ViewTree(frozenset(branches))


@dataclass(frozen=True)
class TreeEquivalenceReport:
    """Outcome of a bounded tree-of-runs comparison."""

    equivalent: bool
    depth: int
    source_tree: ViewTree
    view_tree: ViewTree

    def missing_in_view_program(self) -> Set[object]:
        """Source observations the view program cannot offer (incompleteness)."""
        return {
            branch[:2]
            for branch in self.source_tree.branches
            if branch not in self.view_tree.branches
        }

    def extra_in_view_program(self) -> Set[object]:
        """View-program observations no matching source future has (unsoundness
        at tree level — Remark 5.2's subtlety)."""
        return {
            branch[:2]
            for branch in self.view_tree.branches
            if branch not in self.source_tree.branches
        }


def check_tree_equivalence(
    synthesis: ViewProgramSynthesis,
    depth: int = 3,
    max_silent: Optional[int] = None,
) -> TreeEquivalenceReport:
    """Compare the trees of runs of ``P`` (at *peer*) and ``P@p``.

    For transparent h-bounded programs the trees coincide at every
    depth (the claim after Theorem 5.13); for merely linearly-equivalent
    view programs the comparison exposes Remark 5.2's gap.

    >>> # report = check_tree_equivalence(synthesis, depth=3)
    >>> # report.equivalent
    """
    silent = max_silent if max_silent is not None else synthesis.h
    source_root = Instance.empty(synthesis.source.schema.schema)
    view_root = Instance.empty(synthesis.program.schema.schema)
    source_tree = source_view_tree(
        synthesis.source, synthesis.peer, source_root, depth, silent
    )
    view_tree = view_program_tree(
        synthesis.program, synthesis.peer, view_root, depth
    )
    return TreeEquivalenceReport(
        source_tree == view_tree, depth, source_tree, view_tree
    )
