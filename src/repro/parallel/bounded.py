"""Parallel h-boundedness checking (Theorem 5.10, fanned out).

The sequential :func:`~repro.transparency.bounded.check_h_bounded` is an
enumeration of candidate initial instances, each probed independently
for a too-long silent minimum-faithful run — embarrassingly parallel.
The engine here enumerates instances in the parent (in the sequential
enumeration order), fans fixed-size chunks out to a
:class:`~repro.parallel.pool.WorkerPool`, and merges chunk results *in
enumeration order*: the verdict, the witness, ``instances_checked`` and
``exhausted`` come out exactly as the sequential loop would have
produced them, for every worker count.

``workers=1`` (and hosts without the ``fork`` start method) delegate to
the sequential implementations outright — zero overhead, and step-budget
accounting stays exact.  In process mode, wall-clock budgets propagate
into workers via :class:`~repro.parallel.pool.BudgetSpec`; step budgets
are polled in the parent once per enumerated instance (the sequential
outer-loop poll points), not inside the workers' run searches.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple as PyTuple

from ..obs.trace import span
from ..runtime.budget import Budget, checkpoint
from ..transparency.bounded import (
    BoundednessResult,
    SearchBudget,
    check_h_bounded,
    smallest_bound,
)
from ..transparency.faithful_runs import iter_silent_faithful_runs
from ..transparency.instances import enumerate_instances
from ..workflow.errors import BudgetExceeded
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from .config import resolve_workers
from .pool import BudgetSpec, TaskTruncated, WorkerPool, _fork_available

__all__ = [
    "parallel_check_h_bounded",
    "parallel_smallest_bound",
]


def _check_chunk(ctx: PyTuple, arg: PyTuple):
    """Probe a chunk of initial instances for boundedness violations.

    Returns, per instance, the first silent faithful run longer than
    ``h`` (the witness the sequential loop would return) or None.
    """
    program, peer, h = ctx
    chunk, spec = arg
    budget = spec.to_budget() if spec is not None else None
    out: List[Optional[object]] = []
    try:
        for _gidx, initial in chunk:
            violation = None
            for candidate in iter_silent_faithful_runs(
                program, peer, initial, max_length=h + 1, budget=budget
            ):
                if len(candidate) > h:
                    violation = candidate
                    break
            out.append(violation)
    except BudgetExceeded as exc:
        return TaskTruncated(reason=str(exc), partial=out)
    return out


def _longest_chunk(ctx: PyTuple, arg: PyTuple):
    """The longest silent faithful run per instance, capped at max_h+1.

    An instance whose longest run exceeds ``max_h`` short-circuits (its
    reported length is just "too long"), mirroring the sequential early
    ``return None``.
    """
    program, peer, max_h = ctx
    chunk, spec = arg
    budget = spec.to_budget() if spec is not None else None
    out: List[int] = []
    try:
        for _gidx, initial in chunk:
            longest = 0
            for candidate in iter_silent_faithful_runs(
                program, peer, initial, max_length=max_h + 1, budget=budget
            ):
                longest = max(longest, len(candidate))
                if longest > max_h:
                    break
            out.append(longest)
    except BudgetExceeded as exc:
        return TaskTruncated(reason=str(exc), partial=out)
    return out


def _enumerated(
    program: WorkflowProgram,
    const_pool: PyTuple[object, ...],
    budget: SearchBudget,
) -> Iterator[Instance]:
    return enumerate_instances(
        program.schema.schema, const_pool, budget.max_tuples_per_relation
    )


def _rounds(
    instances: Iterator[Instance],
    budget: SearchBudget,
    runtime_budget: Optional[Budget],
    round_size: int,
    state: dict,
) -> Iterator[List[PyTuple[int, Instance]]]:
    """Pull instances round by round, counting and polling like the
    sequential outer loop (``checked += 1`` then a budget checkpoint per
    instance; the ``max_instances`` cap flips ``exhausted`` exactly when
    a further instance exists)."""
    while True:
        batch: List[PyTuple[int, Instance]] = []
        for initial in instances:
            if (
                budget.max_instances is not None
                and state["checked"] >= budget.max_instances
            ):
                state["exhausted"] = False
                yield batch
                return
            state["checked"] += 1
            checkpoint(runtime_budget)
            batch.append((state["checked"], initial))
            if len(batch) >= round_size:
                break
        yield batch
        if not batch:
            return


def _chunked(items: List, size: int) -> List[List]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def parallel_check_h_bounded(
    program: WorkflowProgram,
    peer: str,
    h: int,
    budget: SearchBudget = SearchBudget(),
    runtime_budget: Optional[Budget] = None,
    anytime: bool = False,
    *,
    workers: Optional[int] = None,
    chunk_size: int = 4,
) -> BoundednessResult:
    """Decide h-boundedness on a worker pool.

    Result-identical to :func:`~repro.transparency.bounded.check_h_bounded`
    for every worker count: same verdict, same witness (the first
    violation in instance-enumeration order), same
    ``instances_checked``/``exhausted`` flags.
    """
    workers = resolve_workers(workers)
    if workers == 1 or not _fork_available():
        # workers=1 pins the sequential path (a process-wide default > 1
        # would otherwise bounce the call straight back here).
        return check_h_bounded(
            program, peer, h, budget, runtime_budget, anytime, workers=1
        )
    const_pool = budget.resolve_pool(program, h)
    state = {"checked": 0, "exhausted": True}
    completed = 0
    with span("parallel_check_h_bounded", peer=peer, h=h, workers=workers):
        try:
            with WorkerPool(workers, _check_chunk, (program, peer, h)) as pool:
                for batch in _rounds(
                    _enumerated(program, const_pool, budget),
                    budget,
                    runtime_budget,
                    workers * chunk_size * 2,
                    state,
                ):
                    if not batch:
                        break
                    spec = BudgetSpec.capture(runtime_budget)
                    chunks = _chunked(batch, chunk_size)
                    results = pool.run((chunk, spec) for chunk in chunks)
                    for chunk, result in zip(chunks, results):
                        truncated = isinstance(result, TaskTruncated)
                        entries = (result.partial or []) if truncated else result
                        for (gidx, _initial), violation in zip(chunk, entries):
                            completed = gidx
                            if violation is not None:
                                return BoundednessResult(
                                    False, h, violation, gidx, True
                                )
                        if truncated:
                            raise BudgetExceeded(result.reason)
                    if not state["exhausted"]:
                        break
        except BudgetExceeded as exc:
            if not anytime:
                raise
            return BoundednessResult(
                True,
                h,
                None,
                completed,
                exhausted=False,
                truncated=True,
                reason=str(exc),
            )
    return BoundednessResult(True, h, None, state["checked"], state["exhausted"])


def parallel_smallest_bound(
    program: WorkflowProgram,
    peer: str,
    max_h: int,
    budget: SearchBudget = SearchBudget(),
    runtime_budget: Optional[Budget] = None,
    *,
    workers: Optional[int] = None,
    chunk_size: int = 4,
) -> Optional[int]:
    """The least ``h <= max_h`` bound, searched on a worker pool.

    Identical to :func:`~repro.transparency.bounded.smallest_bound`: the
    per-instance longest-silent-run lengths are merged in enumeration
    order, and the first instance exceeding ``max_h`` yields None at the
    same point the sequential scan would.
    """
    workers = resolve_workers(workers)
    if workers == 1 or not _fork_available():
        return smallest_bound(
            program, peer, max_h, budget, runtime_budget, workers=1
        )
    const_pool = budget.resolve_pool(program, max_h)
    state = {"checked": 0, "exhausted": True}
    longest = 0
    with span("parallel_smallest_bound", peer=peer, max_h=max_h, workers=workers):
        with WorkerPool(workers, _longest_chunk, (program, peer, max_h)) as pool:
            for batch in _rounds(
                _enumerated(program, const_pool, budget),
                budget,
                runtime_budget,
                workers * chunk_size * 2,
                state,
            ):
                if not batch:
                    break
                spec = BudgetSpec.capture(runtime_budget)
                chunks = _chunked(batch, chunk_size)
                results = pool.run((chunk, spec) for chunk in chunks)
                for chunk, result in zip(chunks, results):
                    truncated = isinstance(result, TaskTruncated)
                    entries = (result.partial or []) if truncated else result
                    for (_gidx, _initial), length in zip(chunk, entries):
                        longest = max(longest, length)
                        if longest > max_h:
                            return None
                    if truncated:
                        raise BudgetExceeded(result.reason)
                if not state["exhausted"]:
                    break
    return longest
