"""Shapley attribution: axioms, convergence, determinism, recovery."""

from __future__ import annotations

import pytest

from repro.obs.shapley import (
    EXACT_HARD_LIMIT,
    fact_game,
    shapley_rank,
    shapley_values,
    view_game,
)
from repro.runtime.journal import MemorySink, journal_run, recover_run
from repro.workflow import execute, parse_program
from repro.workflow.enumerate import applicable_events
from repro.workloads import get_family

CHAIN = """
peers a, b, c, sue
relation S0(K)
relation S1(K)
relation S2(K)
view S0@a(K)
view S0@b(K)
view S1@b(K)
view S1@c(K)
view S2@c(K)
view S2@sue(K)
[start] +S0@a(x) :-
[mid]   +S1@b(x) :- S0@b(x)
[end]   +S2@c(x) :- S1@c(x)
"""


def _step(program, instance, rule_name):
    for event in applicable_events(program, instance):
        if event.rule.name == rule_name:
            return event
    raise AssertionError(f"no applicable event for rule {rule_name!r}")


def chain_run():
    """start -> mid -> end, plus two irrelevant extra starts."""
    program = parse_program(CHAIN)
    from repro.workflow.instance import Instance

    instance = Instance.empty(program.schema.schema)
    events = []
    for rule_name in ("start", "mid", "end", "start", "start"):
        event = _step(program, instance, rule_name)
        events.append(event)
        run = execute(program, events)
        instance = run.final_instance
    return execute(program, events)


class TestShapleyValues:
    def test_dictator_game(self):
        _, values = shapley_values(
            [0, 1, 2], lambda s: 1.0 if 1 in s else 0.0, method="exact"
        )
        assert values == {0: 0.0, 1: 1.0, 2: 0.0}

    def test_symmetric_players_split_evenly(self):
        _, values = shapley_values(
            [0, 1], lambda s: 1.0 if len(s) == 2 else 0.0, method="exact"
        )
        assert values == {0: 0.5, 1: 0.5}

    def test_efficiency_axiom_exact(self):
        players = list(range(6))

        def value(s):
            # Superadditive-ish arbitrary game.
            return len(s) ** 2 + (3.0 if {0, 2} <= s else 0.0)

        _, values = shapley_values(players, value, method="exact")
        total = value(frozenset(players)) - value(frozenset())
        assert sum(values.values()) == pytest.approx(total, abs=1e-12)

    def test_sampled_efficiency_and_determinism(self):
        players = list(range(20))  # beyond any exact limit

        def value(s):
            # Non-additive: the pair bonus makes marginals order-dependent,
            # so different seeds genuinely sample different estimates.
            return float(len(s)) + (4.0 if {3, 7} <= s else 0.0)

        method, values = shapley_values(
            players, value, method="auto", samples=16, seed=5
        )
        assert method == "sampled"
        total = value(frozenset(players)) - value(frozenset())
        # Efficiency holds per permutation, hence for the average too.
        assert sum(values.values()) == pytest.approx(total, abs=1e-9)
        _, again = shapley_values(
            players, value, method="sampled", samples=16, seed=5
        )
        assert values == again
        _, other = shapley_values(
            players, value, method="sampled", samples=16, seed=7
        )
        assert values != other

    def test_sampled_converges_to_exact(self):
        players = list(range(6))

        def value(s):
            return 2.0 * (0 in s) + 1.0 * (1 in s) + 0.5 * len(s & {2, 3})

        _, exact = shapley_values(players, value, method="exact")
        _, sampled = shapley_values(
            players, value, method="sampled", samples=400, seed=0
        )
        for player in players:
            assert sampled[player] == pytest.approx(exact[player], abs=0.15)

    def test_exact_hard_limit(self):
        players = list(range(EXACT_HARD_LIMIT + 1))
        with pytest.raises(ValueError, match="sampled"):
            shapley_values(players, lambda s: 0.0, method="exact")

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            shapley_values([0], lambda s: 0.0, method="magic")

    def test_empty_players(self):
        method, values = shapley_values([], lambda s: 0.0, method="auto")
        assert values == {}


class TestGames:
    def test_fact_game_rejects_unknown_relation(self):
        run = chain_run()
        with pytest.raises(KeyError, match="no view"):
            fact_game(run, "sue", "S0")  # sue only sees S2

    def test_view_game_counts_reproduced_tuples(self):
        run = chain_run()
        value = view_game(run, "sue")
        all_events = frozenset(range(len(run.events)))
        assert value(all_events) == 1.0  # one S2 tuple visible to sue
        assert value(frozenset()) == 0.0
        # dropping the final 'end' event loses the only visible tuple
        assert value(all_events - {2}) == 0.0


class TestShapleyRank:
    def test_chain_attributes_equally_to_the_critical_path(self):
        run = chain_run()
        report = shapley_rank(run, "sue", relation="S2")
        assert report.method == "exact"
        values = {e.position: e.value for e in report.attributions}
        # start/mid/end are jointly necessary: 1/3 each; extras get 0.
        for position in (0, 1, 2):
            assert values[position] == pytest.approx(1 / 3)
        for position in (3, 4):
            assert values[position] == 0.0
        assert report.total() == pytest.approx(
            report.grand - report.baseline
        )
        assert set(report.top(3)) == {0, 1, 2}

    def test_key_target(self):
        run = chain_run()
        key = next(iter(run.final_instance.relation("S2"))).key
        report = shapley_rank(run, "sue", relation="S2", key=key)
        assert report.target.startswith("S2[")
        assert report.grand == 1.0

    def test_rank_validates_inputs(self):
        run = chain_run()
        with pytest.raises(ValueError, match="relation"):
            shapley_rank(run, "sue", key=1)
        with pytest.raises(KeyError, match="peer"):
            shapley_rank(run, "martian")

    def test_exact_vs_sampled_top3_on_a_family_run(self):
        family = get_family("healthcare")
        run = family.run(seed=2, steps=9)
        assert len(run.events) <= 10
        exact = shapley_rank(run, family.observer, method="exact")
        sampled = shapley_rank(
            run, family.observer, method="sampled", samples=300, seed=0
        )
        assert exact.method == "exact" and sampled.method == "sampled"
        # Rankings must agree on the podium (ties compared as value sets).
        exact_top = [round(exact.attributions[p].value, 6)
                     for p in exact.top(3)]
        sampled_top = [round(exact.attributions[p].value, 6)
                       for p in sampled.top(3)]
        assert exact_top == sampled_top
        assert sampled.total() == pytest.approx(
            sampled.grand - sampled.baseline, abs=1e-9
        )

    def test_ranking_stable_across_journal_recovery(self):
        family = get_family("ecommerce")
        run = family.run(seed=4, steps=8)
        before = shapley_rank(run, family.observer).to_dict()

        sink = MemorySink()
        journal_run(run, sink, snapshot_every=4)
        recovered = recover_run(run.program, sink).run
        after = shapley_rank(recovered, family.observer).to_dict()
        assert before == after

    def test_report_to_dict_shape(self):
        run = chain_run()
        payload = shapley_rank(run, "sue").to_dict()
        assert payload["peer"] == "sue"
        assert payload["target"] == "view@sue"
        assert payload["total"] == pytest.approx(
            payload["grand"] - payload["baseline"]
        )
        ranking = payload["ranking"]
        assert len(ranking) == len(run.events)
        assert ranking == sorted(
            ranking, key=lambda e: (-e["value"], e["position"])
        )
        assert {"position", "rule", "peer", "value"} <= set(ranking[0])
