"""Workflow programs and specifications.

A collaborative workflow specification consists of a collaborative schema
and a workflow program: a finite set of update rules per peer.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from .domain import NULL
from .errors import RuleError, SchemaError
from .queries import KeyLiteral, RelLiteral
from .rules import Deletion, Rule
from .views import CollaborativeSchema


class WorkflowProgram:
    """A workflow program ``P`` over a collaborative schema.

    >>> # A propositional one-rule program:
    >>> from repro.workflow.schema import Schema, proposition
    >>> from repro.workflow.views import CollaborativeSchema, View
    >>> from repro.workflow.rules import Insertion, Rule
    >>> from repro.workflow.queries import Const, Query
    >>> OK = proposition("OK")
    >>> S = CollaborativeSchema(Schema([OK]), ["p"], [View(OK, "p", ("K",))])
    >>> P = WorkflowProgram(S, [Rule("r", (Insertion(S.view("OK", "p"), (Const(0),)),),
    ...                              Query(()))])
    >>> P.rules_of_peer("p")[0].name
    'r'
    """

    def __init__(self, schema: CollaborativeSchema, rules: Iterable[Rule]) -> None:
        self.schema = schema
        self.rules: PyTuple[Rule, ...] = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise RuleError(f"duplicate rule names: {sorted(names)}")
        for rule in self.rules:
            if rule.peer not in schema.peers:
                raise SchemaError(f"rule {rule.name} belongs to unknown peer {rule.peer!r}")
            for atom in rule.head:
                declared = schema.view(atom.view.relation.name, atom.view.peer)
                if declared != atom.view:
                    raise SchemaError(
                        f"rule {rule.name}: head atom {atom!r} uses a view that is "
                        "not part of the collaborative schema"
                    )
            for literal in rule.body.literals:
                view = getattr(literal, "view", None)
                if view is not None and schema.view(view.relation.name, view.peer) != view:
                    raise SchemaError(
                        f"rule {rule.name}: body literal {literal!r} uses a view that "
                        "is not part of the collaborative schema"
                    )
        self._by_peer: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            self._by_peer.setdefault(rule.peer, []).append(rule)
        self._by_name: Dict[str, Rule] = {rule.name: rule for rule in self.rules}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def rules_of_peer(self, peer: str) -> PyTuple[Rule, ...]:
        return tuple(self._by_peer.get(peer, ()))

    def rule(self, name: str) -> Rule:
        try:
            return self._by_name[name]
        except KeyError:
            raise RuleError(f"program has no rule named {name!r}") from None

    @property
    def peers(self) -> PyTuple[str, ...]:
        return self.schema.peers

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    # Program-level properties
    # ------------------------------------------------------------------

    def constants(self) -> FrozenSet[object]:
        """``const(P)``: constants used in the program, plus ``⊥``."""
        out: Set[object] = {NULL}
        for rule in self.rules:
            out.update(rule.constants())
        return frozenset(out)

    def max_head_size(self) -> int:
        """Maximum number of updates in a rule head (``M`` in Section 5)."""
        return max((len(rule.head) for rule in self.rules), default=0)

    def max_body_size(self) -> int:
        """Maximum number of literals in a rule body (``b`` in Thm 6.3)."""
        return max((len(rule.body) for rule in self.rules), default=0)

    def is_linear_head(self) -> bool:
        """True iff every rule has a single update in its head."""
        return all(rule.is_linear_head() for rule in self.rules)

    def is_normal_form(self) -> bool:
        """True iff the program is in normal form (Section 2).

        (i) every deletion in a head is witnessed by a positive body
        literal on the same key term; (ii) bodies contain no negative
        relational literals and no positive key literals.
        """
        for rule in self.rules:
            for deletion in rule.deletions():
                if not rule.deletion_has_witness(deletion):
                    return False
            for literal in rule.body.literals:
                if isinstance(literal, RelLiteral) and not literal.positive:
                    return False
                if isinstance(literal, KeyLiteral) and literal.positive:
                    return False
        return True

    def with_rules(self, rules: Iterable[Rule]) -> "WorkflowProgram":
        """A new program over the same schema with *rules*."""
        return WorkflowProgram(self.schema, rules)

    def extend(self, extra: Iterable[Rule]) -> "WorkflowProgram":
        """A new program with the rules of this one plus *extra*."""
        return WorkflowProgram(self.schema, tuple(self.rules) + tuple(extra))

    def __repr__(self) -> str:
        lines = [f"WorkflowProgram({len(self.rules)} rules)"]
        lines.extend(f"  {rule!r}" for rule in self.rules)
        return "\n".join(lines)
