"""Cluster-scale load generation with fault injection and a disk audit.

This harness is the cluster's *differential proof obligation*: it
drives the single-process load generator (with all of its per-run
ordering and consistency checking) through the cluster router, so a
clean report means the cluster exhibited exactly the semantics of one
server — and it adds the two things only a cluster can get wrong:

* **fault injection** — after a seeded threshold of applied events it
  asks the router (``cluster``/``kill``) to SIGKILL a seeded choice of
  shard worker mid-run, exercising failover (restart or promotion)
  under live idempotent traffic;
* **a post-mortem storage audit** — after the run it opens every
  shard's on-disk store directly (``fast_recover``, the same path the
  ``repro recover`` command uses) and checks that each driven run's
  acknowledged events are all durably present, in order, on the shard
  that owns the run *after* failover.  ``lost_events`` must be zero:
  an acknowledged event that is not on disk somewhere is exactly the
  bug replication + reconciliation exist to prevent.

The harness talks to the cluster only through the public protocol plus
read-only access to the cluster directory for the audit (both true for
the CI ``cluster-smoke`` job and the ``tests/cluster`` suite).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..runtime.checkpoint import fast_recover
from ..service.errors import ServiceError
from ..service.loadgen import LoadReport, ServiceClient, run_loadgen
from ..storage.backend import open_backend
from ..workflow.program import WorkflowProgram
from ..workflow.serialization import event_to_dict
from .ring import HashRing

__all__ = ["ClusterLoadReport", "run_cluster_loadgen"]


@dataclass
class ClusterLoadReport:
    """A :class:`LoadReport` plus the cluster-only verdicts."""

    base: LoadReport
    shards: int = 0
    kills: int = 0
    failovers: int = 0
    restarts: int = 0
    promotions: int = 0
    reconciled_records: int = 0
    audited_runs: int = 0
    lost_events: int = 0
    audit_mismatches: int = 0
    audit_warnings: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No violation anywhere: ordering, consistency, or durability."""
        return (
            self.base.clean
            and self.lost_events == 0
            and self.audit_mismatches == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self.base.to_dict(),
            "shards": self.shards,
            "kills": self.kills,
            "failovers": self.failovers,
            "restarts": self.restarts,
            "promotions": self.promotions,
            "reconciled_records": self.reconciled_records,
            "audited_runs": self.audited_runs,
            "lost_events": self.lost_events,
            "audit_mismatches": self.audit_mismatches,
            "audit_warnings": list(self.audit_warnings),
            "clean": self.clean,
        }


async def _cluster_status(host: str, port: int) -> Dict[str, Any]:
    client = await ServiceClient.connect(host, port)
    try:
        response = await client.expect_ok(op="cluster", action="status")
    finally:
        await client.close()
    return response.get("cluster", {})


def _owning_storage(
    run_id: str, ring: HashRing, supervisor: Dict[str, Any]
) -> Optional[str]:
    """The storage spec holding *run_id*'s full history after failover."""
    shards = supervisor.get("shards", {})
    owner = ring.owner(run_id)
    info = shards.get(owner)
    if info is None:
        return None
    # A promoted shard's runs live on (and grew on) the follower's disk:
    # its replica records plus every post-promotion append.
    while info.get("promoted_to"):
        info = shards.get(info["promoted_to"], {})
    return info.get("storage")


def _audit_stores(
    program: WorkflowProgram,
    report: ClusterLoadReport,
    ring: HashRing,
    supervisor: Dict[str, Any],
) -> None:
    """Compare every acked event list against the owning shard's disk."""
    backends: Dict[str, Any] = {}
    try:
        for outcome in report.base.outcomes:
            storage = _owning_storage(outcome.run_id, ring, supervisor)
            if storage is None:
                report.audit_warnings.append(
                    f"{outcome.run_id}: no storage spec for owner "
                    f"{ring.owner(outcome.run_id)}"
                )
                continue
            backend = backends.get(storage)
            if backend is None:
                backend = backends[storage] = open_backend(storage)
            try:
                records, warnings = backend.read_records(outcome.run_id)
                report.audit_warnings.extend(
                    f"{outcome.run_id}: {w}" for w in warnings
                )
                resumed = fast_recover(program, records)
            except Exception as exc:
                report.audit_warnings.append(f"{outcome.run_id}: {exc}")
                report.lost_events += outcome.applied
                continue
            report.audited_runs += 1
            acked = [event_to_dict(event) for event in outcome.applied_events]
            durable = [event_to_dict(event) for event in resumed.events]
            if len(durable) < len(acked):
                report.lost_events += len(acked) - len(durable)
            if durable[: len(acked)] != acked:
                report.audit_mismatches += 1
    finally:
        for backend in backends.values():
            try:
                backend.close()
            except Exception:
                pass


async def run_cluster_loadgen(
    program: WorkflowProgram,
    host: str,
    port: int,
    runs: int = 8,
    events_per_run: int = 20,
    seed: int = 0,
    verify: bool = True,
    view_every: int = 0,
    max_concurrency: Optional[int] = None,
    kill_shards: int = 0,
    kill_after_applied: Optional[int] = None,
    audit: bool = True,
    shutdown: bool = False,
    run_prefix: str = "cload",
    clients: int = 1,
    batch_size: int = 1,
) -> ClusterLoadReport:
    """Drive a live cluster through its router; optionally kill shards.

    ``kill_shards`` workers are SIGKILLed mid-run, each once the
    cluster-wide applied count crosses a seeded threshold (by default
    spread across the middle of the workload); the targets are a seeded
    choice, so a run is reproducible from ``seed`` alone.  With
    ``audit`` (the default) every shard store is read back afterwards
    and checked against the client-side acked ground truth.
    """
    status = await _cluster_status(host, port)
    nodes = sorted(status.get("nodes", {}))
    if not nodes:
        raise ServiceError("the router reports no cluster nodes")
    ring = HashRing(nodes, vnodes=int(status.get("vnodes", 64)))
    report_shards = len(nodes)

    total_events = runs * events_per_run
    rng = random.Random(seed * 65537 + 11)
    kill_targets = rng.sample(nodes, min(kill_shards, len(nodes)))
    if kill_after_applied is None:
        kill_after_applied = max(1, total_events // 4)
    thresholds = [
        kill_after_applied + index * max(1, total_events // 8)
        for index in range(len(kill_targets))
    ]

    applied_count = 0
    kill_events = [asyncio.Event() for _ in kill_targets]

    def progress() -> None:
        nonlocal applied_count
        applied_count += 1
        for threshold, event in zip(thresholds, kill_events):
            if applied_count >= threshold:
                event.set()

    kills_done = 0

    async def killer() -> None:
        nonlocal kills_done
        for target, event in zip(kill_targets, kill_events):
            await event.wait()
            client = await ServiceClient.connect(host, port)
            try:
                response = await client.expect_ok(
                    op="cluster", action="kill", node=target
                )
                if response.get("killed"):
                    kills_done += 1
            except ServiceError:
                pass  # already promoted away or dead: the audit decides
            finally:
                await client.close()

    kill_task = asyncio.ensure_future(killer()) if kill_targets else None
    try:
        base = await run_loadgen(
            program,
            host,
            port,
            runs=runs,
            events_per_run=events_per_run,
            seed=seed,
            verify=verify,
            view_every=view_every,
            run_prefix=run_prefix,
            max_concurrency=max_concurrency,
            shutdown=False,
            idempotent=True,
            progress=progress,
            clients=clients,
            batch_size=batch_size,
        )
    finally:
        if kill_task is not None:
            kill_task.cancel()
            try:
                await kill_task
            except (asyncio.CancelledError, Exception):
                pass

    # Re-read the topology: failover may have repointed names.
    final_status = await _cluster_status(host, port)
    supervisor = final_status.get("supervisor", {})
    counters = supervisor.get("counters", {})
    report = ClusterLoadReport(
        base=base,
        shards=report_shards,
        kills=kills_done,
        failovers=int(counters.get("failovers", 0)),
        restarts=int(counters.get("restarts", 0)),
        promotions=int(counters.get("promotions", 0)),
        reconciled_records=int(counters.get("reconciled_records", 0)),
    )
    if audit:
        if supervisor.get("shards"):
            _audit_stores(program, report, ring, supervisor)
        else:
            report.audit_warnings.append(
                "no supervisor attached to the router: storage audit skipped"
            )
    if shutdown:
        client = await ServiceClient.connect(host, port)
        try:
            await client.expect_ok(op="shutdown")
        finally:
            await client.close()
    return report
