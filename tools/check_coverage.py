#!/usr/bin/env python
"""Coverage ratchet: gate CI on a coverage.xml report (stdlib only).

Two independent gates, both read from ``coverage_ratchet.json`` at the
repo root:

* ``parallel_floor`` — the ``repro.parallel`` package must stay at or
  above this line coverage (the differential-test layer's promise is
  only as good as its reach into the engine).
* ``workflow_floor`` — the ``repro.workflow`` package (the engine, the
  planner and the query compiler) must stay at or above this line
  coverage; the compiled backend is only trustworthy to the extent the
  equivalence suites actually reach its codegen paths.
* ``dataflow_floor`` — the ``repro.dataflow`` package (the Z-set
  algebra, the incremental operators, the delta graph) must stay at or
  above this line coverage; every derived artifact in the service rides
  on these operators being exercised.
* ``total`` / ``allowed_total_drop`` — total line coverage may not fall
  more than ``allowed_total_drop`` percentage points below the recorded
  ``total``.  The recorded value only moves when someone runs
  ``--update`` and commits the result, so coverage ratchets up and
  cannot silently erode.

Usage::

    python tools/check_coverage.py coverage.xml            # gate (CI)
    python tools/check_coverage.py coverage.xml --update   # re-baseline

The parser consumes the Cobertura XML that ``pytest --cov`` emits via
``--cov-report=xml`` and needs nothing outside the standard library, so
the gate itself has no install step to fail.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import xml.etree.ElementTree as ET
from pathlib import Path

RATCHET_PATH = Path(__file__).resolve().parent.parent / "coverage_ratchet.json"
_PARALLEL = re.compile(r"(^|/)(src/)?(repro/)?parallel/[^/]+\.py$")
_WORKFLOW = re.compile(r"(^|/)(src/)?(repro/)?workflow/[^/]+\.py$")
_DATAFLOW = re.compile(r"(^|/)(src/)?(repro/)?dataflow/[^/]+\.py$")


def measure(xml_path: Path) -> dict:
    """Total, repro.parallel/.workflow/.dataflow line coverage (percent)."""
    root = ET.parse(str(xml_path)).getroot()
    total_valid = total_covered = 0
    parallel_valid = parallel_covered = 0
    workflow_valid = workflow_covered = 0
    dataflow_valid = dataflow_covered = 0
    for cls in root.iter("class"):
        filename = (cls.get("filename") or "").replace("\\", "/")
        in_parallel = bool(_PARALLEL.search(filename))
        in_workflow = bool(_WORKFLOW.search(filename))
        in_dataflow = bool(_DATAFLOW.search(filename))
        for line in cls.iter("line"):
            total_valid += 1
            hit = int(line.get("hits", "0")) > 0
            total_covered += hit
            if in_parallel:
                parallel_valid += 1
                parallel_covered += hit
            if in_workflow:
                workflow_valid += 1
                workflow_covered += hit
            if in_dataflow:
                dataflow_valid += 1
                dataflow_covered += hit
    if total_valid == 0:
        raise SystemExit(f"error: no line data found in {xml_path}")

    def pct(covered: int, valid: int) -> float:
        return 100.0 * covered / valid if valid else 0.0

    return {
        "total": round(pct(total_covered, total_valid), 2),
        "parallel": round(pct(parallel_covered, parallel_valid), 2),
        "parallel_lines": parallel_valid,
        "workflow": round(pct(workflow_covered, workflow_valid), 2),
        "workflow_lines": workflow_valid,
        "dataflow": round(pct(dataflow_covered, dataflow_valid), 2),
        "dataflow_lines": dataflow_valid,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="coverage.xml to check")
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured totals back into the ratchet file",
    )
    args = parser.parse_args(argv)

    ratchet = json.loads(RATCHET_PATH.read_text())
    measured = measure(args.report)
    print(
        f"coverage: total {measured['total']:.2f}% | repro.parallel "
        f"{measured['parallel']:.2f}% over {measured['parallel_lines']} lines "
        f"| repro.workflow {measured['workflow']:.2f}% over "
        f"{measured['workflow_lines']} lines | repro.dataflow "
        f"{measured['dataflow']:.2f}% over {measured['dataflow_lines']} lines"
    )

    if args.update:
        ratchet["total"] = measured["total"]
        RATCHET_PATH.write_text(json.dumps(ratchet, indent=2) + "\n")
        print(f"ratchet updated: total floor now {measured['total']:.2f}%")
        return 0

    failures = []
    if measured["parallel_lines"] == 0:
        failures.append("no repro.parallel lines in the report (wrong --cov target?)")
    elif measured["parallel"] < ratchet["parallel_floor"]:
        failures.append(
            f"repro.parallel coverage {measured['parallel']:.2f}% is below the "
            f"{ratchet['parallel_floor']:.2f}% floor"
        )
    workflow_floor = ratchet.get("workflow_floor")
    if workflow_floor is not None:
        if measured["workflow_lines"] == 0:
            failures.append(
                "no repro.workflow lines in the report (wrong --cov target?)"
            )
        elif measured["workflow"] < workflow_floor:
            failures.append(
                f"repro.workflow coverage {measured['workflow']:.2f}% is below "
                f"the {workflow_floor:.2f}% floor"
            )
    dataflow_floor = ratchet.get("dataflow_floor")
    if dataflow_floor is not None:
        if measured["dataflow_lines"] == 0:
            failures.append(
                "no repro.dataflow lines in the report (wrong --cov target?)"
            )
        elif measured["dataflow"] < dataflow_floor:
            failures.append(
                f"repro.dataflow coverage {measured['dataflow']:.2f}% is below "
                f"the {dataflow_floor:.2f}% floor"
            )
    floor = ratchet["total"] - ratchet["allowed_total_drop"]
    if measured["total"] < floor:
        failures.append(
            f"total coverage {measured['total']:.2f}% dropped more than "
            f"{ratchet['allowed_total_drop']:.2f}pt below the recorded "
            f"{ratchet['total']:.2f}% (floor {floor:.2f}%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("coverage ratchet: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
