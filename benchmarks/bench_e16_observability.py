"""E16: the cost of observability on the event-application hot path.

The tracing design promises that instrumentation is effectively free
while disabled: :func:`repro.obs.trace.span` returns a shared no-op
object without allocating anything when no sink is installed, and a
:class:`NullSink` is normalized back to that same fast path.  The
experiment replays the E15 churn workload — straight-line
``apply_event`` throughput, the most span-dense path in the system —
under four configurations:

* **disabled** — no sink installed (the default);
* **null sink** — ``configure_tracing(NullSink())`` (must be identical
  to disabled: the sink is special-cased away);
* **ring buffer** — every span recorded into a bounded deque;
* **json lines** — every span serialized to ``os.devnull``.

The acceptance bar is the one docs/OBSERVABILITY.md advertises: the
disabled :func:`~repro.obs.trace.span` call costs **< 5%** of one event
application.  The bar is enforced by *direct* measurement — the no-op
call is timed in a tight loop (sub-microsecond, very stable) and
divided by the per-event cost of the replay — because wall-clock A/B
differencing cannot resolve 5% here: an A/A test of the replay itself
shows >30% max/min spread on a noisy shared host, so the four-way
comparison table is reported for context (interleaved sampling,
best-of-N) rather than asserted on.  Recording sinks are allowed to
cost real time — that is the price of the data.

``BENCH_E16_SCALE=smoke`` shrinks the replay for CI; the full run
archives its measurements in ``BENCH_E16.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import wall_time
from repro.analysis import print_table
from repro.obs import (
    METRICS,
    JsonLinesSink,
    NullSink,
    RingBufferSink,
    configure_tracing,
    span,
)
from repro.workflow import RunGenerator, execute
from repro.workloads import churn_program

SMOKE = os.environ.get("BENCH_E16_SCALE", "").strip().lower() == "smoke"
EVENTS = 60 if SMOKE else 400
REPLAYS = 2 if SMOKE else 6
REPEAT = 3 if SMOKE else 14
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_E16.json"

_baseline: dict = {}


def _workload():
    """A pre-generated churn run and its replay closure."""
    program = churn_program()
    events = list(RunGenerator(program, seed=16).random_run(EVENTS).events)

    def replay() -> None:
        for _ in range(REPLAYS):
            execute(program, events, check_freshness=False)

    return events, replay


def test_e16_tracing_overhead(benchmark):
    events, replay = _workload()
    replay()  # warm caches before timing anything

    devnull = open(os.devnull, "w", encoding="utf-8")
    ring = RingBufferSink(capacity=8192)
    configurations = [
        ("disabled", None),
        ("null sink", NullSink()),
        ("ring buffer", ring),
        ("json lines", JsonLinesSink(devnull, flush_every=1024)),
    ]

    # Interleaved sampling, best-of: every round measures all four
    # configurations (order alternating), and each configuration's cost
    # is its minimum across rounds.  Contiguous per-configuration blocks
    # would confound the comparison with process drift (heap growth, CPU
    # frequency scaling, noisy neighbours — an A/A test of this workload
    # shows >30% max/min spread on a shared host); interleaving spreads
    # the noise over every configuration equally and the minimum
    # converges on the undisturbed cost.
    samples: dict = {name: [] for name, _ in configurations}
    try:
        for round_index in range(REPEAT):
            ordering = (
                configurations if round_index % 2 == 0 else configurations[::-1]
            )
            for name, sink in ordering:
                previous = configure_tracing(sink)
                try:
                    samples[name].append(wall_time(replay, repeat=1))
                finally:
                    configure_tracing(previous)
    finally:
        devnull.close()

    timings = {name: min(times) for name, times in samples.items()}
    ratios = {name: timings[name] / timings["disabled"] for name in timings}

    total_events = EVENTS * REPLAYS
    rows = []
    json_rows = []
    for name, _ in configurations:
        seconds = timings[name]
        overhead = (ratios[name] - 1.0) * 100.0
        rows.append(
            [
                name,
                f"{total_events / seconds:,.0f}",
                f"{seconds / total_events * 1e6:.2f}",
                f"{overhead:+.1f}%",
            ]
        )
        json_rows.append(
            {
                "configuration": name,
                "events_per_second": round(total_events / seconds, 1),
                "us_per_event": round(seconds / total_events * 1e6, 3),
                "overhead_pct": round(overhead, 2),
            }
        )
    print_table(
        "E16: tracing overhead on apply_event (churn replay)",
        ["sink", "events/s", "us/event", "overhead"],
        rows,
    )
    _baseline["tracing"] = json_rows

    # The recording sinks actually recorded: one span per application
    # plus the enclosing replay structure.
    assert ring.emitted >= total_events

    # The enforced bar: time the disabled span() call directly (stable
    # even on a noisy host) and compare it to the cost of one event
    # application.  One span call per apply_event is the instrumentation
    # density on this path.
    calls = 20_000 if SMOKE else 200_000
    assert not configure_tracing(None)  # ensure the disabled fast path

    def noop_calls() -> None:
        for _ in range(calls):
            with span("e16-noop"):
                pass

    noop_us = wall_time(noop_calls, repeat=REPEAT) / calls * 1e6
    per_event_us = timings["disabled"] / total_events * 1e6
    implied_pct = noop_us / per_event_us * 100.0
    print_table(
        "E16 (bar): disabled span() call vs one event application",
        ["span() us", "apply_event us", "implied overhead"],
        [[f"{noop_us:.4f}", f"{per_event_us:.2f}", f"{implied_pct:.3f}%"]],
    )
    _baseline["noop_span"] = {
        "span_call_us": round(noop_us, 5),
        "apply_event_us": round(per_event_us, 3),
        "implied_overhead_pct": round(implied_pct, 4),
    }
    assert implied_pct < 5.0, (
        f"disabled span() costs {implied_pct:.2f}% of one event "
        f"application (bar is 5%)"
    )
    if not SMOKE:
        # Recording is allowed to cost, but not pathologically.
        assert ratios["ring buffer"] < 10.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e16_metrics_scrape_cost(benchmark):
    """Rendering the process registry is cheap enough to poll."""
    _, replay = _workload()
    replay()  # populate engine counters

    render_ms = wall_time(lambda: METRICS.render_prometheus(), repeat=REPEAT) * 1e3
    snapshot_ms = wall_time(lambda: METRICS.snapshot(), repeat=REPEAT) * 1e3
    families = len(METRICS.families())
    print_table(
        "E16b: metrics scrape cost",
        ["families", "render ms", "snapshot ms"],
        [[families, f"{render_ms:.3f}", f"{snapshot_ms:.3f}"]],
    )
    _baseline["metrics"] = {
        "families": families,
        "render_ms": round(render_ms, 4),
        "snapshot_ms": round(snapshot_ms, 4),
    }
    assert families >= 10  # engine, search, service, broker, caches all report
    if not SMOKE:
        assert render_ms < 50.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e16_write_baseline(benchmark):
    """Archive the measured numbers (full runs only — smoke sizes would
    overwrite the committed baseline with non-comparable figures)."""
    if not SMOKE and _baseline:
        BASELINE_PATH.write_text(
            json.dumps({"experiment": "E16", **_baseline}, indent=2) + "\n"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
