"""Boolean formulas and brute-force satisfiability.

Support machinery for the coNP-hardness reduction of Theorem 3.4:
propositional formulas over named variables, evaluation, brute-force
(exponential) satisfiability, and random formula generation for the
experiments.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple


class BoolExpr:
    """Base class for propositional formulas."""

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return AndExpr((self, other))

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return OrExpr((self, other))

    def __invert__(self) -> "BoolExpr":
        return NotExpr(self)


@dataclass(frozen=True)
class VarExpr(BoolExpr):
    """A propositional variable."""

    name: str

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return assignment[self.name]

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NotExpr(BoolExpr):
    inner: BoolExpr

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return not self.inner.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.inner.variables()

    def __repr__(self) -> str:
        return f"¬({self.inner!r})"


@dataclass(frozen=True)
class AndExpr(BoolExpr):
    parts: PyTuple[BoolExpr, ...]

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return all(part.evaluate(assignment) for part in self.parts)

    def variables(self) -> FrozenSet[str]:
        return frozenset().union(*(part.variables() for part in self.parts)) if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class OrExpr(BoolExpr):
    parts: PyTuple[BoolExpr, ...]

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return any(part.evaluate(assignment) for part in self.parts)

    def variables(self) -> FrozenSet[str]:
        return frozenset().union(*(part.variables() for part in self.parts)) if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


def assignments(variables: Sequence[str]) -> Iterator[Dict[str, bool]]:
    """All 2^n truth assignments over *variables*."""
    ordered = list(variables)
    for values in itertools.product((False, True), repeat=len(ordered)):
        yield dict(zip(ordered, values))


def satisfying_assignment(
    formula: BoolExpr, variables: Optional[Sequence[str]] = None
) -> Optional[Dict[str, bool]]:
    """A satisfying assignment, or None (brute force)."""
    names = sorted(variables if variables is not None else formula.variables())
    for assignment in assignments(names):
        if formula.evaluate(assignment):
            return assignment
    return None


def is_satisfiable(formula: BoolExpr, variables: Optional[Sequence[str]] = None) -> bool:
    return satisfying_assignment(formula, variables) is not None


def random_cnf(
    n_variables: int, n_clauses: int, clause_size: int = 3, seed: Optional[int] = None
) -> BoolExpr:
    """A random CNF formula over ``x0..x<n-1>``."""
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(n_variables)]
    clauses: List[BoolExpr] = []
    for _ in range(n_clauses):
        literals: List[BoolExpr] = []
        for name in rng.sample(names, k=min(clause_size, len(names))):
            literal: BoolExpr = VarExpr(name)
            if rng.random() < 0.5:
                literal = NotExpr(literal)
            literals.append(literal)
        clauses.append(OrExpr(tuple(literals)))
    return AndExpr(tuple(clauses))
