"""The running examples of the paper, as ready-made programs.

Every example used in the paper's narrative is reproduced here so tests,
examples and benchmarks can refer to a single canonical source:

* Example 2.2 — the lossy schema rejected by losslessness;
* the Section 2 ``Assign``/``Replace`` rule;
* Example 4.2 — the cto/ceo/assistant/applicant approval workflow whose
  unfaithful scenario is misleading;
* Example 5.1 — the hiring workflow (hr/cfo/ceo/Sue) and its
  view-program for Sue;
* Example 5.7 — the non-transparent variant without cfoOK, and the
  Stage-based transparent variant;
* Proposition 5.3 — the transitive-closure program with no view-program;
* Example 6.1 — simultaneous transparent/opaque head updates.

Note on Example 5.1: taken literally, the rule ``+cfoOK@cfo(x) :-`` must
instantiate ``x`` with a *globally fresh* value (run semantics, Section
2), so ``cfoOK`` can never hold for a key for which ``Cleared`` holds and
``approve`` can never fire.  :func:`hiring_program` therefore grounds the
``cfook`` rule with the body ``Cleared@cfo(x)`` by default (the evident
intent of the example); pass ``literal=True`` for the verbatim rules.
"""

from __future__ import annotations

from ..workflow.parser import parse_program
from ..workflow.program import WorkflowProgram
from ..workflow.views import CollaborativeSchema


def hiring_program(literal: bool = False) -> WorkflowProgram:
    """Example 5.1: the hr/cfo/ceo hiring workflow observed by Sue.

    Sue sees only ``Cleared`` and ``Hire``; the other peers see all
    relations.  With ``literal=True`` the ``cfook`` rule has an empty
    body, exactly as printed in the paper (see module docstring).
    """
    cfook_rule = "+cfoOK@cfo(x) :-" if literal else "+cfoOK@cfo(x) :- Cleared@cfo(x)"
    return parse_program(
        f"""
        peers hr, ceo, cfo, sue
        relation Cleared(K)
        relation cfoOK(K)
        relation Approved(K)
        relation Hire(K)
        view Cleared@hr(K)
        view Cleared@ceo(K)
        view Cleared@cfo(K)
        view Cleared@sue(K)
        view cfoOK@hr(K)
        view cfoOK@ceo(K)
        view cfoOK@cfo(K)
        view Approved@hr(K)
        view Approved@ceo(K)
        view Approved@cfo(K)
        view Hire@hr(K)
        view Hire@ceo(K)
        view Hire@cfo(K)
        view Hire@sue(K)
        [clear]   +Cleared@hr(x) :-
        [cfook]   {cfook_rule}
        [approve] +Approved@ceo(x) :- Cleared@ceo(x), cfoOK@ceo(x)
        [hire]    +Hire@hr(x) :- Approved@hr(x)
        """
    )


def hiring_no_cfo_program() -> WorkflowProgram:
    """Example 5.7, first variant: cfoOK removed, still not transparent.

    The fact ``Approved(Sue)`` can pre-exist invisibly to Sue and be used
    by a later Sue-visible event, violating transparency.
    """
    return parse_program(
        """
        peers hr, ceo, sue
        relation Cleared(K)
        relation Approved(K)
        relation Hire(K)
        view Cleared@hr(K)
        view Cleared@ceo(K)
        view Cleared@sue(K)
        view Approved@hr(K)
        view Approved@ceo(K)
        view Hire@hr(K)
        view Hire@ceo(K)
        view Hire@sue(K)
        [clear]   +Cleared@hr(x) :-
        [approve] +Approved@ceo(x) :- Cleared@ceo(x)
        [hire]    +Hire@hr(x) :- Approved@hr(x)
        """
    )


def hiring_transparent_program() -> WorkflowProgram:
    """Example 5.7, second variant: the Stage-based transparent program.

    The ``Stage`` relation (visible to every peer) holds at most one
    tuple ``Stage(0, s)``; every Sue-visible event deletes it, so events
    relying on invisible facts must run inside a freshly-opened stage,
    preventing the reuse of information computed before the latest
    Sue-visible update.

    One correction to the program as printed in the paper: the
    ``approve`` rule there writes ``+Approved@ceo(x, s)`` with ``x``
    taken from the body, i.e. it *reuses* the candidate's key across
    stages.  A stale ``Approved(x, s_old)`` from an earlier stage then
    makes the insertion chase-conflict on instances that are Sue-fresh
    but carry invisible junk, breaking the uniform transparency of
    Definition 5.6 (Remark 5.12 insists non-reachable p-fresh instances
    count).  The design guidelines (C4)(ii) of Section 6 prescribe the
    fix the paper itself states — invisible transparent facts are
    *created with new keys* and carry the stage id — so ``Approved``
    here is ``Approved(a, cand, sid)`` with a fresh key ``a`` per
    approval.
    """
    return parse_program(
        """
        peers hr, ceo, sue
        relation Stage(K, sid)
        relation Cleared(K)
        relation Approved(K, cand, sid)
        relation Hire(K)
        view Stage@hr(K, sid)
        view Stage@ceo(K, sid)
        view Stage@sue(K, sid)
        view Cleared@hr(K)
        view Cleared@ceo(K)
        view Cleared@sue(K)
        view Approved@hr(K, cand, sid)
        view Approved@ceo(K, cand, sid)
        view Hire@hr(K)
        view Hire@ceo(K)
        view Hire@sue(K)
        [stage]   +Stage@sue(0, z) :- not Key[Stage]@sue(0)
        [clear]   +Cleared@hr(x), -Key[Stage]@hr(0) :- Stage@hr(0, s)
        [approve] +Approved@ceo(a, x, s) :- Cleared@ceo(x), Stage@ceo(0, s)
        [hire]    +Hire@hr(x), -Key[Stage]@hr(0) :- Approved@hr(a, x, s), Stage@hr(0, s)
        """
    )


def approval_program() -> WorkflowProgram:
    """Example 4.2: the cto/ceo/assistant/applicant approval workflow.

    Propositions ``ok`` and ``approval`` are unary relations keyed by the
    constant 0.  The applicant sees only ``approval``.  The run
    ``e f g h`` (ok'd by cto, retracted, ok'd by ceo, approved) admits
    the misleading scenario ``e h``, which faithfulness rules out.
    """
    return parse_program(
        """
        peers cto, ceo, assistant, applicant
        relation ok(K)
        relation approval(K)
        view ok@cto(K)
        view ok@ceo(K)
        view ok@assistant(K)
        view approval@cto(K)
        view approval@ceo(K)
        view approval@assistant(K)
        view approval@applicant(K)
        [e] +ok@cto(0) :-
        [f] -Key[ok]@cto(0) :- ok@cto(0)
        [g] +ok@ceo(0) :-
        [h] +approval@assistant(0) :- ok@assistant(0)
        """
    )


def vetoed_hiring_program() -> WorkflowProgram:
    """Remark 5.2: linear equivalence is weaker than tree equivalence.

    Like the hiring workflow, but the CFO may silently *veto* a cleared
    candidate, after which approval (and hence hiring) is impossible.
    The synthesized view program for Sue offers ``+Hire@ω(x)`` whenever
    she sees ``Cleared(x)`` — sound and complete for linear runs (some
    run of the source matches) — yet in runs where the veto already
    happened the transition is impossible: the *trees* of runs differ,
    which is exactly the subtlety Remark 5.2 describes and transparency
    eliminates.
    """
    return parse_program(
        """
        peers hr, cfo, sue
        relation Cleared(K)
        relation Vetoed(K)
        relation Approved(K)
        relation Hire(K)
        view Cleared@hr(K)
        view Cleared@cfo(K)
        view Cleared@sue(K)
        view Vetoed@hr(K)
        view Vetoed@cfo(K)
        view Approved@hr(K)
        view Approved@cfo(K)
        view Hire@hr(K)
        view Hire@cfo(K)
        view Hire@sue(K)
        [clear]   +Cleared@hr(x) :-
        [veto]    +Vetoed@cfo(x) :- Cleared@cfo(x)
        [approve] +Approved@cfo(x) :- Cleared@cfo(x), not Key[Vetoed]@cfo(x)
        [hire]    +Hire@hr(x) :- Approved@hr(x)
        """
    )


def derivation_choice_program() -> WorkflowProgram:
    """Example 4.1 (essence): two alternative derivations of one fact.

    ``C5`` can be derived from ``V1`` (rule ``c5a``) or from ``V2``
    (rule ``c5b``); peer ``p`` sees only ``C5``.  In the run
    ``v1 c5a v2 c5b``, the subrun ``v2 c5b`` is a scenario for ``p``
    although ``c5a`` is the event that actually derived ``C5`` —
    precisely the anomaly boundary faithfulness rules out.
    """
    return parse_program(
        """
        peers p, q
        relation V1(K)
        relation V2(K)
        relation C5(K)
        view V1@q(K)
        view V2@q(K)
        view C5@q(K)
        view C5@p(K)
        [v1]  +V1@q(0) :-
        [v2]  +V2@q(0) :-
        [c5a] +C5@q(0) :- V1@q(0)
        [c5b] +C5@q(0) :- V2@q(0)
        """
    )


def replace_assignment_program() -> WorkflowProgram:
    """The Section 2 example rule: HR replaces employee x by x' on a project.

    ``Assign(x, y)`` says employee ``x`` (the key) is assigned to project
    ``y``; ``Replace(x, x2)`` requests replacing ``x`` by ``x2``.  The
    ``replace`` rule deletes one assignment tuple and inserts another in
    a single event, exactly as printed in Section 2.
    """
    return parse_program(
        """
        peers hr, manager
        relation Assign(K, proj)
        relation Replace(K, new)
        view Assign@hr(K, proj)
        view Assign@manager(K, proj)
        view Replace@hr(K, new)
        view Replace@manager(K, new)
        [assign]  +Assign@manager(e, p) :-
        [request] +Replace@manager(e, e2) :- Assign@manager(e, p)
        [replace] -Key[Assign]@hr(x), +Assign@hr(x2, y) :- Assign@hr(x, y), Replace@hr(x, x2), x != x2
        """
    )


def lossy_schema_declarations() -> str:
    """Example 2.2: declarations of the schema violating losslessness.

    Peer ``p`` sees all of ``R`` but only tuples with ``A = ⊥``; peer
    ``q`` sees only ``K, A``.  The value of ``B`` is lost as soon as
    ``A`` becomes non-null.  Returned as source text; parse with
    :func:`repro.workflow.parser.parse_schema`.
    """
    return """
        peers p, q
        relation R(K, A, B)
        view R@p(K, A, B) where A = null
        view R@q(K, A)
    """


def transitive_closure_program() -> WorkflowProgram:
    """Proposition 5.3: a program with no view-program for peer p.

    Peer ``q`` sees binary relations R, S, T; peer ``p`` sees only R and
    T.  ``q`` computes the transitive closure of R in S and transfers the
    pair (0, 1) from S to T.  The insertion of (0, 1) into T@p depends on
    a path of unbounded length in R@p, which no rule with a bounded body
    can express.

    Binary graph edges are encoded as tuples ``R(k, from, to)`` with a
    fresh key per edge (the model's relations are keyed).
    """
    return parse_program(
        """
        peers p, q
        relation R(K, A, B)
        relation S(K, A, B)
        relation T(K, A, B)
        view R@p(K, A, B)
        view T@p(K, A, B)
        view R@q(K, A, B)
        view S@q(K, A, B)
        view T@q(K, A, B)
        [edge]  +R@p(k, x, y) :-
        [base]  +S@q(k, x, y) :- R@q(e, x, y)
        [step]  +S@q(k, x, z) :- S@q(s, x, y), R@q(e, y, z)
        [xfer]  +T@q(k, 0, 1) :- S@q(s, 0, 1)
        """
    )


def opaque_veto_program() -> WorkflowProgram:
    """Example 6.1: simultaneous updates of visible and opaque relations.

    Peers may silently derive ``T('sue', 'reject')`` and thereby rule out
    the future visible event inserting ``R('sue', 'hire')`` without
    informing ``p`` — the transparency violation motivating guideline
    (C4).  Key-less propositions are modelled with string keys 'sue'.
    """
    return parse_program(
        """
        peers p, q
        relation R(K, decision)
        relation T(K, decision)
        view R@p(K, decision)
        view R@q(K, decision)
        view T@q(K, decision)
        [hire]   +R@q('sue', 'hire'),   +T@q('sue', 'hire')   :-
        [reject] +R@q('sue', 'reject'), +T@q('sue', 'reject') :-
        """
    )
