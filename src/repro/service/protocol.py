"""The JSON-lines wire protocol of the workflow service.

One request per line, one response per line, both JSON objects.  Every
request carries an ``op`` and an optional client-chosen ``id`` that the
response echoes (so clients may pipeline).  Success responses have
``"ok": true``; failures have ``"ok": false`` plus ``error`` (a stable
machine-readable code) and ``message``.

Operations
----------

``open``      ``{"op": "open", "run": <id>}`` — host a run (recovering
              it from its journal when one exists).  Response:
              ``{"ok": true, "run": ..., "recovered": bool,
              "applied": int}``.
``submit``    ``{"op": "submit", "run": <id>, "event": {"rule": name,
              "valuation": {...}}}`` — the event encoding of
              :func:`repro.workflow.serialization.event_to_dict`.
              Response carries ``status`` (``applied`` / ``quarantined``
              / ``rejected_backpressure`` / ``rejected_budget``),
              ``seq``, ``attempts``, ``recovered`` and the acting
              peer's post-event view ``version``.  An optional ``seq``
              field on the *request* is an idempotency key: the
              client's expected sequence number for this event.  A
              submit whose ``seq`` the run has already applied is
              acknowledged again (``"deduped": true``) instead of being
              re-applied, which makes retries through the cluster
              router exactly-once; a ``seq`` *ahead* of the run is a
              gap and is rejected.
``submit_batch`` ``{"op": "submit_batch", "run": <id>, "events":
              [{"event": {...}, "seq": n?}, ...]}`` — several events
              for one run in a single request.  The server enqueues
              them together, so the broker's drain worker can apply
              them as one amortized batch; the response's ``results``
              list carries one per-event outcome object (the same
              fields as a ``submit`` response) in request order, and
              per-event semantics — acks, journal records, provenance,
              view versions — are identical to submitting them one at
              a time.
``view``      ``{"op": "view", "run": <id>, "peer": p}`` — the peer's
              materialized view instance and its ``version``.
``explain``   ``{"op": "explain", "run": <id>, "peer": p,
              "index": i?}`` — the minimal p-faithful scenario of the
              hosted run (or of one event when ``index`` given), served
              by the per-(run, peer) incremental explainer.
``applicable`` ``{"op": "applicable", "run": <id>, "peer": p?}`` — the
              events currently applicable at the run's instance (for
              one peer when ``peer`` given), served by the run's
              delta-maintained applicable-event index.  Response:
              ``{"ok": true, "run": ..., "applied": int, "count": int,
              "events": [{"rule": ..., "valuation": {...}}, ...]}``.
``stats``     ``{"op": "stats", "run": <id>?}`` — service-wide or
              per-run counters (including the process-wide query
              evaluation counters under ``queries``).
``metrics``   ``{"op": "metrics"}`` — the process-wide metrics registry
              rendered as Prometheus text exposition format (version
              0.0.4) in the response's ``text`` field, plus the
              structured ``snapshot``.
``provenance`` ``{"op": "provenance", "run": <id>, "relation": R?,
              "key": k?, "peer": p?}`` — provenance queries over the
              hosted run's per-event provenance log: which events
              touched relation ``R`` (or its key ``k``), or which
              events changed peer ``p``'s view.  Without a filter the
              whole log is returned under ``records``.
``provenance_rank`` ``{"op": "provenance_rank", "run": <id>, "peer": p,
              "relation": R?, "key": k?, "method": m?, "samples": s?,
              "seed": n?}`` — Shapley-value attribution of the hosted
              run's events toward a target visible to peer ``p``: the
              fact ``R[k]`` (or all of ``R`` without a key, or the
              peer's whole view without a relation).  ``method`` is
              ``auto`` (default), ``exact`` or ``sampled``; sampling is
              deterministic in ``seed``.  The response's ``ranking``
              lists events most-important first, each merged with its
              provenance citation; ``baseline``, ``grand`` and
              ``total`` expose the efficiency identity
              ``total == grand - baseline``.  Runs longer than
              ``MAX_RANK_EVENTS`` are refused (``invalid``): ranking
              replays event coalitions, so cost grows with run length.
``replicate`` ``{"op": "replicate", "run": <id>, "records": [...]}`` —
              append journal records shipped by another shard's
              primary into this server's storage backend (the
              follower half of the cluster replication contract; see
              ``docs/CLUSTER.md``).  With ``"count": true`` instead of
              ``records`` the server reports how many records it holds
              for the run, which is the shipper's resume/reconcile
              cursor.
``close``     ``{"op": "close", "run": <id>}`` — stop hosting, sealing
              the journal with status ``completed``.
``shutdown``  ``{"op": "shutdown"}`` — drain in-flight mailboxes,
              persist every hosted run's records through the storage
              backend, and only then acknowledge (``"drained": n``) and
              stop the server — when the response arrives, everything
              acknowledged before it is durably applied.
``ping``      liveness probe.

Versioning
----------

Every response envelope carries ``"protocol": PROTOCOL_VERSION``.
Requests *may* carry a ``protocol`` field; the server rejects requests
that demand a newer protocol than it speaks (``ProtocolError``), and
ignores older ones — version 2 is a strict superset of version 1.

Error codes
-----------

The machine-readable ``error`` codes of failure responses are the keys
of :data:`repro.service.errors.ERROR_CODES` — the single registry the
server, this documentation and the load generator share.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple as PyTuple

from .errors import ProtocolError

__all__ = [
    "LineReader",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "decode_line",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
]

#: Version 2 added the ``metrics`` and ``provenance`` ops and the
#: ``protocol`` field on every response envelope.  Version 3 added the
#: ``replicate`` op, the idempotent ``seq`` field on ``submit``, the
#: drain-before-ack ``shutdown`` contract and structured error
#: envelopes for oversized request lines.  Version 4 added the
#: ``submit_batch`` op (several events to one run in a single request,
#: per-event outcomes in order).  Version 5 added the
#: ``provenance_rank`` op (Shapley-ranked provenance attributions for a
#: peer-visible target).
PROTOCOL_VERSION = 5

#: Request lines longer than this are rejected with a structured
#: ``protocol`` error envelope instead of dropping the connection.
MAX_LINE_BYTES = 1 << 20

#: Every operation the server understands.
OPS = (
    "open",
    "submit",
    "submit_batch",
    "view",
    "explain",
    "applicable",
    "stats",
    "metrics",
    "provenance",
    "provenance_rank",
    "replicate",
    "close",
    "shutdown",
    "ping",
)

#: Ops that must name a run.
_RUN_OPS = frozenset(
    {
        "open",
        "submit",
        "submit_batch",
        "view",
        "explain",
        "applicable",
        "provenance",
        "provenance_rank",
        "replicate",
        "close",
    }
)
#: Ops that must name a peer.
_PEER_OPS = frozenset({"view", "explain", "provenance_rank"})


class LineReader:
    """Newline-framed reads with a hard per-line cap.

    ``asyncio.StreamReader.readline`` raises ``ValueError`` on an
    over-limit line *and clears its buffer*, which desynchronizes the
    framing and historically made the server drop the whole connection.
    This reader frames lines itself: a line at or under ``max_bytes``
    is returned whole; a longer one is *drained* through to its
    terminating newline and reported as oversized — the connection
    stays framed and usable, and the caller can answer with a
    structured error envelope instead of a hangup.
    """

    def __init__(
        self, reader: asyncio.StreamReader, max_bytes: int = MAX_LINE_BYTES
    ) -> None:
        if max_bytes < 2:
            raise ProtocolError("the line cap must be at least 2 bytes")
        self._reader = reader
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self.oversized_lines = 0

    async def readline(self) -> PyTuple[bytes, bool]:
        """``(line, oversized)`` — ``(b"", False)`` at EOF.

        *line* includes its newline when one arrived; an unterminated
        trailing fragment at EOF is returned as-is (matching
        ``StreamReader.readline``).  When *oversized* is True the line
        exceeded the cap: its bytes were consumed and discarded, and
        *line* is only the (capped) prefix, for diagnostics.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if 0 <= newline <= self.max_bytes:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line, False
            if newline > self.max_bytes or len(self._buffer) > self.max_bytes:
                return await self._drain_oversized(newline), True
            chunk = await self._reader.read(65536)
            if not chunk:
                line = bytes(self._buffer)
                self._buffer.clear()
                return line, False
            self._buffer.extend(chunk)

    async def _drain_oversized(self, newline: int) -> bytes:
        """Consume the oversized line through its newline; keep the rest."""
        self.oversized_lines += 1
        prefix = bytes(self._buffer[: self.max_bytes])
        while newline < 0:
            del self._buffer[:]
            chunk = await self._reader.read(65536)
            if not chunk:  # EOF mid-line: nothing left to resynchronize
                return prefix
            self._buffer.extend(chunk)
            newline = self._buffer.find(b"\n")
        del self._buffer[: newline + 1]
        return prefix


def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (UTF-8, newline-terminated)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict or raise :class:`ProtocolError`."""
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message


def parse_request(message: Dict[str, Any]) -> PyTuple[str, Dict[str, Any]]:
    """Validate a request message; returns ``(op, message)``.

    Checks the op is known and that run/peer are present where the op
    requires them, so handlers can assume a well-formed request.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    requested = message.get("protocol")
    if requested is not None:
        if not isinstance(requested, int):
            raise ProtocolError("the 'protocol' field must be an integer")
        if requested > PROTOCOL_VERSION:
            raise ProtocolError(
                f"request demands protocol {requested}, "
                f"server speaks {PROTOCOL_VERSION}"
            )
    if op in _RUN_OPS and not isinstance(message.get("run"), str):
        raise ProtocolError(f"op {op!r} requires a string 'run' field")
    if op in _PEER_OPS and not isinstance(message.get("peer"), str):
        raise ProtocolError(f"op {op!r} requires a string 'peer' field")
    if op == "submit":
        if not isinstance(message.get("event"), dict):
            raise ProtocolError("op 'submit' requires an 'event' object")
        seq = message.get("seq")
        if seq is not None and (not isinstance(seq, int) or seq < 0):
            raise ProtocolError(
                "the 'seq' idempotency key must be a non-negative integer"
            )
    if op == "submit_batch":
        events = message.get("events")
        if not isinstance(events, list) or not events:
            raise ProtocolError(
                "op 'submit_batch' requires a non-empty 'events' list"
            )
        for entry in events:
            if not isinstance(entry, dict) or not isinstance(
                entry.get("event"), dict
            ):
                raise ProtocolError(
                    "each 'submit_batch' entry must be an object with an "
                    "'event' object"
                )
            seq = entry.get("seq")
            if seq is not None and (not isinstance(seq, int) or seq < 0):
                raise ProtocolError(
                    "the 'seq' idempotency key must be a non-negative integer"
                )
    if op == "provenance_rank":
        method = message.get("method")
        if method is not None and method not in ("auto", "exact", "sampled"):
            raise ProtocolError(
                "the 'method' field must be 'auto', 'exact' or 'sampled'"
            )
        for field in ("samples", "seed"):
            count = message.get(field)
            if count is not None and (not isinstance(count, int) or count < 0):
                raise ProtocolError(
                    f"the {field!r} field must be a non-negative integer"
                )
        if message.get("key") is not None and message.get("relation") is None:
            raise ProtocolError("a target 'key' needs a target 'relation'")
    if op == "replicate":
        records = message.get("records")
        if not message.get("count") and not isinstance(records, list):
            raise ProtocolError(
                "op 'replicate' requires a 'records' list (or 'count': true)"
            )
    return op, message


def ok_response(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "protocol": PROTOCOL_VERSION, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id: Optional[Any], code: str, message: str
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": code,
        "message": message,
    }
    if request_id is not None:
        response["id"] = request_id
    return response
