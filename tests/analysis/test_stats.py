"""Tests for run statistics and scaling-fit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    RunStatistics,
    fit_power_law,
    format_table,
    mean,
    stddev,
)
from repro.workflow import Event, execute


class TestRunStatistics:
    def test_example_42(self, approval_run):
        stats = RunStatistics.of(approval_run, "applicant")
        assert stats.events == 4
        assert stats.visible == 1
        assert stats.silent == 3
        assert stats.scenario_size == 2
        assert stats.compression == pytest.approx(0.5)

    def test_empty_run(self, approval):
        run = execute(approval, [])
        stats = RunStatistics.of(run, "applicant")
        assert stats.events == 0 and stats.compression == 0.0


class TestBasicStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stddev(self):
        assert stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2))
        assert stddev([5.0]) == 0.0


class TestPowerLawFit:
    def test_quadratic(self):
        sizes = [10, 20, 40, 80]
        times = [n**2 * 0.001 for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(2.0, abs=0.01)
        assert fit.r_squared > 0.999
        assert fit.is_polynomial(3)

    def test_linear(self):
        fit = fit_power_law([1, 2, 4, 8], [3, 6, 12, 24])
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_exponential_flagged(self):
        sizes = [5, 10, 15, 20, 25]
        times = [2.0**n for n in sizes]
        fit = fit_power_law(sizes, times)
        assert not fit.is_polynomial(5)

    def test_degenerate_inputs(self):
        assert fit_power_law([], []).exponent == 0.0
        assert fit_power_law([1], [1]).exponent == 0.0
        assert fit_power_law([0, -1], [1, 2]).exponent == 0.0

    @given(
        exponent=st.floats(0.5, 3.0),
        coefficient=st.floats(0.001, 10.0),
    )
    def test_recovers_exact_power_laws(self, exponent, coefficient):
        sizes = [10.0, 20.0, 40.0, 80.0]
        times = [coefficient * n**exponent for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["chain", 10], ["noise", 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_print_table_sink(self, capsys):
        import io

        from repro.analysis.stats import print_table, set_table_sink

        sink = io.StringIO()
        set_table_sink(sink)
        try:
            print_table("T", ["a"], [[1]])
        finally:
            set_table_sink(None)
        assert "=== T ===" in sink.getvalue()
        assert "=== T ===" in capsys.readouterr().out
