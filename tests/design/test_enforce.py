"""Tests for the runtime transparency enforcer (Theorem 6.7 semantics)."""

import pytest

from repro.design.enforce import TransparencyEnforcer, enforce_run
from repro.design.run_properties import is_run_h_bounded, run_stage_bound
from repro.workflow import Event, RunGenerator, execute
from repro.workflow.domain import FreshValue
from repro.workflow.errors import EnforcementError
from repro.workflow.queries import Var
from repro.workloads.generators import chain_program


def events_of(program, *names):
    return [Event(program.rule(name), {}) for name in names]


class TestTransparentRunsAccepted:
    def test_approval_run_accepted(self, approval):
        trace = enforce_run(approval, "applicant", 2, events_of(approval, *"efgh"))
        assert trace.accepted

    def test_chain_within_budget(self):
        program = chain_program(2)
        events = events_of(program, "start", "step0", "step1")
        assert enforce_run(program, "observer", 3, events).accepted

    def test_visible_only_runs_accepted(self, approval):
        # Events of visible relations are transparent with singleton
        # provenance.
        trace = enforce_run(approval, "cto", 1, events_of(approval, *"efgh"))
        assert trace.accepted


class TestBoundednessEnforced:
    def test_chain_blocked_when_h_too_small(self):
        program = chain_program(3)
        events = events_of(program, "start", "step0", "step1", "step2")
        trace = enforce_run(program, "observer", 3, events)
        assert not trace.accepted
        (blocked,) = trace.blocked()
        assert blocked.index == 3  # the visible event overflows h
        assert "provenance" in blocked.reason

    def test_chain_accepted_with_enough_budget(self):
        program = chain_program(3)
        events = events_of(program, "start", "step0", "step1", "step2")
        assert enforce_run(program, "observer", 4, events).accepted

    def test_accepted_runs_are_h_bounded(self, approval):
        run = RunGenerator(approval, seed=5).random_run(12)
        h = 3
        trace = enforce_run(approval, "applicant", h, run.events)
        if trace.accepted:
            assert is_run_h_bounded(run, "applicant", h)


class TestTransparencyEnforced:
    def test_stale_fact_usage_blocked(self, hiring_no_cfo):
        """The Example 5.7 anomaly: Approved derived in an old stage is
        used by a later visible event."""
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k, k2 = FreshValue(0), FreshValue(1)
        events = [
            Event(clear, {Var("x"): k}),       # visible
            Event(approve, {Var("x"): k}),      # silent, transparent
            Event(clear, {Var("x"): k2}),       # visible: new stage
            Event(hire, {Var("x"): k}),         # visible, uses stale Approved
        ]
        trace = enforce_run(hiring_no_cfo, "sue", 2, events)
        assert not trace.accepted
        (blocked,) = trace.blocked()
        assert blocked.index == 3

    def test_same_stage_usage_allowed(self, hiring_no_cfo):
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k = FreshValue(0)
        events = [
            Event(clear, {Var("x"): k}),
            Event(approve, {Var("x"): k}),
            Event(hire, {Var("x"): k}),
        ]
        assert enforce_run(hiring_no_cfo, "sue", 2, events).accepted

    def test_block_mode_raises(self, hiring_no_cfo):
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k, k2 = FreshValue(0), FreshValue(1)
        enforcer = TransparencyEnforcer(hiring_no_cfo, "sue", 2, mode="block")
        enforcer.extend(Event(clear, {Var("x"): k}))
        enforcer.extend(Event(approve, {Var("x"): k}))
        enforcer.extend(Event(clear, {Var("x"): k2}))
        with pytest.raises(EnforcementError):
            enforcer.extend(Event(hire, {Var("x"): k}))
        # The blocked event was not applied.
        assert not enforcer.current_instance.has_key("Hire", k)

    def test_opaque_silent_work_allowed(self, hiring_no_cfo):
        """Non-transparent events may proceed while they stay invisible."""
        clear, approve = hiring_no_cfo.rule("clear"), hiring_no_cfo.rule("approve")
        k, k2 = FreshValue(0), FreshValue(1)
        events = [
            Event(clear, {Var("x"): k}),
            Event(clear, {Var("x"): k2}),
            Event(approve, {Var("x"): k}),  # transparent (Cleared visible)
        ]
        assert enforce_run(hiring_no_cfo, "sue", 2, events).accepted


class TestDeletionTracking:
    def test_transparent_delete_and_recreate(self, approval):
        # e creates ok, f deletes it, g recreates, h uses it: all within
        # one applicant-stage, all transparent.
        trace = enforce_run(approval, "applicant", 3, events_of(approval, *"efgh"))
        assert trace.accepted
        # h's provenance includes g's step (the live creator).
        final = trace.decisions[-1]
        assert final.transparent

    def test_enforcer_invalid_event_rejected(self, approval):
        enforcer = TransparencyEnforcer(approval, "applicant", 2)
        with pytest.raises(Exception):
            enforcer.extend(Event(approval.rule("h"), {}))
        assert len(enforcer) == 0


class TestRollbackMode:
    """Remark 6.9: roll back to the state at the beginning of the stage."""

    def test_rollback_discards_stage(self, hiring_no_cfo):
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k, k2 = FreshValue(0), FreshValue(1)
        enforcer = TransparencyEnforcer(hiring_no_cfo, "sue", 2, mode="rollback")
        enforcer.extend(Event(clear, {Var("x"): k}))
        enforcer.extend(Event(approve, {Var("x"): k}))  # silent, same stage? no:
        # clear was visible, so approve opens a new stage's silent prefix.
        enforcer.extend(Event(clear, {Var("x"): k2}))   # visible: stage boundary
        snapshot = enforcer.current_instance
        events_before = len(enforcer)
        decision = enforcer.extend(Event(hire, {Var("x"): k}))  # stale Approved
        assert not decision.allowed
        assert enforcer.current_instance == snapshot
        assert len(enforcer) == events_before
        assert enforcer.rollbacks == 1
        assert not enforcer.current_instance.has_key("Hire", k)

    def test_rollback_discards_silent_prefix_too(self, hiring_no_cfo):
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k, k2 = FreshValue(0), FreshValue(1)
        enforcer = TransparencyEnforcer(hiring_no_cfo, "sue", 1, mode="rollback")
        enforcer.extend(Event(clear, {Var("x"): k}))
        boundary = enforcer.current_instance
        # Silent approve, then a hire whose provenance {approve, hire}
        # overflows h=1: the rollback must also drop the approve.
        enforcer.extend(Event(approve, {Var("x"): k}))
        assert enforcer.current_instance.has_key("Approved", k)
        decision = enforcer.extend(Event(hire, {Var("x"): k}))
        assert not decision.allowed
        assert enforcer.current_instance == boundary
        assert not enforcer.current_instance.has_key("Approved", k)

    def test_workflow_continues_after_rollback(self, hiring_no_cfo):
        clear, approve, hire = (
            hiring_no_cfo.rule("clear"),
            hiring_no_cfo.rule("approve"),
            hiring_no_cfo.rule("hire"),
        )
        k, k2 = FreshValue(0), FreshValue(1)
        enforcer = TransparencyEnforcer(hiring_no_cfo, "sue", 2, mode="rollback")
        enforcer.extend(Event(clear, {Var("x"): k}))
        enforcer.extend(Event(approve, {Var("x"): k}))
        enforcer.extend(Event(clear, {Var("x"): k2}))   # stage boundary
        rolled = enforcer.extend(Event(hire, {Var("x"): k}))  # stale: rolled back
        assert not rolled.allowed and enforcer.rollbacks == 1
        # The workflow continues — with the *other* candidate, whose
        # approval can be derived transparently within the current
        # stage.  (Candidate k is burnt: its stale Approved fact from
        # the old stage persists in the data and a no-op re-insert
        # cannot launder it — the Example 5.7 key-reuse problem.)
        enforcer.extend(Event(approve, {Var("x"): k2}))
        decision = enforcer.extend(Event(hire, {Var("x"): k2}))
        assert decision.allowed
        run = enforcer.run()
        assert run.final_instance.has_key("Hire", k2)
        assert not run.final_instance.has_key("Hire", k)

    def test_unknown_mode_rejected(self, hiring_no_cfo):
        with pytest.raises(ValueError):
            TransparencyEnforcer(hiring_no_cfo, "sue", 2, mode="panic")


class TestStageCounter:
    def test_stage_increments_on_visible_events(self, approval):
        enforcer = TransparencyEnforcer(approval, "cto", 2)
        for event in events_of(approval, "e", "f"):
            enforcer.extend(event)
        assert enforcer.stage == 2  # both events are cto's own (visible)
