"""Faithful subsequences and the minimal faithful scenario (Section 4).

A subsequence of a run is *p-faithful* when it contains every event
visible at ``p``, is *boundary faithful* (whenever an event of the
subsequence mentions a key inside a lifecycle, the lifecycle's boundary
events are included) and *modification faithful for p* (all earlier
events of the same lifecycle that turned a relevant attribute from ``⊥``
to a value are included).

The operator ``T_p(ρ, ·)`` adds to a subsequence the events required by
these two conditions; its least fixpoint above the visible events is the
unique minimal p-faithful scenario (Theorem 4.7), computable in
polynomial time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from ..runtime.budget import ambient_checkpoint
from ..workflow.domain import is_null
from ..workflow.runs import Run
from ..workflow.views import CollaborativeSchema
from .lifecycles import Lifecycle, LifecycleIndex
from .subruns import EventSubsequence, visible_subsequence


def relevant_attributes(schema: CollaborativeSchema, relation: str, peer: str) -> FrozenSet[str]:
    """``att(R, q) = att(R@q) ∪ att(σ(R@q))``; empty if q does not see R."""
    view = schema.view(relation, peer)
    if view is None:
        return frozenset()
    return view.relevant_attributes


@dataclass(frozen=True)
class AttributeModification:
    """Event *position* turned ``attribute`` of ``(relation, key)`` from ⊥ to a value."""

    position: int
    relation: str
    key: object
    attribute: str


class FaithfulnessAnalysis:
    """Precomputed structure for faithfulness checks over one run.

    Caches the lifecycle index, per-event key occurrences and the
    attribute modifications each event performs, and exposes the
    requirement operator ``T_p`` for a fixed peer.
    """

    def __init__(self, run: Run, peer: str) -> None:
        self.run = run
        self.peer = peer
        self.schema = run.program.schema
        self.lifecycles = LifecycleIndex(run)
        self._key_occurrences: List[Dict[str, FrozenSet[object]]] = [
            event.key_occurrences() for event in run.events
        ]
        self._modifications = self._collect_modifications()
        self._required_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    # Modifications: insertions turning attributes from ⊥ to a value
    # ------------------------------------------------------------------

    def _collect_modifications(self) -> Dict[PyTuple[str, object], List[AttributeModification]]:
        """Index attribute modifications by (relation, key)."""
        out: Dict[PyTuple[str, object], List[AttributeModification]] = {}
        run = self.run
        for i, event in enumerate(run.events):
            before = run.instance_before(i)
            after = run.instance_after(i)
            for insertion in event.ground_insertions():
                relation = insertion.view.relation.name
                key = insertion.key_term.value
                old = before.tuple_with_key(relation, key)
                if old is None:
                    continue  # creation of a new tuple, not a modification
                new = after.tuple_with_key(relation, key)
                if new is None:  # pragma: no cover - cannot happen: same event
                    continue
                for attribute in old.attributes:
                    if is_null(old[attribute]) and not is_null(new[attribute]):
                        out.setdefault((relation, key), []).append(
                            AttributeModification(i, relation, key, attribute)
                        )
        return out

    def modifications_of(self, relation: str, key: object) -> PyTuple[AttributeModification, ...]:
        return tuple(self._modifications.get((relation, key), ()))

    def key_occurrences(self, position: int) -> Mapping[str, FrozenSet[object]]:
        """``K(R, e_i)`` for every relation R mentioned by the event."""
        return self._key_occurrences[position]

    # ------------------------------------------------------------------
    # Direct requirements of one event
    # ------------------------------------------------------------------

    def required_events(self, position: int) -> FrozenSet[int]:
        """Events required (boundary + modification) by the event at *position*.

        Boundary faithfulness: for each key the event mentions that lies
        inside a lifecycle, the lifecycle's boundary events.
        Modification faithfulness: earlier events of the same lifecycle
        that turned an attribute in ``att(R, q) ∪ att(R, p)`` from ⊥ to
        a value, where ``q`` is the peer of the event at *position*.
        """
        cached = self._required_cache.get(position)
        if cached is not None:
            return cached
        required: Set[int] = set()
        event_peer = self.run.events[position].peer
        for relation, keys in self.key_occurrences(position).items():
            relevant = relevant_attributes(self.schema, relation, event_peer) | \
                relevant_attributes(self.schema, relation, self.peer)
            for key in keys:
                lifecycle = self.lifecycles.lifecycle_at(relation, key, position)
                if lifecycle is None:
                    continue
                if lifecycle.start is not None:
                    required.add(lifecycle.start)
                if lifecycle.end is not None:
                    required.add(lifecycle.end)
                for mod in self.modifications_of(relation, key):
                    if (
                        mod.position < position
                        and lifecycle.contains(mod.position)
                        and mod.attribute in relevant
                    ):
                        required.add(mod.position)
        required.discard(position)
        result = frozenset(required)
        self._required_cache[position] = result
        return result

    # ------------------------------------------------------------------
    # The operator T_p and its fixpoint
    # ------------------------------------------------------------------

    def step(self, indices: FrozenSet[int]) -> FrozenSet[int]:
        """One application of ``T_p(ρ, ·)``."""
        out: Set[int] = set(indices)
        for i in indices:
            out.update(self.required_events(i))
        return frozenset(out)

    def closure(self, indices: Iterable[int]) -> FrozenSet[int]:
        """``T_p^ω(ρ, α)``: the least fixpoint above *indices* (worklist)."""
        closed: Set[int] = set()
        frontier: List[int] = list(indices)
        while frontier:
            ambient_checkpoint()
            i = frontier.pop()
            if i in closed:
                continue
            closed.add(i)
            frontier.extend(self.required_events(i) - closed)
        return frozenset(closed)

    # ------------------------------------------------------------------
    # Faithfulness predicates
    # ------------------------------------------------------------------

    def is_boundary_faithful(self, indices: FrozenSet[int]) -> bool:
        """Definition 4.3, restricted to the boundary requirements."""
        for i in indices:
            for relation, keys in self.key_occurrences(i).items():
                for key in keys:
                    lifecycle = self.lifecycles.lifecycle_at(relation, key, i)
                    if lifecycle is None:
                        continue
                    if lifecycle.start is not None and lifecycle.start not in indices:
                        return False
                    if lifecycle.end is not None and lifecycle.end not in indices:
                        return False
        return True

    def is_modification_faithful(self, indices: FrozenSet[int]) -> bool:
        """Definition 4.4 for the fixed peer."""
        for i in indices:
            event_peer = self.run.events[i].peer
            for relation, keys in self.key_occurrences(i).items():
                relevant = relevant_attributes(self.schema, relation, event_peer) | \
                    relevant_attributes(self.schema, relation, self.peer)
                for key in keys:
                    lifecycle = self.lifecycles.lifecycle_at(relation, key, i)
                    if lifecycle is None:
                        continue
                    for mod in self.modifications_of(relation, key):
                        if (
                            mod.position < i
                            and lifecycle.contains(mod.position)
                            and mod.attribute in relevant
                            and mod.position not in indices
                        ):
                            return False
        return True

    def is_faithful(self, indices: Iterable[int]) -> bool:
        """Definition 4.5: visible events included + fixpoint of ``T_p``."""
        index_set = frozenset(indices)
        visible = frozenset(self.run.visible_indices(self.peer))
        if not visible <= index_set:
            return False
        return self.step(index_set) == index_set


@dataclass(frozen=True)
class FaithfulScenario:
    """The minimal p-faithful scenario of a run (Theorem 4.7)."""

    run: Run
    peer: str
    indices: PyTuple[int, ...]

    def subsequence(self) -> EventSubsequence:
        return EventSubsequence(self.run, self.indices)

    def subrun(self):
        """The scenario replayed as a run (guaranteed by Lemma 4.6)."""
        subrun = self.subsequence().to_subrun()
        if subrun is None:  # pragma: no cover - contradicts Lemma 4.6
            raise AssertionError("faithful subsequence failed to yield a subrun")
        return subrun

    def __len__(self) -> int:
        return len(self.indices)


def minimal_faithful_scenario(run: Run, peer: str) -> FaithfulScenario:
    """The unique minimal p-faithful scenario ``T_p^ω(ρ, visible)``.

    Computable in polynomial time (Theorem 4.7).

    >>> # scenario = minimal_faithful_scenario(run, "sue")
    >>> # scenario.subrun().view("sue") == run.view("sue")
    """
    analysis = FaithfulnessAnalysis(run, peer)
    visible = run.visible_indices(peer)
    return FaithfulScenario(run, peer, tuple(sorted(analysis.closure(visible))))


def is_faithful_scenario(run: Run, peer: str, indices: Iterable[int]) -> bool:
    """True iff *indices* is a p-faithful subsequence of ``e(ρ)``.

    By Lemma 4.6 a p-faithful subsequence always yields a scenario, so no
    separate replay check is needed; this predicate checks Definition 4.5
    directly.
    """
    return FaithfulnessAnalysis(run, peer).is_faithful(indices)
