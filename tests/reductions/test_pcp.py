"""Tests for the PCP workflow gadget (Theorems 5.4 / 5.9)."""

import pytest

from repro.reductions.pcp import (
    PCPInstance,
    brute_force_solution,
    pcp_workflow,
    search_solution,
    u_reachable,
)


class TestInstance:
    def test_check_solution(self):
        instance = PCPInstance((("a", "ab"), ("ba", "a")))
        assert instance.check([0, 1])
        assert not instance.check([0])
        assert not instance.check([])

    def test_empty_domino_rejected(self):
        with pytest.raises(ValueError):
            PCPInstance((("", ""),))

    def test_no_dominoes_rejected(self):
        with pytest.raises(ValueError):
            PCPInstance(())


class TestBruteForce:
    def test_trivial(self):
        assert brute_force_solution(PCPInstance((("a", "a"),)), 2) == (0,)

    def test_two_dominoes(self):
        assert brute_force_solution(PCPInstance((("a", "ab"), ("ba", "a"))), 3) == (0, 1)

    def test_unsolvable_within_bound(self):
        assert brute_force_solution(PCPInstance((("a", "b"),)), 4) is None


class TestWorkflowEncoding:
    def test_program_builds(self):
        program = pcp_workflow(PCPInstance((("a", "ab"), ("ba", "a"))))
        names = {rule.name for rule in program}
        assert {"init", "seed_match", "domino0", "domino1", "advance", "flag"} <= names

    def test_solvable_instance_reaches_u(self):
        assert search_solution(PCPInstance((("a", "a"),)), max_events=5)

    def test_unsolvable_instance_does_not_reach_u(self):
        assert not search_solution(PCPInstance((("a", "b"),)), max_events=5)

    def test_observer_sees_only_u(self):
        program = pcp_workflow(PCPInstance((("a", "a"),)))
        views = program.schema.views_of_peer("observer")
        assert [view.relation.name for view in views] == ["U"]

    @pytest.mark.parametrize(
        "dominoes,solvable,depth",
        [
            ((("a", "a"),), True, 5),
            ((("ab", "ab"),), True, 6),
            ((("a", "b"),), False, 5),
            ((("ab", "ba"),), False, 5),
        ],
    )
    def test_agreement_with_brute_force(self, dominoes, solvable, depth):
        instance = PCPInstance(dominoes)
        assert (brute_force_solution(instance, 2) is not None) == solvable
        assert search_solution(instance, max_events=depth) == solvable
