"""The stable public API of the reproduction, in one import.

Everything documented in docs/API.md is re-exported here, grouped by
layer; downstream code (the examples, the tutorial, the CLI's explain
and run paths) imports from :mod:`repro.api` rather than reaching into
submodules, so internal refactors never ripple outward::

    from repro.api import parse_program, RunGenerator, explain_run

    program = parse_program(SOURCE)
    run = RunGenerator(program, seed=0).random_run(10)
    print(explain_run(run, "sue").to_text())

The surface is snapshot-tested: ``tests/test_api_facade.py`` compares
``__all__`` against ``tests/api_surface.txt`` and CI fails when they
diverge, so additions and removals are always deliberate and visible in
review.  Names are re-exported from their defining modules — this module
defines nothing itself.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# The workflow model (Section 2): schemas, views, rules, runs
# ----------------------------------------------------------------------
from .workflow import (
    NULL,
    OMEGA,
    CollaborativeSchema,
    Event,
    Instance,
    Relation,
    Rule,
    Run,
    RunGenerator,
    Schema,
    Tuple,
    View,
    WorkflowProgram,
    applicable_events,
    chase,
    execute,
    normalize,
    parse_program,
    parse_schema,
    program_to_text,
    run_from_json,
    run_to_json,
)
from .workflow.enumerate import enumerate_event_sequences
from .workflow.lint import LintFinding, lint_program
from .workflow.planner import query_backend, set_backend
from .workflow.statespace import StateSpaceExplorer, fact_reachable

# ----------------------------------------------------------------------
# Incremental dataflow: the Z-set delta algebra behind derived state
# ----------------------------------------------------------------------
from .dataflow import (
    Delta,
    DeltaEffect,
    DeltaGraph,
    QueryDataflow,
    ZSet,
    delta_visible_to,
    refresh_view_instance,
)

# ----------------------------------------------------------------------
# Runtime explanations (Sections 3-4): scenarios and faithfulness
# ----------------------------------------------------------------------
from .core import (
    EventSubsequence,
    Explanation,
    FaithfulScenario,
    FaithfulSemiring,
    FaithfulnessAnalysis,
    IncrementalExplainer,
    LifecycleIndex,
    explain_event,
    explain_run,
    greedy_scenario,
    is_faithful_scenario,
    is_minimal_scenario,
    is_scenario,
    minimal_faithful_scenario,
    minimum_scenario,
)
from .core.explain import run_provenance
from .core.scenarios import scenario_within

# ----------------------------------------------------------------------
# Static explanations (Section 5): decisions and synthesis
# ----------------------------------------------------------------------
from .transparency import (
    SearchBudget,
    check_h_bounded,
    check_transparent,
    check_transparent_and_bounded,
    check_tree_equivalence,
    check_view_program,
    smallest_bound,
    synthesize_view_program,
)

# ----------------------------------------------------------------------
# Design methodology (Section 6) and auditing
# ----------------------------------------------------------------------
from .analysis import AuditReport, audit_program
from .design import (
    TransparencyEnforcer,
    check_design_guidelines,
    check_transparency_form,
    enforce_run,
    is_run_h_bounded,
    is_run_transparent,
    rewrite_transparent,
)

# ----------------------------------------------------------------------
# Resilient runtime: budgets, journals, supervision
# ----------------------------------------------------------------------
from .runtime import (
    AnytimeResult,
    Budget,
    BudgetExceeded,
    DiskFaultPlan,
    JournalWriter,
    ResumedRun,
    Supervisor,
    anytime_minimum_scenario,
    anytime_reachable_states,
    fast_recover,
    recover_run,
    use_budget,
)

# ----------------------------------------------------------------------
# Pluggable storage: backends, durability policies, compaction
# ----------------------------------------------------------------------
from .storage import (
    DurabilityPolicy,
    FileBackend,
    MemoryBackend,
    SegmentBackend,
    SqliteBackend,
    StorageBackend,
    open_backend,
)

# ----------------------------------------------------------------------
# Parallel search: the multiprocessing frontier/portfolio engine
# ----------------------------------------------------------------------
from .parallel import (
    WorkerPool,
    available_workers,
    default_workers,
    parallel_check_h_bounded,
    parallel_explore,
    parallel_find,
    parallel_minimum_scenario,
    parallel_smallest_bound,
    set_default_workers,
)

# ----------------------------------------------------------------------
# The multi-run service and its protocol
# ----------------------------------------------------------------------
from .service import (
    ServiceClient,
    ServiceServer,
    WorkflowService,
    run_loadgen,
)
from .service.errors import ERROR_CODES
from .service.protocol import PROTOCOL_VERSION

# ----------------------------------------------------------------------
# The sharded cluster layer: placement, routing, replication, failover
# ----------------------------------------------------------------------
from .cluster import (
    ClusterRouter,
    HashRing,
    ReplicationShipper,
    RouterServer,
    ShardSupervisor,
    reconcile_with_follower,
    run_cluster_loadgen,
)

# ----------------------------------------------------------------------
# Workload generators: realistic families and the program fuzzer
# ----------------------------------------------------------------------
from .workloads import (
    DifferentialReport,
    FuzzConfig,
    WorkflowFamily,
    differential_check,
    family_names,
    fuzz_corpus,
    fuzz_program,
    get_family,
    make_family_program,
    shrink_program,
)

# ----------------------------------------------------------------------
# Observability: tracing, metrics, provenance
# ----------------------------------------------------------------------
from .obs import (
    METRICS,
    JsonLinesSink,
    MetricsRegistry,
    NullSink,
    ProvenanceLog,
    ProvenanceRecord,
    RingBufferSink,
    SpanRecord,
    capture_spans,
    configure_tracing,
    span,
    tracing_enabled,
)
from .obs.shapley import ShapleyReport, shapley_rank, shapley_values

__all__ = [
    # workflow model
    "NULL",
    "OMEGA",
    "CollaborativeSchema",
    "Event",
    "Instance",
    "LintFinding",
    "Relation",
    "Rule",
    "Run",
    "RunGenerator",
    "Schema",
    "StateSpaceExplorer",
    "Tuple",
    "View",
    "WorkflowProgram",
    "applicable_events",
    "chase",
    "enumerate_event_sequences",
    "execute",
    "fact_reachable",
    "lint_program",
    "normalize",
    "parse_program",
    "parse_schema",
    "program_to_text",
    "query_backend",
    "run_from_json",
    "run_to_json",
    "set_backend",
    # incremental dataflow
    "Delta",
    "DeltaEffect",
    "DeltaGraph",
    "QueryDataflow",
    "ZSet",
    "delta_visible_to",
    "refresh_view_instance",
    # runtime explanations
    "EventSubsequence",
    "Explanation",
    "FaithfulScenario",
    "FaithfulSemiring",
    "FaithfulnessAnalysis",
    "IncrementalExplainer",
    "LifecycleIndex",
    "explain_event",
    "explain_run",
    "greedy_scenario",
    "is_faithful_scenario",
    "is_minimal_scenario",
    "is_scenario",
    "minimal_faithful_scenario",
    "minimum_scenario",
    "run_provenance",
    "scenario_within",
    # static explanations
    "SearchBudget",
    "check_h_bounded",
    "check_transparent",
    "check_transparent_and_bounded",
    "check_tree_equivalence",
    "check_view_program",
    "smallest_bound",
    "synthesize_view_program",
    # design and audit
    "AuditReport",
    "TransparencyEnforcer",
    "audit_program",
    "check_design_guidelines",
    "check_transparency_form",
    "enforce_run",
    "is_run_h_bounded",
    "is_run_transparent",
    "rewrite_transparent",
    # resilient runtime
    "AnytimeResult",
    "Budget",
    "BudgetExceeded",
    "DiskFaultPlan",
    "JournalWriter",
    "ResumedRun",
    "Supervisor",
    "anytime_minimum_scenario",
    "anytime_reachable_states",
    "fast_recover",
    "recover_run",
    "use_budget",
    # storage
    "DurabilityPolicy",
    "FileBackend",
    "MemoryBackend",
    "SegmentBackend",
    "SqliteBackend",
    "StorageBackend",
    "open_backend",
    # parallel search
    "WorkerPool",
    "available_workers",
    "default_workers",
    "parallel_check_h_bounded",
    "parallel_explore",
    "parallel_find",
    "parallel_minimum_scenario",
    "parallel_smallest_bound",
    "set_default_workers",
    # service
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceServer",
    "WorkflowService",
    "run_loadgen",
    # cluster
    "ClusterRouter",
    "HashRing",
    "ReplicationShipper",
    "RouterServer",
    "ShardSupervisor",
    "reconcile_with_follower",
    "run_cluster_loadgen",
    # workload generators
    "DifferentialReport",
    "FuzzConfig",
    "WorkflowFamily",
    "differential_check",
    "family_names",
    "fuzz_corpus",
    "fuzz_program",
    "get_family",
    "make_family_program",
    "shrink_program",
    # observability
    "METRICS",
    "JsonLinesSink",
    "MetricsRegistry",
    "NullSink",
    "ProvenanceLog",
    "ProvenanceRecord",
    "RingBufferSink",
    "ShapleyReport",
    "SpanRecord",
    "capture_spans",
    "configure_tracing",
    "shapley_rank",
    "shapley_values",
    "span",
    "tracing_enabled",
]
