"""The compiled query backend: codegen shape, caching, and accounting.

The multiset equivalence proof lives in
``test_planner_equivalence.py``; these tests pin the parts equivalence
cannot see — what the generated source looks like (probes inlined,
filters pushed down, locals only), that the backend switch validates
its input, and that the observability counters tell the truth about
closure compilation and cache hits.
"""

from __future__ import annotations

import pytest

from repro.workflow import compiler, planner
from repro.workflow.domain import NULL
from repro.workflow.evalstats import EVAL_STATS
from repro.workflow.instance import Instance
from repro.workflow.queries import (
    Comparison,
    Const,
    KeyLiteral,
    Query,
    RelLiteral,
    Var,
)
from repro.workflow.schema import Relation, Schema
from repro.workflow.tuples import Tuple
from repro.workflow.views import View


def two_relation_world():
    r = View(Relation("R", ("K", "A")), "p", ("K", "A"))
    s = View(Relation("S", ("K", "B")), "p", ("K", "B"))
    schema = Schema([r.view_relation, s.view_relation])
    inst = Instance.from_tuples(
        schema,
        {
            "R@p": [Tuple(("K", "A"), (1, 10)), Tuple(("K", "A"), (2, 20))],
            "S@p": [Tuple(("K", "B"), (10, 7)), Tuple(("K", "B"), (20, 7))],
        },
    )
    return r, s, inst


def compiled_source(query, inst):
    list(compiler.evaluate(query, inst))
    plan = planner.plan_for(query)
    assert plan.compiled, "evaluation must have compiled a closure"
    [closure] = plan.compiled.values()
    return closure.__repro_source__


class TestBackendSwitch:
    def test_default_backend_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERY_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_NAIVE_QUERIES", raising=False)
        assert planner._backend_from_env() == "compiled"

    def test_env_selects_each_backend(self, monkeypatch):
        for backend in planner.BACKENDS:
            monkeypatch.setenv("REPRO_QUERY_BACKEND", backend)
            assert planner._backend_from_env() == backend

    def test_unknown_env_backend_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_BACKEND", "vectorized")
        monkeypatch.delenv("REPRO_NAIVE_QUERIES", raising=False)
        assert planner._backend_from_env() == "compiled"

    def test_set_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="vectorized"):
            planner.set_backend("vectorized")

    def test_set_backend_returns_the_previous_backend(self):
        previous = planner.query_backend()
        try:
            assert planner.set_backend("naive") == previous
            assert planner.set_backend("planned") == "naive"
            assert planner.query_backend() == "planned"
        finally:
            planner.set_backend(previous)


class TestGeneratedSource:
    def test_join_probe_is_inlined(self):
        r, s, inst = two_relation_world()
        x, y = Var("x"), Var("y")
        # R(k, x) ⋈ S(x, y): the second literal is key-bound after the
        # first binds x, so the source must probe rows by key instead
        # of scanning.
        query = Query([RelLiteral(r, (Var("k"), x)), RelLiteral(s, (x, y))])
        source = compiled_source(query, inst)
        assert "def _q(inst):" in source
        assert "inst.rows(" in source
        assert ".get(" in source, "the key-bound literal must probe, not scan"
        assert "cand" in source and "append(" in source

    def test_negative_literal_is_inlined_membership(self):
        r, s, inst = two_relation_world()
        x = Var("x")
        query = Query(
            [
                RelLiteral(r, (x, Var("a"))),
                KeyLiteral(s, x, positive=False),
            ]
        )
        source = compiled_source(query, inst)
        assert "not in" in source

    def test_comparison_compiles_to_plain_operator(self):
        r, _, inst = two_relation_world()
        x, a = Var("x"), Var("a")
        query = Query(
            [RelLiteral(r, (x, a)), Comparison(a, Const(10), False)]
        )
        source = compiled_source(query, inst)
        assert "!=" in source
        [valuation] = list(compiler.evaluate(query, inst))
        assert valuation[a] == 20

    def test_null_constant_compiles_to_the_singleton(self):
        r, _, _ = two_relation_world()
        schema = Schema([r.view_relation])
        inst = Instance.from_tuples(
            schema,
            {"R@p": [Tuple(("K", "A"), (1, NULL)), Tuple(("K", "A"), (2, 5))]},
        )
        x = Var("x")
        query = Query([RelLiteral(r, (x, Const(NULL)))])
        source = compiled_source(query, inst)
        assert "NULL" in source
        [valuation] = list(compiler.evaluate(query, inst))
        assert valuation[x] == 1

    def test_generated_code_sees_no_builtins(self):
        r, _, inst = two_relation_world()
        query = Query([RelLiteral(r, (Var("x"), Var("a")))])
        list(compiler.evaluate(query, inst))
        plan = planner.plan_for(query)
        [closure] = plan.compiled.values()
        assert closure.__globals__["__builtins__"] == {}


class TestAccounting:
    def test_candidate_counts_match_the_interpreter(self):
        r, s, inst = two_relation_world()
        x, y = Var("x"), Var("y")
        body = (RelLiteral(r, (Var("k"), x)), RelLiteral(s, (x, y)))

        interpreted = Query(body)
        list(planner.evaluate(interpreted, inst))
        compiled = Query(body)
        list(compiler.evaluate(compiled, inst))

        plan_i = planner.plan_for(interpreted)
        plan_c = planner.plan_for(compiled)
        assert plan_c.candidates == plan_i.candidates
        assert plan_c.emitted == plan_i.emitted

    def test_closure_compilation_is_counted_once(self):
        r, _, inst = two_relation_world()
        # Plans are cached by query value: a variable name no other
        # test uses guarantees this evaluation really compiles.
        query = Query([RelLiteral(r, (Var("only_here"), Var("a")))])
        before = EVAL_STATS.snapshot()
        list(compiler.evaluate(query, inst))
        list(compiler.evaluate(query, inst))
        after = EVAL_STATS.snapshot()
        assert after["closures_compiled"] == before["closures_compiled"] + 1
        assert after["compiled_evals"] == before["compiled_evals"] + 2
        assert after["compile_ns"] > before["compile_ns"]
        plan = planner.plan_for(query)
        assert plan.compile_ns > 0

    def test_profile_rows_report_compile_time_and_closures(self):
        planner.reset_profile()
        r, _, inst = two_relation_world()
        query = Query([RelLiteral(r, (Var("profiled_here"), Var("a")))])
        planner.label_query(query, "probe")
        list(compiler.evaluate(query, inst))
        rows = [row for row in planner.profile_rows() if row[0] == "probe"]
        assert rows, "the labelled query must appear in the profile"
        [row] = rows
        label, evals, hits, candidates, emitted, total, per, compile_ms, closures = row
        assert evals == 1
        assert closures == 1
        assert compile_ms > 0
        rendered = planner.render_profile()
        assert f"backend={planner.query_backend()}" in rendered
