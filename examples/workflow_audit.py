"""Auditing a workflow before deployment, and logging runs for replay.

A compliance officer receives a proposed benefits-claims workflow and
must answer, for the claimant peer: is the schema lossless?  Is the
program well-formed, bounded, transparent?  What exactly will the
claimant be able to observe (the view program)?  And can run logs be
archived and replayed later for audits?

Run with: ``python examples/workflow_audit.py``
"""

from repro.api import (
    RunGenerator,
    SearchBudget,
    audit_program,
    parse_program,
    program_to_text,
    run_from_json,
    run_to_json,
)
from repro.api import check_tree_equivalence, synthesize_view_program

PROGRAM = """
peers intake, medical, claimant
relation Claim(K)
relation Assessed(K, sid)
relation Paid(K)
relation Stage(K, sid)
view Claim@intake(K)
view Claim@medical(K)
view Claim@claimant(K)
view Assessed@intake(K, sid)
view Assessed@medical(K, sid)
view Paid@intake(K)
view Paid@medical(K)
view Paid@claimant(K)
view Stage@intake(K, sid)
view Stage@medical(K, sid)
view Stage@claimant(K, sid)
[stage]  +Stage@claimant(0, z) :- not Key[Stage]@claimant(0)
[file]   +Claim@intake(x), -Key[Stage]@intake(0) :- Stage@intake(0, s)
[assess] +Assessed@medical(a, s) :- Claim@medical(x), Stage@medical(0, s)
[pay]    +Paid@intake(x), -Key[Stage]@intake(0) :- Claim@intake(x), Assessed@intake(a, s), Stage@intake(0, s)
"""


def main() -> None:
    program = parse_program(PROGRAM)
    budget = SearchBudget(pool_extra=2, max_tuples_per_relation=1)

    # ------------------------------------------------------------------
    # 1. The static audit, in one call.
    # ------------------------------------------------------------------
    report = audit_program(
        program,
        "claimant",
        transparent_relations=["Claim", "Assessed", "Paid"],
        decide_h=2,
        budget=budget,
    )
    print(report.to_text())

    # ------------------------------------------------------------------
    # 2. What will the claimant ever see?  The view program.
    # ------------------------------------------------------------------
    synthesis = synthesize_view_program(program, "claimant", h=2, budget=budget)
    print("\nThe claimant's view program (static explanation):")
    print(program_to_text(synthesis.program), end="")

    trees = check_tree_equivalence(synthesis, depth=3)
    print(f"\ntree-of-runs equivalent (Remark 5.2 strong sense): {trees.equivalent}")

    # ------------------------------------------------------------------
    # 3. Archive a run log; replay and re-validate it later.
    # ------------------------------------------------------------------
    run = RunGenerator(program, seed=4).random_run(12)
    log = run_to_json(run, indent=2)
    print(f"\narchived a {len(run)}-event run as a {len(log)}-byte JSON log")
    replayed = run_from_json(program, log)
    print(
        "replay matches the original:",
        replayed.final_instance == run.final_instance,
    )
    print("claimant's view of the archived run:")
    print(replayed.view("claimant"))


if __name__ == "__main__":
    main()
