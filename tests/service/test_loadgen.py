"""The loadgen harness as a checker: clean reports under fault injection."""

from __future__ import annotations

import asyncio

from repro.runtime.faults import FaultPlan
from repro.service import ServiceServer, WorkflowService, run_loadgen
from repro.workloads.generators import churn_program


def drive(program, service_kwargs, loadgen_kwargs):
    async def main():
        service = WorkflowService(program, **service_kwargs)
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await run_loadgen(
                program, server.host, server.port, **loadgen_kwargs
            )
        finally:
            await server.stop()

    return asyncio.run(main())


class TestLoadgen:
    def test_sixty_four_concurrent_runs_stay_ordered(self):
        """The acceptance bar: 64 concurrent runs, per-run FIFO intact."""
        program = churn_program()
        report = drive(
            program,
            {},
            dict(runs=64, events_per_run=5, seed=1, verify=False),
        )
        assert report.runs == 64
        assert report.submitted == report.applied + report.quarantined
        assert report.ordering_violations == 0
        assert report.clean

    def test_verified_views_without_faults(self):
        program = churn_program()
        report = drive(
            program,
            {},
            dict(runs=8, events_per_run=12, seed=2, verify=True, view_every=4),
        )
        assert report.applied == report.submitted == 8 * 12
        assert report.quarantined == 0
        assert report.verified_views == 8 * len(program.schema.peers)
        assert report.clean

    def test_fault_injected_session_stays_consistent(self, tmp_path):
        """Crashes, transients and poisons: views must still verify."""
        program = churn_program()
        report = drive(
            program,
            dict(
                journal_dir=tmp_path,
                fault_plan=FaultPlan(
                    seed=13, crash_rate=0.08, transient_rate=0.08, poison_rate=0.02
                ),
            ),
            dict(runs=16, events_per_run=15, seed=3, verify=True),
        )
        assert report.submitted == 16 * 15
        assert report.applied + report.quarantined == report.submitted
        assert report.recoveries > 0, "the crash rate must actually fire"
        assert report.ordering_violations == 0
        assert report.consistency_violations == 0
        assert report.clean

    def test_uncached_service_serves_identical_views(self):
        program = churn_program()
        report = drive(
            program,
            dict(cache_views=False),
            dict(runs=6, events_per_run=10, seed=4, verify=True),
        )
        assert report.clean
        assert report.applied == 60

    def test_multi_client_batched_session_verifies(self):
        """N connections + submit_batch chunks: same checks, same clean."""
        program = churn_program()
        report = drive(
            program,
            dict(batch_size=8),
            dict(
                runs=12,
                events_per_run=10,
                seed=5,
                verify=True,
                clients=3,
                batch_size=4,
            ),
        )
        assert report.clean
        assert report.applied == report.submitted == 12 * 10
        assert report.clients == 3 and report.batch_size == 4
        assert len(report.client_stats) == 3
        assert sum(stats.runs for stats in report.client_stats) == 12
        assert sum(stats.applied for stats in report.client_stats) == 120
        assert all(stats.events_per_second > 0 for stats in report.client_stats)
        per_client = report.to_dict()["per_client"]
        assert [c["client"] for c in per_client] == [0, 1, 2]

    def test_batched_fault_injected_session_stays_consistent(self, tmp_path):
        """Faults force the broker off the batched fast path; the report
        must stay exactly as clean as the one-event-at-a-time drain."""
        program = churn_program()
        report = drive(
            program,
            dict(
                journal_dir=tmp_path,
                batch_size=4,
                fault_plan=FaultPlan(
                    seed=17, crash_rate=0.08, transient_rate=0.08, poison_rate=0.02
                ),
            ),
            dict(runs=8, events_per_run=12, seed=6, verify=True, batch_size=4),
        )
        assert report.submitted == 8 * 12
        assert report.applied + report.quarantined == report.submitted
        assert report.ordering_violations == 0
        assert report.consistency_violations == 0
        assert report.clean
