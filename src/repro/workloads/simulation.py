"""Policy-driven multi-peer simulation.

:class:`~repro.workflow.enumerate.RunGenerator` picks events uniformly;
realistic collaborative workloads need more control: peers acting in
turns, rules with priorities, goal-directed termination, duty cycles.
The :class:`Simulator` provides that: each peer follows a
:class:`PeerPolicy` choosing among its applicable events, a scheduler
interleaves the peers, and stop conditions end the run.  The result is
an ordinary :class:`~repro.workflow.runs.Run`, directly consumable by
the explanation and transparency machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple as PyTuple

from ..workflow.domain import FreshValueSource
from ..workflow.engine import apply_event
from ..workflow.enumerate import applicable_events
from ..workflow.events import Event
from ..workflow.instance import Instance
from ..workflow.program import WorkflowProgram
from ..workflow.runs import Run, execute

#: A stop condition: called with (instance, step) after every event.
StopCondition = Callable[[Instance, int], bool]


@dataclass
class PeerPolicy:
    """How one peer picks among its applicable events.

    ``rule_weights`` biases the choice (unlisted rules weigh 1.0; weight
    0 disables a rule); ``activity`` in [0, 1] is the probability the
    peer acts at all when scheduled (idleness model); ``chooser``, if
    given, overrides the weighted choice entirely.
    """

    rule_weights: Dict[str, float] = field(default_factory=dict)
    activity: float = 1.0
    chooser: Optional[Callable[[Sequence[Event], random.Random], Optional[Event]]] = None

    def choose(
        self, candidates: Sequence[Event], rng: random.Random
    ) -> Optional[Event]:
        if not candidates:
            return None
        if rng.random() > self.activity:
            return None
        if self.chooser is not None:
            return self.chooser(candidates, rng)
        weights = [self.rule_weights.get(e.rule.name, 1.0) for e in candidates]
        if not any(weight > 0 for weight in weights):
            return None
        return rng.choices(list(candidates), weights=weights, k=1)[0]


def fact_goal(relation: str, count: int = 1) -> StopCondition:
    """Stop once *relation* holds at least *count* tuples."""

    def condition(instance: Instance, _step: int) -> bool:
        return len(instance.keys(relation)) >= count

    return condition


@dataclass(frozen=True)
class SimulationResult:
    """A finished simulation: the run plus scheduling metadata."""

    run: Run
    stopped_by_goal: bool
    idle_ticks: int
    events_by_peer: Mapping[str, int]


class Simulator:
    """Schedules peers round-robin (or randomly) under their policies.

    >>> # sim = Simulator(program, {"hr": PeerPolicy({"hire": 5.0})}, seed=0)
    >>> # result = sim.run(max_events=50, stop=fact_goal("Hire"))
    """

    def __init__(
        self,
        program: WorkflowProgram,
        policies: Optional[Mapping[str, PeerPolicy]] = None,
        seed: Optional[int] = None,
        scheduling: str = "round-robin",
    ) -> None:
        if scheduling not in ("round-robin", "random"):
            raise ValueError(f"unknown scheduling {scheduling!r}")
        self.program = program
        self.policies = dict(policies or {})
        self.rng = random.Random(seed)
        self.scheduling = scheduling
        self._acting_peers = [
            peer for peer in program.peers if program.rules_of_peer(peer)
        ]

    def _policy(self, peer: str) -> PeerPolicy:
        return self.policies.get(peer, PeerPolicy())

    def run(
        self,
        max_events: int,
        initial: Optional[Instance] = None,
        stop: Optional[StopCondition] = None,
        max_idle_rounds: int = 3,
    ) -> SimulationResult:
        """Simulate until *max_events*, the *stop* condition, or deadlock.

        A deadlock is declared after *max_idle_rounds* consecutive full
        rounds in which no peer produced an event.
        """
        schema = self.program.schema
        instance = initial if initial is not None else Instance.empty(schema.schema)
        fresh = FreshValueSource()
        fresh.observe(self.program.constants())
        fresh.observe(instance.active_domain())
        events: List[Event] = []
        counts: Dict[str, int] = {peer: 0 for peer in self._acting_peers}
        idle_ticks = 0
        idle_rounds = 0
        stopped = False
        while len(events) < max_events and not stopped:
            order = list(self._acting_peers)
            if self.scheduling == "random":
                self.rng.shuffle(order)
            acted_this_round = False
            for peer in order:
                if len(events) >= max_events or stopped:
                    break
                candidates = list(
                    applicable_events(self.program, instance, fresh, peers=[peer])
                )
                choice = self._policy(peer).choose(candidates, self.rng)
                if choice is None:
                    idle_ticks += 1
                    continue
                instance = apply_event(schema, instance, choice, None, check_body=False)
                fresh.observe(instance.active_domain())
                events.append(choice)
                counts[peer] += 1
                acted_this_round = True
                if stop is not None and stop(instance, len(events)):
                    stopped = True
            if not acted_this_round:
                idle_rounds += 1
                if idle_rounds >= max_idle_rounds:
                    break
            else:
                idle_rounds = 0
        run = execute(self.program, events, initial=initial)
        return SimulationResult(run, stopped, idle_ticks, counts)


def simulate_until(
    program: WorkflowProgram,
    goal_relation: str,
    max_events: int = 100,
    policies: Optional[Mapping[str, PeerPolicy]] = None,
    seed: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: simulate until *goal_relation* is non-empty.

    >>> # result = simulate_until(hiring_program(), "Hire", seed=1)
    >>> # result.stopped_by_goal
    """
    simulator = Simulator(program, policies, seed=seed)
    return simulator.run(max_events, stop=fact_goal(goal_relation))
